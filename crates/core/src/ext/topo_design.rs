//! Joint routing + topology design (extension; §VI: "explore how to
//! jointly design routing and network topology to maximize robustness").
//!
//! The paper's evaluation shows that the benefits of robust routing are
//! "typically in proportion to the number of paths it can explore"
//! (§V-B): robustness is bought with path diversity. This module turns
//! that observation into a design procedure — **greedy link
//! augmentation**: given a budget of new duplex links, repeatedly add the
//! candidate link that most reduces the compound single-link failure cost
//! `Kfail`, evaluated under a fixed heuristic routing policy.
//!
//! Scoring every candidate with a full robust-optimization run would cost
//! hours per candidate; the heuristic-policy proxy costs `|E|`
//! evaluations and preserves the ranking signal that matters (which new
//! link de-fragilizes the most failure scenarios), because `Kfail` under
//! any reasonable routing is dominated by the scenarios with no good
//! alternate path — exactly what a new link fixes.

use dtr_cost::{CostParams, Evaluator, LexCost};
use dtr_net::{Network, NetworkBuilder, NodeId};
use dtr_routing::{Class, WeightSetting};
use dtr_traffic::ClassMatrices;

use crate::parallel;
use crate::scenario::ScenarioSet;
use crate::universe::FailureUniverse;

/// The fixed routing policy used to score candidate links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightPolicy {
    /// All weights 1: hop-count routing in both topologies.
    HopCount,
    /// Delay-class weights proportional to propagation delay (quantized
    /// to `[1, wmax]`), throughput-class weights 1 — the natural
    /// static policy for the paper's two classes.
    DelayProportional {
        /// Quantization ceiling for the delay-class weights.
        wmax: u32,
    },
}

impl WeightPolicy {
    /// Materialize the policy for `net`.
    pub fn weights(&self, net: &Network) -> WeightSetting {
        match *self {
            WeightPolicy::HopCount => WeightSetting::uniform(net.num_links(), 20),
            WeightPolicy::DelayProportional { wmax } => {
                let max_delay = net
                    .links()
                    .map(|l| net.link(l).prop_delay)
                    .fold(0.0f64, f64::max);
                let mut w = WeightSetting::uniform(net.num_links(), wmax.max(2));
                if max_delay > 0.0 {
                    for l in net.links() {
                        let frac = net.link(l).prop_delay / max_delay;
                        let quant = 1 + (frac * (wmax.max(2) - 1) as f64).round() as u32;
                        w.set(Class::Delay, l, quant.clamp(1, wmax.max(2)));
                    }
                }
                w
            }
        }
    }
}

/// Parameters of the greedy augmentation.
#[derive(Clone, Copy, Debug)]
pub struct DesignParams {
    /// Number of duplex links to add.
    pub budget: usize,
    /// Capacity of each new link (bits/s).
    pub capacity: f64,
    /// At most this many candidate node pairs are scored per round
    /// (closest pairs first — short links are the cheap, realistic ones).
    pub candidate_limit: usize,
    /// Routing policy used for scoring.
    pub policy: WeightPolicy,
    /// Worker threads for the failure sweeps.
    pub threads: usize,
}

impl Default for DesignParams {
    fn default() -> Self {
        DesignParams {
            budget: 1,
            capacity: 500e6,
            candidate_limit: 32,
            policy: WeightPolicy::DelayProportional { wmax: 20 },
            threads: 1,
        }
    }
}

/// One accepted augmentation.
#[derive(Clone, Debug)]
pub struct AugmentationStep {
    /// Endpoints of the added duplex link.
    pub endpoints: (NodeId, NodeId),
    /// Propagation delay assigned to the new link (seconds).
    pub prop_delay: f64,
    /// Compound failure cost before adding the link.
    pub kfail_before: LexCost,
    /// Compound failure cost after adding it.
    pub kfail_after: LexCost,
}

/// Product of [`augment`].
#[derive(Clone, Debug)]
pub struct DesignReport {
    /// The augmented network (original plus accepted links).
    pub network: Network,
    /// Accepted augmentations, in order. May be shorter than the budget
    /// when no candidate improves `Kfail`.
    pub steps: Vec<AugmentationStep>,
    /// Candidates scored in total.
    pub candidates_scored: usize,
}

/// Compound failure cost of the policy routing over all survivable
/// single-link failures of `net`.
pub fn policy_kfail(
    net: &Network,
    traffic: &ClassMatrices,
    cost_params: CostParams,
    policy: WeightPolicy,
    threads: usize,
) -> LexCost {
    policy_kfail_set(
        net,
        traffic,
        cost_params,
        policy,
        &FailureUniverse::of(net),
        threads,
    )
}

/// Compound (weight-aware) cost of the policy routing over an arbitrary
/// [`ScenarioSet`] — the generalization that lets topology design target
/// SRLG or probabilistic robustness instead of plain single links.
pub fn policy_kfail_set<S: ScenarioSet + Sync + ?Sized>(
    net: &Network,
    traffic: &ClassMatrices,
    cost_params: CostParams,
    policy: WeightPolicy,
    set: &S,
    threads: usize,
) -> LexCost {
    let ev = Evaluator::new(net, traffic, cost_params);
    let w = policy.weights(net);
    parallel::sum_set_costs(&ev, &w, set, &set.all_indices(), threads)
}

/// Rebuild a [`NetworkBuilder`] holding a copy of `net` (nodes with
/// positions, one duplex link per physical link).
pub fn to_builder(net: &Network) -> NetworkBuilder {
    let mut b = NetworkBuilder::new();
    let ids: Vec<NodeId> = net.nodes().map(|v| b.add_node(net.position(v))).collect();
    for rep in net.duplex_representatives() {
        let link = net.link(rep);
        b.add_duplex_link(
            ids[link.src.index()],
            ids[link.dst.index()],
            link.capacity,
            link.prop_delay,
        )
        .expect("copying valid links cannot fail");
    }
    b
}

/// Propagation delay to assign a new link between `a` and `b`: the
/// network's observed delay-per-distance scale times the Euclidean
/// distance, falling back to the mean existing link delay when the
/// embedding is degenerate (all nodes at one point).
pub fn infer_prop_delay(net: &Network, a: NodeId, b: NodeId) -> f64 {
    let mut scale_num = 0.0;
    let mut scale_den = 0.0;
    let mut delay_sum = 0.0;
    let mut count = 0usize;
    for rep in net.duplex_representatives() {
        let link = net.link(rep);
        let d = net.position(link.src).distance(&net.position(link.dst));
        scale_num += link.prop_delay;
        scale_den += d;
        delay_sum += link.prop_delay;
        count += 1;
    }
    let dist = net.position(a).distance(&net.position(b));
    if scale_den > 0.0 && dist > 0.0 {
        dist * (scale_num / scale_den)
    } else if count > 0 {
        delay_sum / count as f64
    } else {
        1e-3
    }
}

/// Candidate node pairs without an existing duplex link, closest pairs
/// first, capped at `limit`.
pub fn candidate_pairs(net: &Network, limit: usize) -> Vec<(NodeId, NodeId)> {
    let n = net.num_nodes();
    let mut existing = vec![false; n * n];
    for l in net.links() {
        let link = net.link(l);
        existing[link.src.index() * n + link.dst.index()] = true;
    }
    let mut pairs: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if !existing[i * n + j] && !existing[j * n + i] {
                let a = NodeId::new(i);
                let b = NodeId::new(j);
                let d = net.position(a).distance(&net.position(b));
                pairs.push((a, b, d));
            }
        }
    }
    pairs.sort_by(|x, y| {
        x.2.partial_cmp(&y.2)
            .expect("finite distances")
            .then((x.0.index(), x.1.index()).cmp(&(y.0.index(), y.1.index())))
    });
    pairs.truncate(limit);
    pairs.into_iter().map(|(a, b, _)| (a, b)).collect()
}

/// Criticality input for [`rank_candidates_by_criticality`]: the robust
/// pipeline's critical links with their (normalized) criticality scores.
#[derive(Clone, Debug)]
pub struct CriticalityGuide {
    /// Critical links (duplex representatives).
    pub links: Vec<dtr_net::LinkId>,
    /// Criticality score per link (same order; any non-negative scale).
    pub scores: Vec<f64>,
}

impl CriticalityGuide {
    /// Build from a robust-pipeline report: critical links weighted by
    /// their summed normalized criticality across both classes.
    pub fn from_report(
        report: &crate::pipeline::RobustReport,
        crit: &crate::criticality::Criticality,
    ) -> Self {
        let scores = report
            .critical_indices
            .iter()
            .map(|&i| crit.norm_lambda[i] + crit.norm_phi[i])
            .collect();
        CriticalityGuide {
            links: report.critical_links.clone(),
            scores,
        }
    }
}

/// Rank candidate node pairs by how much ρ-weighted *detour reduction*
/// they offer around the critical links — the paper's mechanism made
/// constructive: robustness comes from alternate paths (§V-B), so new
/// capacity belongs where the failure of a critical link currently
/// forces the longest detour.
///
/// For critical link `l = (u, v)` with criticality `ρ_l`, the current
/// detour is the shortest propagation-delay path from `u` to `v` in
/// `G − l`. Candidate `(a, b)` with inferred delay `δ` would offer
/// `dist(u, a) + δ + dist(b, v)` (better orientation of the two); its
/// score is `Σ_l ρ_l · max(0, detour_l − new_detour_l)`.
///
/// Returns candidates sorted by descending score (ties by node ids).
pub fn rank_candidates_by_criticality(
    net: &Network,
    guide: &CriticalityGuide,
    limit: usize,
) -> Vec<(NodeId, NodeId, f64)> {
    assert_eq!(guide.links.len(), guide.scores.len(), "one score per link");
    let candidates = candidate_pairs(net, usize::MAX);

    // Per critical link: detour distance and delay fields from both
    // endpoints in the masked network.
    struct CritInfo {
        rho: f64,
        detour: f64,
        from_u: Vec<f64>,
        from_v: Vec<f64>,
    }
    let mut infos = Vec::with_capacity(guide.links.len());
    for (&l, &rho) in guide.links.iter().zip(&guide.scores) {
        let link = net.link(l);
        let mask = net.fail_duplex(l);
        let from_u = dtr_net::connectivity::min_prop_delay_from(net, link.src, &mask);
        let from_v = dtr_net::connectivity::min_prop_delay_from(net, link.dst, &mask);
        let detour = from_u[link.dst.index()];
        if detour.is_finite() {
            infos.push(CritInfo {
                rho,
                detour,
                from_u,
                from_v,
            });
        }
    }

    let mut scored: Vec<(NodeId, NodeId, f64)> = candidates
        .into_iter()
        .map(|(a, b)| {
            let delta = infer_prop_delay(net, a, b);
            let mut score = 0.0;
            for info in &infos {
                // Both orientations of the candidate.
                let via_ab = info.from_u[a.index()] + delta + info.from_v[b.index()];
                let via_ba = info.from_u[b.index()] + delta + info.from_v[a.index()];
                let new_detour = via_ab.min(via_ba).min(info.detour);
                score += info.rho * (info.detour - new_detour);
            }
            (a, b, score)
        })
        .collect();
    scored.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .expect("finite scores")
            .then((x.0.index(), x.1.index()).cmp(&(y.0.index(), y.1.index())))
    });
    scored.truncate(limit);
    scored
}

/// Run the greedy augmentation. Each round scores up to
/// `params.candidate_limit` candidate links by the `Kfail` of the
/// augmented network and accepts the best strictly-improving one; stops
/// early when no candidate improves.
pub fn augment(
    net: &Network,
    traffic: &ClassMatrices,
    cost_params: CostParams,
    params: &DesignParams,
) -> DesignReport {
    augment_with(net, traffic, cost_params, params, None)
}

/// [`augment`] with an optional [`CriticalityGuide`]: when given, each
/// round's candidate shortlist is ordered by ρ-weighted detour reduction
/// ([`rank_candidates_by_criticality`]) instead of geometric proximity —
/// spending the same evaluation budget on the candidates the paper's own
/// criticality signal points at.
pub fn augment_with(
    net: &Network,
    traffic: &ClassMatrices,
    cost_params: CostParams,
    params: &DesignParams,
    guide: Option<&CriticalityGuide>,
) -> DesignReport {
    augment_against(
        net,
        traffic,
        cost_params,
        params,
        guide,
        FailureUniverse::of,
    )
}

/// [`augment_with`] generalized over the failure model: `make_set`
/// rebuilds the target [`ScenarioSet`] for each augmented topology (the
/// scenario ensemble changes as links are added), and candidates are
/// scored on the set's compound weight-aware cost. Passing
/// [`FailureUniverse::of`] recovers the single-link design objective;
/// passing `|net| Srlg::geographic(net, r)` designs against conduit
/// cuts.
pub fn augment_against<S, F>(
    net: &Network,
    traffic: &ClassMatrices,
    cost_params: CostParams,
    params: &DesignParams,
    guide: Option<&CriticalityGuide>,
    make_set: F,
) -> DesignReport
where
    S: ScenarioSet + Sync,
    F: Fn(&Network) -> S,
{
    assert!(params.capacity > 0.0, "new links need positive capacity");
    let mut current = to_builder(net).build().expect("copy of a valid network");
    let mut steps = Vec::new();
    let mut candidates_scored = 0usize;

    for _ in 0..params.budget {
        let kfail_before = policy_kfail_set(
            &current,
            traffic,
            cost_params,
            params.policy,
            &make_set(&current),
            params.threads,
        );
        let mut best: Option<(NodeId, NodeId, f64, LexCost)> = None;

        let shortlist: Vec<(NodeId, NodeId)> = match guide {
            Some(g) => rank_candidates_by_criticality(&current, g, params.candidate_limit)
                .into_iter()
                .map(|(a, b, _)| (a, b))
                .collect(),
            None => candidate_pairs(&current, params.candidate_limit),
        };
        for (a, b) in shortlist {
            let delay = infer_prop_delay(&current, a, b);
            let mut builder = to_builder(&current);
            builder
                .add_duplex_link(a, b, params.capacity, delay)
                .expect("candidate endpoints exist");
            let augmented = builder.build().expect("augmented network stays valid");
            let kfail = policy_kfail_set(
                &augmented,
                traffic,
                cost_params,
                params.policy,
                &make_set(&augmented),
                params.threads,
            );
            candidates_scored += 1;
            let improves = kfail.better_than(&kfail_before);
            let beats_best = best
                .as_ref()
                .is_none_or(|(_, _, _, bk)| kfail.better_than(bk));
            if improves && beats_best {
                best = Some((a, b, delay, kfail));
            }
        }

        let Some((a, b, delay, kfail_after)) = best else {
            break; // no candidate helps: diminishing returns reached
        };
        let mut builder = to_builder(&current);
        builder
            .add_duplex_link(a, b, params.capacity, delay)
            .expect("accepted endpoints exist");
        current = builder.build().expect("augmented network stays valid");
        steps.push(AugmentationStep {
            endpoints: (a, b),
            prop_delay: delay,
            kfail_before,
            kfail_after,
        });
    }

    DesignReport {
        network: current,
        steps,
        candidates_scored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_net::Point;
    use dtr_traffic::gravity;

    /// A 6-ring: minimal 2-connectivity, maximal fragility — every single
    /// link failure forces the long way round.
    fn ring6() -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 6.0;
                b.add_node(Point::new(a.cos(), a.sin()))
            })
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 2e-3).unwrap();
        }
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 1.5e6,
            ..gravity::GravityConfig::paper_default(6, 5)
        });
        (net, tm)
    }

    #[test]
    fn to_builder_round_trips_the_network() {
        let (net, _) = ring6();
        let copy = to_builder(&net).build().unwrap();
        assert_eq!(copy.num_nodes(), net.num_nodes());
        assert_eq!(copy.num_links(), net.num_links());
        for l in net.links() {
            let a = net.link(l);
            let b = copy.link(l);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.capacity, b.capacity);
            assert_eq!(a.prop_delay, b.prop_delay);
        }
    }

    #[test]
    fn candidate_pairs_excludes_existing_links_and_sorts_by_distance() {
        let (net, _) = ring6();
        let cands = candidate_pairs(&net, 100);
        // 6 nodes -> 15 pairs, 6 existing ring links -> 9 candidates.
        assert_eq!(cands.len(), 9);
        for (a, b) in &cands {
            for l in net.links() {
                let link = net.link(l);
                assert!(
                    !(link.src == *a && link.dst == *b),
                    "candidate duplicates an existing link"
                );
            }
        }
        // First candidates are the short 2-hop chords, not the diameters.
        let d0 = net.position(cands[0].0).distance(&net.position(cands[0].1));
        let dl = net
            .position(cands.last().unwrap().0)
            .distance(&net.position(cands.last().unwrap().1));
        assert!(d0 <= dl);
    }

    #[test]
    fn infer_prop_delay_scales_with_distance() {
        let (net, _) = ring6();
        // Ring edges: distance 1.0 (unit hexagon side), delay 2 ms.
        // The diameter pair (0,3) is distance 2.0 -> ≈ 4 ms.
        let d = infer_prop_delay(&net, NodeId::new(0), NodeId::new(3));
        assert!((d - 4e-3).abs() < 1e-4, "inferred {d}");
    }

    #[test]
    fn infer_prop_delay_degenerate_embedding_falls_back() {
        let mut b = NetworkBuilder::new();
        let x = b.add_node(Point::ORIGIN);
        let y = b.add_node(Point::ORIGIN);
        let z = b.add_node(Point::ORIGIN);
        b.add_duplex_link(x, y, 1e6, 3e-3).unwrap();
        b.add_duplex_link(y, z, 1e6, 5e-3).unwrap();
        b.add_duplex_link(z, x, 1e6, 4e-3).unwrap();
        let net = b.build().unwrap();
        let d = infer_prop_delay(&net, x, z);
        assert!((d - 4e-3).abs() < 1e-12, "mean fallback expected, got {d}");
    }

    #[test]
    fn augmenting_a_ring_reduces_kfail() {
        let (net, tm) = ring6();
        let params = DesignParams {
            budget: 2,
            capacity: 1e6,
            candidate_limit: 9,
            policy: WeightPolicy::HopCount,
            threads: 1,
        };
        let report = augment(&net, &tm, CostParams::default(), &params);
        assert!(
            !report.steps.is_empty(),
            "a bare ring must benefit from a chord"
        );
        for s in &report.steps {
            assert!(
                s.kfail_after.better_than(&s.kfail_before),
                "accepted step must strictly improve Kfail"
            );
        }
        // The augmented network has budget-many extra duplex links.
        assert_eq!(
            report.network.num_links(),
            net.num_links() + 2 * report.steps.len()
        );
        assert!(report.candidates_scored > 0);
    }

    #[test]
    fn steps_chain_monotonically() {
        let (net, tm) = ring6();
        let report = augment(
            &net,
            &tm,
            CostParams::default(),
            &DesignParams {
                budget: 3,
                capacity: 1e6,
                candidate_limit: 9,
                policy: WeightPolicy::HopCount,
                threads: 1,
            },
        );
        for pair in report.steps.windows(2) {
            // Next round's "before" equals previous round's "after".
            assert_eq!(pair[1].kfail_before, pair[0].kfail_after);
        }
    }

    #[test]
    fn delay_proportional_policy_prefers_short_links_for_delay_class() {
        let (net, _) = ring6();
        let w = WeightPolicy::DelayProportional { wmax: 20 }.weights(&net);
        // Uniform ring: all delays equal -> all delay weights equal and
        // maximal (frac = 1).
        for l in net.links() {
            assert_eq!(w.get(Class::Delay, l), 20);
            assert_eq!(w.get(Class::Throughput, l), 1);
        }
    }

    #[test]
    fn criticality_ranking_prefers_detour_killers() {
        let (net, _) = ring6();
        // All criticality sits on one ring link, say 0-1: failing it
        // forces the 5-hop detour 0-5-4-3-2-1. The best candidates are
        // chords that shortcut that detour; the worst do nothing for it.
        let rep = net
            .duplex_representatives()
            .into_iter()
            .find(|&l| {
                let link = net.link(l);
                (link.src.index(), link.dst.index()) == (0, 1)
                    || (link.src.index(), link.dst.index()) == (1, 0)
            })
            .unwrap();
        let guide = CriticalityGuide {
            links: vec![rep],
            scores: vec![1.0],
        };
        let ranked = rank_candidates_by_criticality(&net, &guide, usize::MAX);
        assert_eq!(ranked.len(), 9);
        // Scores are descending and non-negative.
        for w in ranked.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        assert!(ranked[0].2 > 0.0, "some candidate must cut the detour");
        // The top candidate must touch the detour's far side relative to
        // the critical link: connecting a neighbour of 0 to a neighbour
        // of 1 across the ring. Candidate (1,5) or (0,2) shortcut the
        // 5-hop detour down to ~2 hops; (2,4) style chords in the middle
        // help less.
        let top: (usize, usize) = (ranked[0].0.index(), ranked[0].1.index());
        assert!(
            [(1, 5), (0, 2)].contains(&(top.0.min(top.1), top.0.max(top.1))),
            "unexpected top candidate {top:?}"
        );
    }

    #[test]
    fn guided_augmentation_matches_or_beats_geometric_shortlists() {
        // With a shortlist too small to cover all candidates, the guided
        // ordering must never do worse than geometric ordering on the
        // final Kfail: it looks at the same number of candidates but in
        // criticality order. (With full coverage both are identical.)
        let (net, tm) = ring6();
        let universe = crate::FailureUniverse::of(&net);
        let guide = CriticalityGuide {
            links: universe.failable.clone(),
            scores: vec![1.0; universe.failable.len()],
        };
        let params = DesignParams {
            budget: 1,
            capacity: 1e6,
            candidate_limit: 3, // deliberately starved
            policy: WeightPolicy::HopCount,
            threads: 1,
        };
        let geometric = augment(&net, &tm, CostParams::default(), &params);
        let guided = augment_with(&net, &tm, CostParams::default(), &params, Some(&guide));
        let final_kfail = |r: &DesignReport| {
            policy_kfail(&r.network, &tm, CostParams::default(), params.policy, 1)
        };
        let kg = final_kfail(&guided);
        let km = final_kfail(&geometric);
        assert!(
            !km.better_than(&kg) || (km.lambda - kg.lambda).abs() < 1e-6,
            "guided {kg} lost to geometric {km}"
        );
    }

    #[test]
    fn guide_from_report_aligns_links_and_scores() {
        let (net, tm) = ring6();
        // Build a tiny pipeline run to get a real report + criticality.
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = crate::RobustOptimizer::new(&ev, crate::Params::quick(3));
        let report = opt.optimize();
        // A ring has no survivable single failures... actually it does:
        // failing one ring link leaves a path. Criticality estimates need
        // the store, which the report does not carry; reconstruct from a
        // fresh Phase 1 (same seed -> same store).
        let universe = crate::FailureUniverse::of(&net);
        let p1 = crate::phase1::run(&ev, &universe, &crate::Params::quick(3));
        let crit = crate::criticality::Criticality::estimate(&p1.store, 0.1);
        let guide = CriticalityGuide::from_report(&report, &crit);
        assert_eq!(guide.links.len(), guide.scores.len());
        assert_eq!(guide.links, report.critical_links);
        assert!(guide.scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn augment_against_srlg_set_runs() {
        let (net, tm) = ring6();
        let params = DesignParams {
            budget: 1,
            capacity: 1e6,
            candidate_limit: 9,
            policy: WeightPolicy::HopCount,
            threads: 1,
        };
        // Designing against the SRLG union set (tiny radius -> just the
        // single-link universe plus any coincident-midpoint groups) still
        // finds an improving chord on a bare ring.
        let report = augment_against(&net, &tm, CostParams::default(), &params, None, |n| {
            crate::ext::srlg::Srlg::geographic(n, 1e-9)
        });
        assert!(!report.steps.is_empty());
        for s in &report.steps {
            assert!(s.kfail_after.better_than(&s.kfail_before));
        }
    }

    #[test]
    fn zero_budget_is_a_noop() {
        let (net, tm) = ring6();
        let report = augment(
            &net,
            &tm,
            CostParams::default(),
            &DesignParams {
                budget: 0,
                ..DesignParams::default()
            },
        );
        assert!(report.steps.is_empty());
        assert_eq!(report.network.num_links(), net.num_links());
    }
}
