//! Probabilistic failure model (conclusion extension).
//!
//! Instead of weighting every single-link failure equally in `Kfail`
//! (Eq. 4 sums uniformly), each scenario gets a probability `p_l` and the
//! objective becomes the *expected* failure cost
//! `⟨Σ p_l·Λfail,l, Σ p_l·Φfail,l⟩`. The critical-link machinery carries
//! over unchanged — exactly the claim of §VI — with one refinement: the
//! criticality that drives selection is scaled by the same probabilities,
//! so rarely-failing links are (correctly) harder to justify a slot for.

use dtr_cost::Evaluator;
use dtr_net::Network;

use crate::criticality::Criticality;
use crate::params::Params;
use crate::phase1::Phase1Output;
use crate::phase2::{self, Phase2Output};
use crate::selection;
use crate::universe::FailureUniverse;

/// Per-failable-link failure probabilities (index-aligned with
/// `FailureUniverse::failable`). Values need not sum to 1 — only relative
/// magnitude matters to the optimization.
#[derive(Clone, Debug)]
pub struct FailureModel {
    pub probabilities: Vec<f64>,
}

impl FailureModel {
    /// Uniform model: recovers the paper's plain Eq. (4) objective.
    pub fn uniform(universe: &FailureUniverse) -> Self {
        FailureModel {
            probabilities: vec![1.0; universe.len()],
        }
    }

    /// Length-proportional model: long-haul links fail more often (fiber
    /// cuts scale with route mileage — the standard ISP availability
    /// model). Probability ∝ propagation delay.
    pub fn length_proportional(net: &Network, universe: &FailureUniverse) -> Self {
        let probabilities = universe
            .failable
            .iter()
            .map(|&l| net.link(l).prop_delay.max(f64::MIN_POSITIVE))
            .collect();
        FailureModel { probabilities }
    }

    /// Validate against a universe.
    pub fn validate(&self, universe: &FailureUniverse) {
        assert_eq!(
            self.probabilities.len(),
            universe.len(),
            "one probability per failable link"
        );
        assert!(
            self.probabilities
                .iter()
                .all(|&p| p >= 0.0 && p.is_finite()),
            "probabilities must be finite and non-negative"
        );
    }
}

/// Probability-weighted critical-link selection: the expected-cost
/// criticality of link `l` is its distribution-shape criticality times its
/// failure probability.
pub fn select_critical(
    phase1: &Phase1Output,
    model: &FailureModel,
    universe: &FailureUniverse,
    params: &Params,
    n: usize,
) -> Vec<usize> {
    model.validate(universe);
    let base = Criticality::estimate(&phase1.store, params.left_tail_fraction);
    let scaled = Criticality {
        rho_lambda: scale(&base.rho_lambda, &model.probabilities),
        rho_phi: scale(&base.rho_phi, &model.probabilities),
        norm_lambda: scale(&base.norm_lambda, &model.probabilities),
        norm_phi: scale(&base.norm_phi, &model.probabilities),
    };
    selection::select(&scaled, n).indices
}

fn scale(values: &[f64], by: &[f64]) -> Vec<f64> {
    values.iter().zip(by).map(|(&v, &p)| v * p).collect()
}

/// Run the probabilistic robust optimization: criticality-select under the
/// model, then Phase 2 with probability-weighted scenario costs.
pub fn optimize(
    ev: &Evaluator<'_>,
    universe: &FailureUniverse,
    params: &Params,
    phase1: &Phase1Output,
    model: &FailureModel,
) -> Phase2Output {
    model.validate(universe);
    let n = universe.target_size(params.critical_fraction);
    let critical = select_critical(phase1, model, universe, params, n);
    let weights: Vec<f64> = critical.iter().map(|&i| model.probabilities[i]).collect();
    phase2::run(ev, universe, &critical, params, phase1, Some(&weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;
    use dtr_cost::CostParams;
    use dtr_net::{NetworkBuilder, Point};
    use dtr_traffic::gravity;

    fn testbed() -> (dtr_net::Network, dtr_traffic::ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64 * 0.2, (i % 2) as f64 * 0.3)))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 1e-3 * (i + 1) as f64)
                .unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2e6,
            ..gravity::GravityConfig::paper_default(6, 3)
        });
        (net, tm)
    }

    #[test]
    fn uniform_model_matches_unweighted_selection() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let p1 = phase1::run(&ev, &universe, &params);
        let model = FailureModel::uniform(&universe);
        let a = select_critical(&p1, &model, &universe, &params, 3);
        let base = Criticality::estimate(&p1.store, params.left_tail_fraction);
        let b = selection::select(&base, 3).indices;
        assert_eq!(a, b);
    }

    #[test]
    fn length_proportional_model_prefers_long_links() {
        let (net, _) = testbed();
        let universe = FailureUniverse::of(&net);
        let model = FailureModel::length_proportional(&net, &universe);
        // Probabilities mirror the per-link delays we constructed.
        for (i, &l) in universe.failable.iter().enumerate() {
            assert_eq!(model.probabilities[i], net.link(l).prop_delay);
        }
    }

    #[test]
    fn probabilistic_optimization_runs_and_is_feasible() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(7);
        let p1 = phase1::run(&ev, &universe, &params);
        let model = FailureModel::length_proportional(&net, &universe);
        let out = optimize(&ev, &universe, &params, &p1, &model);
        assert!(phase2::feasible(
            &out.best_normal,
            p1.best_cost.lambda,
            p1.best_cost.phi,
            params.chi
        ));
    }

    #[test]
    #[should_panic(expected = "one probability per failable link")]
    fn wrong_model_size_panics() {
        let (net, _) = testbed();
        let universe = FailureUniverse::of(&net);
        FailureModel {
            probabilities: vec![1.0],
        }
        .validate(&universe);
    }
}
