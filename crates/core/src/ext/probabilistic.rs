//! Probabilistic failure model (conclusion extension).
//!
//! Instead of weighting every single-link failure equally in `Kfail`
//! (Eq. 4 sums uniformly), each scenario gets a probability `p_l` and the
//! objective becomes the *expected* failure cost
//! `⟨Σ p_l·Λfail,l, Σ p_l·Φfail,l⟩`. The critical-link machinery carries
//! over unchanged — exactly the claim of §VI — with one refinement: the
//! criticality that drives selection is scaled by the same probabilities,
//! so rarely-failing links are (correctly) harder to justify a slot for.
//!
//! This module is a thin [`ScenarioSet`] constructor: [`Probabilistic`]
//! wraps a [`FailureUniverse`] and a [`FailureModel`] and plugs into
//! [`RobustOptimizer::builder`](crate::pipeline::RobustOptimizer::builder):
//!
//! ```ignore
//! let report = RobustOptimizer::builder(&ev)
//!     .scenarios(Probabilistic::length_proportional(&net))
//!     .params(params)
//!     .build()
//!     .optimize();
//! ```
//!
//! The pre-redesign free functions `optimize` and `select_critical` are
//! gone; their Phase-2 plumbing now lives once, in the generic pipeline.

use dtr_net::Network;
use dtr_routing::Scenario;

use crate::scenario::ScenarioSet;
use crate::universe::FailureUniverse;

/// Per-failable-link failure probabilities (index-aligned with
/// `FailureUniverse::failable`). Values need not sum to 1 — only relative
/// magnitude matters to the optimization. Use
/// [`FailureModel::normalized`] when a true distribution is wanted
/// (e.g. for availability reports).
#[derive(Clone, Debug)]
pub struct FailureModel {
    pub probabilities: Vec<f64>,
}

impl FailureModel {
    /// Uniform model: recovers the paper's plain Eq. (4) objective.
    pub fn uniform(universe: &FailureUniverse) -> Self {
        FailureModel {
            probabilities: vec![1.0; universe.len()],
        }
    }

    /// Length-proportional model: long-haul links fail more often (fiber
    /// cuts scale with route mileage — the standard ISP availability
    /// model). Probability ∝ propagation delay.
    pub fn length_proportional(net: &Network, universe: &FailureUniverse) -> Self {
        let probabilities = universe
            .failable
            .iter()
            .map(|&l| net.link(l).prop_delay.max(f64::MIN_POSITIVE))
            .collect();
        FailureModel { probabilities }
    }

    /// The same model rescaled so the probabilities sum to 1 (no-op on an
    /// all-zero model).
    pub fn normalized(&self) -> Self {
        let total: f64 = self.probabilities.iter().sum();
        if total <= 0.0 {
            return self.clone();
        }
        FailureModel {
            probabilities: self.probabilities.iter().map(|&p| p / total).collect(),
        }
    }

    /// Validate against a universe.
    pub fn validate(&self, universe: &FailureUniverse) {
        assert_eq!(
            self.probabilities.len(),
            universe.len(),
            "one probability per failable link"
        );
        assert!(
            self.probabilities
                .iter()
                .all(|&p| p >= 0.0 && p.is_finite()),
            "probabilities must be finite and non-negative"
        );
    }
}

/// The probabilistic single-link [`ScenarioSet`]: the failure universe
/// with per-scenario probabilities weighting both the Phase-2 objective
/// and the criticality that drives Phase-1c selection.
#[derive(Clone, Debug)]
pub struct Probabilistic {
    universe: FailureUniverse,
    model: FailureModel,
}

impl Probabilistic {
    /// Build from an explicit model.
    ///
    /// # Panics
    /// Panics if the model mismatches the network's failure universe.
    pub fn with_model(net: &Network, model: FailureModel) -> Self {
        let universe = FailureUniverse::of(net);
        model.validate(&universe);
        Probabilistic { universe, model }
    }

    /// Length-proportional probabilities (fiber cuts scale with mileage).
    pub fn length_proportional(net: &Network) -> Self {
        let universe = FailureUniverse::of(net);
        let model = FailureModel::length_proportional(net, &universe);
        Probabilistic { universe, model }
    }

    /// Uniform probabilities — behaves exactly like [`FailureUniverse`]
    /// except the objective is declared weighted.
    pub fn uniform(net: &Network) -> Self {
        let universe = FailureUniverse::of(net);
        let model = FailureModel::uniform(&universe);
        Probabilistic { universe, model }
    }

    /// Reuse an already-analyzed universe.
    ///
    /// # Panics
    /// Panics if the model mismatches the universe.
    pub fn from_parts(universe: FailureUniverse, model: FailureModel) -> Self {
        model.validate(&universe);
        Probabilistic { universe, model }
    }

    /// The failure model.
    pub fn model(&self) -> &FailureModel {
        &self.model
    }
}

impl ScenarioSet for Probabilistic {
    fn universe(&self) -> &FailureUniverse {
        &self.universe
    }

    fn len(&self) -> usize {
        self.universe.len()
    }

    fn scenario(&self, i: usize) -> Scenario {
        self.universe.scenario(i)
    }

    fn weight(&self, i: usize) -> f64 {
        self.model.probabilities[i]
    }

    fn weighted(&self) -> bool {
        true
    }

    fn criticality_scale(&self) -> Option<&[f64]> {
        Some(&self.model.probabilities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RobustOptimizer;
    use crate::Params;
    use dtr_cost::{CostParams, Evaluator};
    use dtr_net::{NetworkBuilder, Point};
    use dtr_traffic::gravity;

    fn testbed() -> (dtr_net::Network, dtr_traffic::ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64 * 0.2, (i % 2) as f64 * 0.3)))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 1e-3 * (i + 1) as f64)
                .unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2e6,
            ..gravity::GravityConfig::paper_default(6, 3)
        });
        (net, tm)
    }

    #[test]
    fn length_proportional_model_prefers_long_links() {
        let (net, _) = testbed();
        let set = Probabilistic::length_proportional(&net);
        // Probabilities mirror the per-link delays we constructed.
        for (i, &l) in set.universe().failable.iter().enumerate() {
            assert_eq!(set.weight(i), net.link(l).prop_delay);
        }
        assert!(set.weighted());
        assert!(set.criticality_scale().is_some());
    }

    #[test]
    fn normalized_model_sums_to_one() {
        let (net, _) = testbed();
        let universe = FailureUniverse::of(&net);
        let model = FailureModel::length_proportional(&net, &universe).normalized();
        let total: f64 = model.probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_optimization_runs_and_is_feasible() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let params = Params::quick(7);
        let opt = RobustOptimizer::builder(&ev)
            .scenarios(Probabilistic::length_proportional(&net))
            .params(params)
            .build();
        let r = opt.optimize();
        assert!(crate::phase2::feasible(
            &r.robust_normal_cost,
            r.regular_cost.lambda,
            r.regular_cost.phi,
            params.chi
        ));
        assert!(!r.critical_indices.is_empty());
    }

    #[test]
    #[should_panic(expected = "one probability per failable link")]
    fn wrong_model_size_panics() {
        let (net, _) = testbed();
        Probabilistic::with_model(
            &net,
            FailureModel {
                probabilities: vec![1.0],
            },
        );
    }
}
