//! Prior-art critical-link selectors (§IV-C).
//!
//! The paper motivates its mean-minus-left-tail criticality by showing that
//! earlier single-routing selectors do not carry over to DTR:
//!
//! * **Random** (Yuan \[24\]) — sample the critical set uniformly; the DTR
//!   solution space explosion makes this a lottery.
//! * **Load-based** (Fortz & Thorup \[10\]) — pick the links with the
//!   highest normal-conditions utilization; load is neither the only nor
//!   the dominant metric for delay-sensitive traffic.
//! * **Fluctuation** (Sridharan & Guérin \[23\]) — pick links whose
//!   failure-emulating cost samples fluctuate the most (widest spread).
//!   This is the closest ancestor of the paper's method; the paper's
//!   refinement replaces fragile global thresholds by the distribution-
//!   shape quantity `mean − left-tail-mean`, computed per link.
//!
//! These selectors exist so the ablation bench can quantify how much
//! selection quality matters (the paper reports the comparison
//! qualitatively).

use dtr_cost::Evaluator;
use dtr_routing::{route_class, Class, WeightSetting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::criticality::{rank_desc, Criticality};
use crate::samples::SampleStore;
use crate::selection;
use crate::universe::FailureUniverse;

/// Which critical-link selection strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Selector {
    /// The paper's method: normalized mean-minus-left-tail criticality
    /// merged by Algorithm 1.
    MeanLeftTail,
    /// Uniform random subset (Yuan \[24\]).
    Random,
    /// Highest normal-conditions total link load (Fortz-Thorup \[10\]).
    LoadBased,
    /// Widest per-link sample spread, max − min (adaptation of
    /// Sridharan-Guérin \[23\]; see module docs).
    Fluctuation,
}

impl std::fmt::Display for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Selector::MeanLeftTail => write!(f, "mean-left-tail"),
            Selector::Random => write!(f, "random"),
            Selector::LoadBased => write!(f, "load-based"),
            Selector::Fluctuation => write!(f, "fluctuation"),
        }
    }
}

/// Select `n` critical failure indices with the given strategy.
///
/// `best` is the Phase-1 best weight setting (needed by the load-based
/// selector); `store` is the Phase-1 sample harvest (needed by the paper's
/// and the fluctuation selector); `tail_fraction` and `seed` parameterize
/// the respective strategies.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Phase-1c inputs
pub fn select(
    selector: Selector,
    ev: &Evaluator<'_>,
    universe: &FailureUniverse,
    store: &SampleStore,
    best: &WeightSetting,
    tail_fraction: f64,
    n: usize,
    seed: u64,
) -> Vec<usize> {
    let m = universe.len();
    let n = n.min(m);
    match selector {
        Selector::MeanLeftTail => {
            let crit = Criticality::estimate(store, tail_fraction);
            selection::select(&crit, n).indices
        }
        Selector::Random => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f);
            let mut idx: Vec<usize> = (0..m).collect();
            idx.shuffle(&mut rng);
            idx.truncate(n);
            idx.sort_unstable();
            idx
        }
        Selector::LoadBased => {
            // Total normal-conditions load on each failable duplex link
            // (max of the two directions).
            let net = ev.net();
            let mask = net.fresh_mask();
            let rd = route_class(net, best.weights(Class::Delay), &ev.traffic().delay, &mask);
            let rt = route_class(
                net,
                best.weights(Class::Throughput),
                &ev.traffic().throughput,
                &mask,
            );
            let total = dtr_routing::router::total_loads(&rd, &rt);
            let score: Vec<f64> = universe
                .failable
                .iter()
                .map(|&rep| {
                    let fwd = total[rep.index()];
                    let bwd = net
                        .reverse_link(rep)
                        .map(|r| total[r.index()])
                        .unwrap_or(0.0);
                    fwd.max(bwd)
                })
                .collect();
            let mut idx = rank_desc(&score);
            idx.truncate(n);
            idx.sort_unstable();
            idx
        }
        Selector::Fluctuation => {
            let score: Vec<f64> = (0..m)
                .map(|i| {
                    // Spread of the (Λ + Φ-scaled) samples; links without
                    // samples score 0.
                    match (store.lambda_stats(i, 0.5), store.phi_stats(i, 0.5)) {
                        (Some(l), Some(p)) => {
                            // mean − tail over the lower half approximates
                            // overall spread robustly.
                            l.rho() + p.rho()
                        }
                        _ => 0.0,
                    }
                })
                .collect();
            let mut idx = rank_desc(&score);
            idx.truncate(n);
            idx.sort_unstable();
            idx
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::{gravity, ClassMatrices};

    fn testbed() -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64, 0.0)))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2e6,
            ..gravity::GravityConfig::paper_default(6, 2)
        });
        (net, tm)
    }

    fn harness() -> (Network, ClassMatrices) {
        testbed()
    }

    #[test]
    fn all_selectors_return_n_indices() {
        let (net, tm) = harness();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let mut store = SampleStore::new(universe.len());
        for i in 0..universe.len() {
            for k in 0..10 {
                store.record(i, (i * k) as f64, k as f64);
            }
        }
        let best = WeightSetting::uniform(net.num_links(), 20);
        for sel in [
            Selector::MeanLeftTail,
            Selector::Random,
            Selector::LoadBased,
            Selector::Fluctuation,
        ] {
            let idx = select(sel, &ev, &universe, &store, &best, 0.1, 3, 42);
            assert!(idx.len() <= 3, "{sel}: {idx:?}");
            assert!(!idx.is_empty(), "{sel}");
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "{sel}: sorted, unique");
            assert!(idx.iter().all(|&i| i < universe.len()), "{sel}: in range");
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let (net, tm) = harness();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let store = SampleStore::new(universe.len());
        let best = WeightSetting::uniform(net.num_links(), 20);
        let a = select(Selector::Random, &ev, &universe, &store, &best, 0.1, 3, 7);
        let b = select(Selector::Random, &ev, &universe, &store, &best, 0.1, 3, 7);
        let c = select(Selector::Random, &ev, &universe, &store, &best, 0.1, 3, 8);
        assert_eq!(a, b);
        assert!(a != c || a.len() == universe.len());
    }

    #[test]
    fn load_based_picks_loaded_links() {
        let (net, _) = harness();
        // Put all traffic on a single corridor: 0 -> 1.
        let mut tm = ClassMatrices::zeros(6);
        tm.delay.set(0, 1, 1e5);
        tm.throughput.set(0, 1, 5e5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let store = SampleStore::new(universe.len());
        let best = WeightSetting::uniform(net.num_links(), 20);
        let idx = select(
            Selector::LoadBased,
            &ev,
            &universe,
            &store,
            &best,
            0.1,
            1,
            0,
        );
        // The selected duplex link must be the 0-1 corridor.
        let rep = universe.failable[idx[0]];
        let link = net.link(rep);
        let pair = (
            link.src.index().min(link.dst.index()),
            link.src.index().max(link.dst.index()),
        );
        assert_eq!(pair, (0, 1));
    }

    #[test]
    fn fluctuation_prefers_wide_distributions() {
        let (net, tm) = harness();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let mut store = SampleStore::new(universe.len());
        for i in 0..universe.len() {
            for k in 0..10 {
                // Link 2 has a wide spread, everything else is constant.
                let v = if i == 2 { (k * 50) as f64 } else { 100.0 };
                store.record(i, v, 1.0);
            }
        }
        let best = WeightSetting::uniform(net.num_links(), 20);
        let idx = select(
            Selector::Fluctuation,
            &ev,
            &universe,
            &store,
            &best,
            0.1,
            1,
            0,
        );
        assert_eq!(idx, vec![2]);
    }
}
