//! Phase 1c — critical-set selection (Algorithm 1 of the paper).
//!
//! Input: the two per-class lists `E_Λ`, `E_Φ` (links in descending
//! normalized criticality) and a target size `n`. The expected normalized
//! error of keeping only the top-`m` of a list is the criticality mass
//! *outside* the kept prefix:
//! `ρ̄_Λ(E_Λ,m) = Σ_{l ∉ E_Λ,m} ρ̄_Λ,l` (a suffix sum).
//!
//! Starting from both full lists, Algorithm 1 repeatedly shrinks the list
//! whose hypothetical one-step shrink incurs the *smaller* error, until the
//! union of the two prefixes fits in `n`. The critical set is that union.

use dtr_cost::Evaluator;

use crate::baselines::{self, Selector};
use crate::criticality::Criticality;
use crate::params::Params;
use crate::phase1::Phase1Output;
use crate::scenario::ScenarioSet;

/// Result of Phase 1c.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalSet {
    /// Selected failure indices, ascending.
    pub indices: Vec<usize>,
    /// Prefix length kept from `E_Λ`.
    pub n1: usize,
    /// Prefix length kept from `E_Φ`.
    pub n2: usize,
    /// Residual normalized Λ error `ρ̄_Λ(E_Λ,n1)`.
    pub err_lambda: f64,
    /// Residual normalized Φ error `ρ̄_Φ(E_Φ,n2)`.
    pub err_phi: f64,
}

/// Run Algorithm 1: merge the two criticality rankings into one set of at
/// most `n` links.
///
/// # Panics
/// Panics if `n == 0` while links exist (an empty critical set would make
/// Phase 2 vacuous).
pub fn select(crit: &Criticality, n: usize) -> CriticalSet {
    let m = crit.len();
    if m == 0 {
        return CriticalSet {
            indices: Vec::new(),
            n1: 0,
            n2: 0,
            err_lambda: 0.0,
            err_phi: 0.0,
        };
    }
    assert!(n >= 1, "target critical-set size must be at least 1");
    let n = n.min(m);

    let e_lambda = crit.ranking_lambda();
    let e_phi = crit.ranking_phi();

    // suffix_err[k] = error if only the top-k prefix is kept.
    let suffix = |order: &[usize], vals: &[f64]| -> Vec<f64> {
        let mut s = vec![0.0; m + 1];
        for k in (0..m).rev() {
            s[k] = s[k + 1] + vals[order[k]];
        }
        s
    };
    let err_l = suffix(&e_lambda, &crit.norm_lambda);
    let err_p = suffix(&e_phi, &crit.norm_phi);

    let mut n1 = m;
    let mut n2 = m;
    // Incremental union tracking: a per-link membership count over the
    // two prefixes, decremented as each shrink step drops exactly one
    // element — O(1) per step instead of a fresh O(m) recount, which
    // made selection quadratic in the failure universe at large
    // topologies.
    let mut membership = vec![0u8; m];
    let mut union = 0usize;
    for &l in e_lambda[..n1].iter().chain(e_phi[..n2].iter()) {
        if membership[l] == 0 {
            union += 1;
        }
        membership[l] += 1;
    }
    while union > n {
        // Shrink the list that loses less (Algorithm 1, lines 3-4):
        // if the Λ error of shrinking to n1-1 is >= the Φ error of
        // shrinking to n2-1, shrink the Φ list instead, else shrink Λ.
        let shrink_phi = n2 > 0 && (n1 == 0 || err_l[n1 - 1] >= err_p[n2 - 1]);
        let dropped = if shrink_phi {
            n2 -= 1;
            e_phi[n2]
        } else {
            n1 -= 1;
            e_lambda[n1]
        };
        membership[dropped] -= 1;
        if membership[dropped] == 0 {
            union -= 1;
        }
    }

    let mut included = vec![false; m];
    for &l in &e_lambda[..n1] {
        included[l] = true;
    }
    for &l in &e_phi[..n2] {
        included[l] = true;
    }
    let indices: Vec<usize> = (0..m).filter(|&i| included[i]).collect();

    CriticalSet {
        indices,
        n1,
        n2,
        err_lambda: err_l[n1],
        err_phi: err_p[n2],
    }
}

/// Phase-1c for an arbitrary [`ScenarioSet`]: the scenario indices
/// Phase 2 should optimize over. Selection itself is cheap — its inputs
/// (the Phase-1 sample store and, for the load-based baseline, one
/// normal-conditions routing) are already computed; no per-scenario
/// evaluation is re-derived here.
///
/// * Sets without per-single-link structure (`supports_selection() ==
///   false`, e.g. double-link ensembles) get the full sweep.
/// * With the paper's [`Selector::MeanLeftTail`] and a set that scales
///   criticality (the probabilistic model), the estimate is multiplied by
///   the set's per-link factors before Algorithm 1 runs.
/// * Everything else routes through [`baselines::select`] unchanged.
///
/// The criticality-selected *failure* indices are finally mapped to
/// *scenario* indices by the set (identity for single-link sets; SRLG
/// sets append their group scenarios).
pub fn select_for_set<S: ScenarioSet + ?Sized>(
    set: &S,
    ev: &Evaluator<'_>,
    phase1: &Phase1Output,
    params: &Params,
    selector: Selector,
) -> Vec<usize> {
    if !set.supports_selection() {
        return set.all_indices();
    }
    let universe = set.universe();
    let n = universe.target_size(params.critical_fraction);
    let critical_failures = match (selector, set.criticality_scale()) {
        (Selector::MeanLeftTail, Some(scale)) => {
            let crit =
                Criticality::estimate(&phase1.store, params.left_tail_fraction).scaled(scale);
            select(&crit, n).indices
        }
        _ => baselines::select(
            selector,
            ev,
            universe,
            &phase1.store,
            &phase1.best,
            params.left_tail_fraction,
            n,
            params.seed,
        ),
    };
    set.critical_scenarios(&critical_failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit(norm_lambda: Vec<f64>, norm_phi: Vec<f64>) -> Criticality {
        Criticality {
            rho_lambda: norm_lambda.clone(),
            rho_phi: norm_phi.clone(),
            norm_lambda,
            norm_phi,
        }
    }

    #[test]
    fn returns_at_most_n_links() {
        let c = crit(vec![0.5, 0.4, 0.3, 0.2, 0.1], vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        for n in 1..=5 {
            let cs = select(&c, n);
            assert!(cs.indices.len() <= n, "n={n}: got {}", cs.indices.len());
            assert!(!cs.indices.is_empty());
        }
    }

    #[test]
    fn perfectly_aligned_classes_keep_top_links() {
        // Both classes agree: links 0 > 1 > 2 > 3.
        let c = crit(vec![0.4, 0.3, 0.2, 0.1], vec![0.4, 0.3, 0.2, 0.1]);
        let cs = select(&c, 2);
        assert_eq!(cs.indices, vec![0, 1]);
    }

    #[test]
    fn opposed_classes_take_from_both() {
        // Λ cares about 0,1; Φ cares about 3,2 — equally strongly.
        let c = crit(vec![0.6, 0.4, 0.0, 0.0], vec![0.0, 0.0, 0.4, 0.6]);
        let cs = select(&c, 2);
        // The top link of each class survives.
        assert_eq!(cs.indices, vec![0, 3]);
        assert_eq!(cs.n1, 1);
        assert_eq!(cs.n2, 1);
    }

    #[test]
    fn dominant_class_wins_budget() {
        // Λ has big criticality mass everywhere; Φ is negligible.
        let c = crit(vec![0.5, 0.3, 0.15, 0.05], vec![1e-6, 2e-6, 1.5e-6, 0.5e-6]);
        let cs = select(&c, 3);
        // Algorithm shrinks the Φ list first: kept links are Λ's top 3.
        assert_eq!(cs.indices, vec![0, 1, 2]);
        assert_eq!(cs.n1, 3);
    }

    #[test]
    fn residual_errors_are_suffix_sums() {
        let c = crit(vec![0.4, 0.3, 0.2, 0.1], vec![0.0, 0.0, 0.0, 0.0]);
        let cs = select(&c, 2);
        assert_eq!(cs.indices, vec![0, 1]);
        assert!((cs.err_lambda - 0.3).abs() < 1e-12); // 0.2 + 0.1 left out
        assert_eq!(cs.err_phi, 0.0);
    }

    #[test]
    fn n_larger_than_links_returns_all() {
        let c = crit(vec![0.1, 0.2], vec![0.3, 0.4]);
        let cs = select(&c, 10);
        assert_eq!(cs.indices, vec![0, 1]);
    }

    #[test]
    fn empty_criticality_is_fine() {
        let c = crit(vec![], vec![]);
        let cs = select(&c, 3);
        assert!(cs.indices.is_empty());
    }

    #[test]
    fn all_zero_criticality_still_returns_n_links() {
        // Degenerate but possible (no violations ever observed): selection
        // must still return a deterministic set of n links.
        let c = crit(vec![0.0; 6], vec![0.0; 6]);
        let cs = select(&c, 2);
        assert_eq!(cs.indices.len(), 2);
    }

    #[test]
    fn large_universe_selection_stays_cheap_and_exact() {
        // 50k-link universe with opposed rankings — the old recounting
        // shrink loop was quadratic here. Exactness is cross-checked by
        // rebuilding the union from the returned prefixes.
        let m = 50_000usize;
        let lam: Vec<f64> = (0..m).map(|i| (m - i) as f64 / m as f64).collect();
        let phi: Vec<f64> = (0..m).map(|i| (i + 1) as f64 / m as f64).collect();
        let c = crit(lam, phi);
        let n = m / 10;
        let cs = select(&c, n);
        assert!(cs.indices.len() <= n);
        let mut included = vec![false; m];
        for &l in crate::criticality::Criticality::ranking_lambda(&c)[..cs.n1].iter() {
            included[l] = true;
        }
        for &l in crate::criticality::Criticality::ranking_phi(&c)[..cs.n2].iter() {
            included[l] = true;
        }
        let rebuilt: Vec<usize> = (0..m).filter(|&i| included[i]).collect();
        assert_eq!(rebuilt, cs.indices);
        assert_eq!(
            cs.indices.len(),
            n,
            "opposed full-mass lists fill n exactly"
        );
    }

    #[test]
    fn union_semantics_keep_overlap_cheap() {
        // Same top link in both classes: overlap means the union of
        // (n1, n2) = (2, 2) prefixes can already fit in n = 3.
        let c = crit(vec![0.9, 0.1, 0.0, 0.0], vec![0.8, 0.0, 0.2, 0.0]);
        let cs = select(&c, 3);
        assert!(cs.indices.contains(&0));
        assert!(cs.indices.len() <= 3);
    }
}
