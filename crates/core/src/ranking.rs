//! Criticality-rank convergence tracking (§IV-D1).
//!
//! Between consecutive rank updates (every τ samples/link on average) the
//! paper computes, per link, the rank displacement
//! `S_Λ,l(t) = |Rank_Λ(l,t) − Rank_Λ(l,t−1)|`, then the weighted total
//! `S_Λ = Σ_l γ_l · S_Λ,l` with `γ_l ∝ S_Λ,l` and `Σ γ_l = 1` — i.e. links
//! that move more count more. Criticality estimates are deemed converged
//! when both `S_Λ ≤ e` and `S_Φ ≤ e`.
//!
//! With `γ_l = S_l / Σ_j S_j`, the index reduces to
//! `S = Σ_l S_l² / Σ_l S_l` (and 0 when no rank changed).

/// Tracks rank vectors between updates and computes the change index.
#[derive(Clone, Debug, Default)]
pub struct RankTracker {
    prev_lambda: Option<Vec<usize>>,
    prev_phi: Option<Vec<usize>>,
}

/// The pair `(S_Λ, S_Φ)` from one update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankChange {
    pub s_lambda: f64,
    pub s_phi: f64,
}

impl RankChange {
    /// Converged per the paper's criterion: both indices at or below `e`.
    pub fn converged(&self, e: f64) -> bool {
        self.s_lambda <= e && self.s_phi <= e
    }
}

impl RankTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the current rankings (from
    /// [`crate::criticality::Criticality::ranking_lambda`] /
    /// [`ranking_phi`](crate::criticality::Criticality::ranking_phi));
    /// returns the change index versus the previous update, or `None` on
    /// the first call (no baseline yet).
    pub fn update(
        &mut self,
        ranking_lambda: &[usize],
        ranking_phi: &[usize],
    ) -> Option<RankChange> {
        let change = match (&self.prev_lambda, &self.prev_phi) {
            (Some(pl), Some(pp)) => Some(RankChange {
                s_lambda: weighted_rank_change(pl, ranking_lambda),
                s_phi: weighted_rank_change(pp, ranking_phi),
            }),
            _ => None,
        };
        self.prev_lambda = Some(ranking_lambda.to_vec());
        self.prev_phi = Some(ranking_phi.to_vec());
        change
    }
}

/// `S = Σ_l γ_l |rank_t(l) − rank_{t−1}(l)|` with `γ_l ∝` the displacement
/// itself, i.e. `Σ d² / Σ d` over per-link displacements `d`.
pub fn weighted_rank_change(prev: &[usize], curr: &[usize]) -> f64 {
    assert_eq!(prev.len(), curr.len(), "ranking length changed");
    let n = prev.len();
    // rank position of each link in each ordering
    let mut pos_prev = vec![0usize; n];
    let mut pos_curr = vec![0usize; n];
    for (rank, &link) in prev.iter().enumerate() {
        pos_prev[link] = rank;
    }
    for (rank, &link) in curr.iter().enumerate() {
        pos_curr[link] = rank;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for l in 0..n {
        let d = pos_prev[l].abs_diff(pos_curr[l]) as f64;
        sum += d;
        sum_sq += d * d;
    }
    if sum == 0.0 {
        0.0
    } else {
        sum_sq / sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_have_zero_change() {
        let r = vec![2, 0, 1, 3];
        assert_eq!(weighted_rank_change(&r, &r), 0.0);
    }

    #[test]
    fn single_swap_change() {
        // Two links swap adjacent ranks: displacements [1, 1, 0, 0]
        // -> S = (1+1)/(1+1) = 1.
        let a = vec![0, 1, 2, 3];
        let b = vec![1, 0, 2, 3];
        assert_eq!(weighted_rank_change(&a, &b), 1.0);
    }

    #[test]
    fn large_moves_dominate() {
        // Link 0 moves 3 positions, others shift by <=1:
        // displacements [3, 1, 1, 1] -> S = (9+1+1+1)/6 = 2.
        let a = vec![0, 1, 2, 3];
        let b = vec![1, 2, 3, 0];
        assert_eq!(weighted_rank_change(&a, &b), 2.0);
    }

    #[test]
    fn full_reversal_is_large() {
        let a = vec![0, 1, 2, 3, 4];
        let b = vec![4, 3, 2, 1, 0];
        // displacements [4, 2, 0, 2, 4] -> (16+4+0+4+16)/12 = 40/12.
        assert!((weighted_rank_change(&a, &b) - 40.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_returns_none_first_then_changes() {
        let mut t = RankTracker::new();
        assert!(t.update(&[0, 1, 2], &[0, 1, 2]).is_none());
        let c = t.update(&[0, 1, 2], &[0, 1, 2]).unwrap();
        assert_eq!(c.s_lambda, 0.0);
        assert!(c.converged(2.0));
        let c = t.update(&[2, 1, 0], &[0, 1, 2]).unwrap();
        assert!(c.s_lambda > 0.0);
        assert_eq!(c.s_phi, 0.0);
    }

    #[test]
    fn convergence_requires_both_classes() {
        let c = RankChange {
            s_lambda: 1.0,
            s_phi: 5.0,
        };
        assert!(!c.converged(2.0));
        let c = RankChange {
            s_lambda: 1.0,
            s_phi: 2.0,
        };
        assert!(c.converged(2.0));
    }

    #[test]
    #[should_panic(expected = "length changed")]
    fn mismatched_lengths_panic() {
        weighted_rank_change(&[0, 1], &[0, 1, 2]);
    }
}
