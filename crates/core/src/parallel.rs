//! Parallel failure-cost sums.
//!
//! Phase 2's objective `K̄fail = ⟨Σ_l Λfail,l, Σ_l Φfail,l⟩` (Eq. 7)
//! requires one full two-class evaluation per critical scenario. The
//! scenarios are independent, so they fan out over `std::thread::scope`
//! workers in contiguous chunks. Each worker runs the evaluator's
//! scenario-batched [`Evaluator::evaluate_all`] on its chunk, which
//! checks a private workspace out of the evaluator's pool: every thread
//! gets its own scratch buffers and no-failure baseline, and within a
//! chunk only the destinations each failure actually touches are
//! re-routed. Per-scenario costs land back in input order and are
//! reduced **in scenario order**, so the floating-point sum — and
//! therefore the whole optimization trajectory — is identical for every
//! thread count (and bit-for-bit identical to serial per-scenario
//! evaluation).
//!
//! [`evaluate_set`] is the [`crate::scenario::ScenarioSet`]-native form:
//! the same sharding over stable scenario *indices*, materializing each
//! `Copy` scenario inside the worker instead of allocating a scenario
//! vector per sweep. Since the engine handles every scenario kind
//! incrementally, one sharded sweep serves the single-link universe and
//! the node / SRLG / double-link / probabilistic ensembles alike.

use dtr_cost::{Evaluator, LexCost};
use dtr_routing::{Scenario, WeightSetting};

/// Per-scenario costs of `w` under every scenario, in input order.
pub fn failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> Vec<LexCost> {
    assert!(threads >= 1);
    let workers = threads.min(scenarios.len());
    if workers <= 1 {
        return ev.evaluate_all(w, scenarios);
    }
    // Contiguous chunks, one per worker; results spliced back in order.
    let chunk = scenarios.len().div_ceil(workers);
    let mut out = Vec::with_capacity(scenarios.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = scenarios
            .chunks(chunk)
            .map(|part| s.spawn(move || ev.evaluate_all(w, part)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("failure-evaluation worker panicked"));
        }
    });
    out
}

/// Ordered sum of [`failure_costs`]: the compound `K̄fail`.
pub fn sum_failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> LexCost {
    failure_costs(ev, w, scenarios, threads)
        .iter()
        .fold(LexCost::ZERO, |acc, c| acc.add(c))
}

/// Ordered weighted sum: `⟨Σ p_i·Λ_i, Σ p_i·Φ_i⟩` over the scenario batch.
/// This is the probabilistic-ensemble compound cost; `weights` must match
/// `scenarios` in length.
pub fn weighted_sum_failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    weights: &[f64],
    threads: usize,
) -> LexCost {
    assert_eq!(weights.len(), scenarios.len(), "one weight per scenario");
    failure_costs(ev, w, scenarios, threads)
        .iter()
        .zip(weights)
        .fold(LexCost::ZERO, |acc, (c, &p)| {
            acc.add(&LexCost::new(c.lambda * p, c.phi * p))
        })
}

/// Sharded evaluation of a [`crate::scenario::ScenarioSet`]: the costs of
/// `w` under the scenarios at `indices`, in index order, **without
/// materializing** a scenario vector. Indices are partitioned into
/// contiguous chunks, one per worker; each worker checks one workspace
/// out of the evaluator's pool (its own scratch buffers and cached
/// no-failure baseline) and materializes each `Copy` scenario on the fly
/// with [`crate::scenario::ScenarioSet::scenario`]. Results are spliced
/// back in index order, so parallel equals serial to the bit — for every
/// scenario kind the set can hold (link, node, SRLG, double-link, and
/// their probabilistically weighted ensembles).
pub fn evaluate_set<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> Vec<LexCost> {
    assert!(threads >= 1);
    let sweep = |part: &[usize]| -> Vec<LexCost> {
        let mut ws = ev.acquire_workspace();
        let costs = part
            .iter()
            .map(|&i| ev.cost_with(&mut ws, w, set.scenario(i)))
            .collect();
        ev.release_workspace(ws);
        costs
    };
    let workers = threads.min(indices.len());
    if workers <= 1 {
        return sweep(indices);
    }
    let chunk = indices.len().div_ceil(workers);
    let mut out = Vec::with_capacity(indices.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = indices
            .chunks(chunk)
            .map(|part| s.spawn(move || sweep(part)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("scenario-evaluation worker panicked"));
        }
    });
    out
}

/// Per-scenario costs of `w` over a [`crate::scenario::ScenarioSet`]'s
/// selected indices, in index order (alias of [`evaluate_set`], kept for
/// the original slice-era name).
pub fn set_failure_costs<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> Vec<LexCost> {
    evaluate_set(ev, w, set, indices, threads)
}

/// Compound (weight-aware) cost of `w` over a scenario set's indices:
/// the plain ordered sum for uniform sets, the probability-weighted sum
/// for weighted ones. Both reductions run in index order — the exact
/// float-add sequence of the seed's per-scenario accumulation.
pub fn sum_set_costs<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> LexCost {
    let costs = evaluate_set(ev, w, set, indices, threads);
    if set.weighted() {
        costs
            .iter()
            .zip(indices)
            .fold(LexCost::ZERO, |acc, (c, &i)| {
                let p = set.weight(i);
                acc.add(&LexCost::new(c.lambda * p, c.phi * p))
            })
    } else {
        costs.iter().fold(LexCost::ZERO, |acc, c| acc.add(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::ClassMatrices;

    fn ring(n: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(Point::ORIGIN)).collect();
        for i in 0..n {
            b.add_duplex_link(ids[i], ids[(i + 1) % n], 100.0, 1e-3)
                .unwrap();
        }
        b.build().unwrap()
    }

    fn setup(n: usize) -> (Network, ClassMatrices) {
        let net = ring(n);
        let mut tm = ClassMatrices::zeros(n);
        for s in 0..n {
            tm.delay.set(s, (s + 1) % n, 5.0);
            tm.throughput.set(s, (s + 2) % n, 10.0);
        }
        (net, tm)
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        assert_eq!(scenarios.len(), 6);
        let serial = failure_costs(&ev, &w, &scenarios, 1);
        let parallel = failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(serial, parallel);
        let s1 = sum_failure_costs(&ev, &w, &scenarios, 1);
        let s4 = sum_failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn sum_matches_manual_accumulation() {
        let (net, tm) = setup(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let costs = failure_costs(&ev, &w, &scenarios, 1);
        let manual = costs.iter().fold(LexCost::ZERO, |a, c| a.add(c));
        assert_eq!(manual, sum_failure_costs(&ev, &w, &scenarios, 1));
    }

    #[test]
    fn empty_scenarios_sum_to_zero() {
        let (net, tm) = setup(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        assert_eq!(sum_failure_costs(&ev, &w, &[], 4), LexCost::ZERO);
    }

    #[test]
    fn weighted_sum_scales_each_scenario() {
        let (net, tm) = setup(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let weights = vec![0.5; scenarios.len()];
        let weighted = weighted_sum_failure_costs(&ev, &w, &scenarios, &weights, 2);
        let plain = sum_failure_costs(&ev, &w, &scenarios, 1);
        assert!((weighted.lambda - 0.5 * plain.lambda).abs() < 1e-9);
        assert!((weighted.phi - 0.5 * plain.phi).abs() < 1e-9);
    }

    #[test]
    fn evaluate_set_matches_slice_path_and_is_thread_invariant() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let set = crate::universe::FailureUniverse::of(&net);
        let indices: Vec<usize> = crate::scenario::ScenarioSet::all_indices(&set);
        let via_set_serial = evaluate_set(&ev, &w, &set, &indices, 1);
        let via_set_parallel = evaluate_set(&ev, &w, &set, &indices, 4);
        let via_slice = failure_costs(&ev, &w, &crate::scenario::ScenarioSet::scenarios(&set), 1);
        assert_eq!(via_set_serial, via_set_parallel);
        assert_eq!(via_set_serial, via_slice);
    }

    #[test]
    fn weighted_set_sum_reduces_in_index_order() {
        use crate::ext::probabilistic::FailureModel;
        use crate::scenario::{Probabilistic, ScenarioSet};
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let universe = crate::universe::FailureUniverse::of(&net);
        let model = FailureModel::length_proportional(&net, &universe);
        let set = Probabilistic::with_model(&net, model);
        let indices = set.all_indices();
        let serial = sum_set_costs(&ev, &w, &set, &indices, 1);
        let parallel = sum_set_costs(&ev, &w, &set, &indices, 4);
        assert_eq!(serial, parallel);
        // And the sum is the exact in-order weighted fold.
        let costs = evaluate_set(&ev, &w, &set, &indices, 1);
        let manual = costs
            .iter()
            .zip(&indices)
            .fold(LexCost::ZERO, |a, (c, &i)| {
                let p = set.weight(i);
                a.add(&LexCost::new(c.lambda * p, c.phi * p))
            });
        assert_eq!(manual, serial);
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let (net, tm) = setup(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let wide = failure_costs(&ev, &w, &scenarios, 64);
        let narrow = failure_costs(&ev, &w, &scenarios, 1);
        assert_eq!(wide, narrow);
    }
}
