//! Parallel failure-cost sums.
//!
//! Phase 2's objective `K̄fail = ⟨Σ_l Λfail,l, Σ_l Φfail,l⟩` (Eq. 7)
//! requires one full two-class evaluation per critical scenario. The
//! scenarios are independent, so they fan out over `std::thread::scope`
//! workers in contiguous chunks. Each worker runs the evaluator's
//! scenario-batched [`Evaluator::evaluate_all`] on its chunk, which
//! checks a private workspace out of the evaluator's pool: every thread
//! gets its own scratch buffers and no-failure baseline, and within a
//! chunk only the destinations each failure actually touches are
//! re-routed. Per-scenario costs land back in input order and are
//! reduced **in scenario order**, so the floating-point sum — and
//! therefore the whole optimization trajectory — is identical for every
//! thread count (and bit-for-bit identical to serial per-scenario
//! evaluation).

use dtr_cost::{Evaluator, LexCost};
use dtr_routing::{Scenario, WeightSetting};

/// Per-scenario costs of `w` under every scenario, in input order.
pub fn failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> Vec<LexCost> {
    assert!(threads >= 1);
    let workers = threads.min(scenarios.len());
    if workers <= 1 {
        return ev.evaluate_all(w, scenarios);
    }
    // Contiguous chunks, one per worker; results spliced back in order.
    let chunk = scenarios.len().div_ceil(workers);
    let mut out = Vec::with_capacity(scenarios.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = scenarios
            .chunks(chunk)
            .map(|part| s.spawn(move || ev.evaluate_all(w, part)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("failure-evaluation worker panicked"));
        }
    });
    out
}

/// Ordered sum of [`failure_costs`]: the compound `K̄fail`.
pub fn sum_failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> LexCost {
    failure_costs(ev, w, scenarios, threads)
        .iter()
        .fold(LexCost::ZERO, |acc, c| acc.add(c))
}

/// Ordered weighted sum: `⟨Σ p_i·Λ_i, Σ p_i·Φ_i⟩` over the scenario batch.
/// This is the probabilistic-ensemble compound cost; `weights` must match
/// `scenarios` in length.
pub fn weighted_sum_failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    weights: &[f64],
    threads: usize,
) -> LexCost {
    assert_eq!(weights.len(), scenarios.len(), "one weight per scenario");
    failure_costs(ev, w, scenarios, threads)
        .iter()
        .zip(weights)
        .fold(LexCost::ZERO, |acc, (c, &p)| {
            acc.add(&LexCost::new(c.lambda * p, c.phi * p))
        })
}

/// Per-scenario costs of `w` over a [`crate::scenario::ScenarioSet`]'s
/// selected indices, in index order.
pub fn set_failure_costs<S: crate::scenario::ScenarioSet + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> Vec<LexCost> {
    let scenarios = set.scenarios_for(indices);
    failure_costs(ev, w, &scenarios, threads)
}

/// Compound (weight-aware) cost of `w` over a scenario set's indices:
/// the plain ordered sum for uniform sets, the probability-weighted sum
/// for weighted ones.
pub fn sum_set_costs<S: crate::scenario::ScenarioSet + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> LexCost {
    let scenarios = set.scenarios_for(indices);
    if set.weighted() {
        let weights = set.weights_for(indices);
        weighted_sum_failure_costs(ev, w, &scenarios, &weights, threads)
    } else {
        sum_failure_costs(ev, w, &scenarios, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::ClassMatrices;

    fn ring(n: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(Point::ORIGIN)).collect();
        for i in 0..n {
            b.add_duplex_link(ids[i], ids[(i + 1) % n], 100.0, 1e-3)
                .unwrap();
        }
        b.build().unwrap()
    }

    fn setup(n: usize) -> (Network, ClassMatrices) {
        let net = ring(n);
        let mut tm = ClassMatrices::zeros(n);
        for s in 0..n {
            tm.delay.set(s, (s + 1) % n, 5.0);
            tm.throughput.set(s, (s + 2) % n, 10.0);
        }
        (net, tm)
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        assert_eq!(scenarios.len(), 6);
        let serial = failure_costs(&ev, &w, &scenarios, 1);
        let parallel = failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(serial, parallel);
        let s1 = sum_failure_costs(&ev, &w, &scenarios, 1);
        let s4 = sum_failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn sum_matches_manual_accumulation() {
        let (net, tm) = setup(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let costs = failure_costs(&ev, &w, &scenarios, 1);
        let manual = costs.iter().fold(LexCost::ZERO, |a, c| a.add(c));
        assert_eq!(manual, sum_failure_costs(&ev, &w, &scenarios, 1));
    }

    #[test]
    fn empty_scenarios_sum_to_zero() {
        let (net, tm) = setup(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        assert_eq!(sum_failure_costs(&ev, &w, &[], 4), LexCost::ZERO);
    }

    #[test]
    fn weighted_sum_scales_each_scenario() {
        let (net, tm) = setup(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let weights = vec![0.5; scenarios.len()];
        let weighted = weighted_sum_failure_costs(&ev, &w, &scenarios, &weights, 2);
        let plain = sum_failure_costs(&ev, &w, &scenarios, 1);
        assert!((weighted.lambda - 0.5 * plain.lambda).abs() < 1e-9);
        assert!((weighted.phi - 0.5 * plain.phi).abs() < 1e-9);
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let (net, tm) = setup(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let wide = failure_costs(&ev, &w, &scenarios, 64);
        let narrow = failure_costs(&ev, &w, &scenarios, 1);
        assert_eq!(wide, narrow);
    }
}
