//! Parallel failure-cost sums.
//!
//! Phase 2's objective `K̄fail = ⟨Σ_l Λfail,l, Σ_l Φfail,l⟩` (Eq. 7)
//! requires one full two-class evaluation per critical scenario. The
//! scenarios are independent, so they fan out over `std::thread::scope`
//! workers in contiguous chunks. Each worker runs the evaluator's
//! scenario-batched [`Evaluator::evaluate_all`] on its chunk, which
//! checks a private workspace out of the evaluator's pool: every thread
//! gets its own scratch buffers and no-failure baseline, and within a
//! chunk only the destinations each failure actually touches are
//! re-routed. Per-scenario costs land back in input order and are
//! reduced **in scenario order**, so the floating-point sum — and
//! therefore the whole optimization trajectory — is identical for every
//! thread count (and bit-for-bit identical to serial per-scenario
//! evaluation).
//!
//! [`evaluate_set`] is the [`crate::scenario::ScenarioSet`]-native form:
//! the same sharding over stable scenario *indices*, materializing each
//! `Copy` scenario inside the worker instead of allocating a scenario
//! vector per sweep. Since the engine handles every scenario kind
//! incrementally, one sharded sweep serves the single-link universe and
//! the node / SRLG / double-link / probabilistic ensembles alike.

use dtr_cost::{Evaluator, LexCost, ScenarioCache, ScenarioFloor};
use dtr_routing::{Scenario, WeightSetting};

/// Map `f` over `items` on up to `threads` scoped workers (contiguous
/// chunks, results spliced back in input order — so the output is
/// identical to a serial map for every thread count). The shared
/// fan-out primitive of the speculative move batches and the
/// manufactured-sample kernels.
pub fn parallel_map<T, C, F>(items: &[T], threads: usize, f: F) -> Vec<C>
where
    T: Sync,
    C: Send,
    F: Fn(&T) -> C + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel-map worker panicked"));
        }
    });
    out
}

/// Fan the elements of `parts` out over scoped worker threads, one
/// worker per element, and join them all (in spawn order) before
/// returning. This is the only sanctioned thread fan-out primitive
/// outside this module and `dtr_mtr::parallel` — the static pass
/// (`dtr-analysis`, lint `policy-thread`) rejects direct
/// `thread::scope`/`thread::spawn` elsewhere, so sharded sweeps that
/// live near their data (e.g. the cache capture sweeps) route through
/// here instead of open-coding the scope.
pub fn scoped_fanout<T: Send>(parts: Vec<T>, f: impl Fn(T) + Sync) {
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = parts.into_iter().map(|p| s.spawn(move || f(p))).collect();
        for h in handles {
            h.join().expect("scoped fan-out worker panicked");
        }
    });
}

/// Per-scenario costs of `w` under every scenario, in input order.
pub fn failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> Vec<LexCost> {
    assert!(threads >= 1);
    let workers = threads.min(scenarios.len());
    if workers <= 1 {
        return ev.evaluate_all(w, scenarios);
    }
    // Contiguous chunks, one per worker; results spliced back in order.
    let chunk = scenarios.len().div_ceil(workers);
    let mut out = Vec::with_capacity(scenarios.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = scenarios
            .chunks(chunk)
            .enumerate()
            .map(|(k, part)| s.spawn(move || (k * chunk, ev.evaluate_all(w, part))))
            .collect();
        for h in handles {
            let (start, costs) = h.join().expect("failure-evaluation worker panicked");
            // Order stamp: the splice must land in scenario-index order,
            // or the scenario-order reduction (parallel == serial to the
            // bit) silently breaks. Static counterpart: dtr-analysis
            // determinism lints.
            debug_assert_eq!(
                out.len(),
                start,
                "failure_costs splice out of scenario order"
            );
            out.extend(costs);
        }
    });
    out
}

/// Ordered sum of [`failure_costs`]: the compound `K̄fail`.
pub fn sum_failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> LexCost {
    failure_costs(ev, w, scenarios, threads)
        .iter()
        .fold(LexCost::ZERO, |acc, c| acc.add(c))
}

/// Ordered weighted sum: `⟨Σ p_i·Λ_i, Σ p_i·Φ_i⟩` over the scenario batch.
/// This is the probabilistic-ensemble compound cost; `weights` must match
/// `scenarios` in length.
pub fn weighted_sum_failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    weights: &[f64],
    threads: usize,
) -> LexCost {
    assert_eq!(weights.len(), scenarios.len(), "one weight per scenario");
    failure_costs(ev, w, scenarios, threads)
        .iter()
        .zip(weights)
        .fold(LexCost::ZERO, |acc, (c, &p)| {
            acc.add(&LexCost::new(c.lambda * p, c.phi * p))
        })
}

/// Sharded evaluation of a [`crate::scenario::ScenarioSet`]: the costs of
/// `w` under the scenarios at `indices`, in index order, **without
/// materializing** a scenario vector. Indices are partitioned into
/// contiguous chunks, one per worker; each worker checks one workspace
/// out of the evaluator's pool (its own scratch buffers and cached
/// no-failure baseline) and materializes each `Copy` scenario on the fly
/// with [`crate::scenario::ScenarioSet::scenario`]. Results are spliced
/// back in index order, so parallel equals serial to the bit — for every
/// scenario kind the set can hold (link, node, SRLG, double-link, and
/// their probabilistically weighted ensembles).
pub fn evaluate_set<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> Vec<LexCost> {
    assert!(threads >= 1);
    let mut out = vec![LexCost::ZERO; indices.len()];
    let workers = threads.min(indices.len());
    if workers <= 1 {
        sweep_chunk(ev, w, set, indices, &mut out);
        return out;
    }
    let chunk = indices.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = indices
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .enumerate()
            .map(|(k, (part, dst))| {
                s.spawn(move || {
                    sweep_chunk(ev, w, set, part, dst);
                    k * chunk
                })
            })
            .collect();
        let mut expect = 0usize;
        for h in handles {
            let start = h.join().expect("scenario-evaluation worker panicked");
            // Order stamp: workers write disjoint pre-chunked slices, so
            // joining them in spawn order must walk the output in index
            // order — the runtime mirror of the dtr-analysis determinism
            // contract (parallel == serial to the bit).
            debug_assert_eq!(expect, start, "evaluate_set chunk out of index order");
            expect = start + chunk;
        }
    });
    out
}

/// Worker kernel of [`evaluate_set`]: evaluate the scenarios at `part`
/// into `dst` in place, one pooled workspace for the whole chunk. The
/// kernel is allocation-free in steady state (registered in
/// `crates/analysis/hot_paths.toml`; `tests/alloc_free.rs` proves the
/// sweep around it) — callers own the output buffer.
fn sweep_chunk<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    part: &[usize],
    dst: &mut [LexCost],
) {
    debug_assert_eq!(part.len(), dst.len());
    let mut ws = ev.acquire_workspace();
    for (d, &i) in dst.iter_mut().zip(part) {
        *d = ev.cost_with(&mut ws, w, set.scenario(i));
    }
    ev.release_workspace(ws);
}

/// Per-scenario costs of `w` over a [`crate::scenario::ScenarioSet`]'s
/// selected indices, in index order (alias of [`evaluate_set`], kept for
/// the original slice-era name).
pub fn set_failure_costs<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> Vec<LexCost> {
    evaluate_set(ev, w, set, indices, threads)
}

/// Reusable buffers of the incumbent-bounded sweep
/// ([`sum_set_costs_bounded`]); one per search run, warmed after the
/// first sweep (no steady-state allocation).
#[derive(Clone, Debug, Default)]
pub struct SweepScratch {
    /// Per-*position* raw scenario costs (aligned with the `indices`
    /// slice of the sweep); fully populated on [`SetSweep::Complete`].
    pub costs: Vec<LexCost>,
    done: Vec<bool>,
}

impl SweepScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of an incumbent-bounded set sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SetSweep {
    /// All scenarios evaluated; the compound cost is bit-for-bit the
    /// [`sum_set_costs`] index-order weighted fold.
    Complete(LexCost),
    /// The partial fold proved the candidate cannot beat the incumbent;
    /// `evaluated` scenarios were evaluated before the sweep was
    /// abandoned (the rest are the caller's `scenario_evals_skipped`).
    Cut {
        /// Scenarios evaluated before the proof fired.
        evaluated: usize,
        /// `true` when the floors were *necessary* for this cut: the
        /// same partial fold without floor stand-ins would still have
        /// beaten the incumbent, so the skip is attributable to the
        /// floors (`SearchStats::skipped_floor`) rather than to the
        /// plain cutoff.
        floor_cut: bool,
    },
}

/// Index-order weighted fold over a sweep's evaluated subset, with each
/// not-yet-evaluated position standing in at its [`ScenarioFloor`]
/// (zero when no floors are supplied). Every stand-in bounds its
/// scenario's contribution from below **componentwise** and IEEE
/// addition is monotone in each addend, so the fold bounds the completed
/// compound cost from below in both components — and equals it exactly,
/// bit-for-bit, once every position is done (floors are then never
/// read). The componentwise bound carries through the lexicographic
/// `better_than` (see the antitone lemma on [`LexCost::better_than`]).
fn fold_bound<S: crate::scenario::ScenarioSet + ?Sized>(
    set: &S,
    indices: &[usize],
    scratch: &SweepScratch,
    floors: Option<&[ScenarioFloor]>,
) -> LexCost {
    let weighted = set.weighted();
    let mut acc = LexCost::ZERO;
    for (pos, &i) in indices.iter().enumerate() {
        if scratch.done[pos] {
            let c = &scratch.costs[pos];
            acc = if weighted {
                let p = set.weight(i);
                acc.add(&LexCost::new(c.lambda * p, c.phi * p))
            } else {
                acc.add(c)
            };
        } else if let Some(f) = floors {
            let fl = f[pos];
            if fl.lambda > 0.0 || fl.phi > 0.0 {
                acc = if weighted {
                    let p = set.weight(i);
                    acc.add(&LexCost::new(fl.lambda * p, fl.phi * p))
                } else {
                    acc.add(&LexCost::new(fl.lambda, fl.phi))
                };
            }
        }
    }
    acc
}

/// Incumbent-bounded compound sweep: evaluates the scenarios at
/// `indices` in the caller-supplied `order` (a permutation of positions
/// `0..indices.len()`, typically costliest-under-the-incumbent first)
/// and abandons the sweep as soon as the index-order fold over the
/// evaluated subset — with every unevaluated scenario standing in at
/// its [`ScenarioFloor`] (`floors`, aligned with `indices`; see
/// `Evaluator::scenario_floor` for the Λ + load-aware Φ bound) — proves
/// the candidate cannot be lexicographically better than `incumbent`.
///
/// The proof is float-exact, not heuristic: per-scenario contributions
/// are non-negative, IEEE addition of non-negative terms is monotone,
/// and `better_than` is antitone in its left argument (see the lemma on
/// [`LexCost::better_than`]) — so `!partial.better_than(incumbent)`
/// implies the full sweep's total cannot beat the incumbent either.
/// Consequently:
///
/// * a [`SetSweep::Complete`] result is **bit-for-bit** the
///   [`sum_set_costs`] value (the final fold runs over all positions in
///   index order, regardless of the evaluation order), and
/// * a [`SetSweep::Cut`] result only ever replaces a sweep whose
///   candidate the full fold would have rejected anyway,
///
/// which is why a hill climber that accepts only strictly-better
/// compound costs keeps its trajectory unchanged to the bit.
///
/// With `threads > 1` the evaluation order is processed in fixed rounds
/// of `threads · 4` scenarios (contiguous chunks, per-thread pooled
/// workspaces, cutoff check between rounds), so the cut decision — and
/// the accepted-move costs — stay deterministic for a given thread
/// count; only the amount of post-cutoff wasted work varies with it.
///
/// `seeds` carries pre-computed `(position, cost)` pairs for **this
/// candidate `w`** — the eager failure-sweep prefix the speculative
/// batch fanned out alongside the normal-conditions cost (see the
/// parallel-search contract in `DETERMINISM.md`). A seeded position
/// substitutes its seeded cost when the walk reaches it instead of
/// re-evaluating; it is *not* pre-marked done, so the walk order, the
/// cut decisions, `evaluated` counts and every fold are exactly those
/// of the unseeded sweep. Because each seed was computed by the same
/// bit-exact per-scenario evaluation the walk would have performed
/// (`cost_with` ≡ `cost_cached`, the pinned cache invariant), ANY seed
/// set — including an empty or partially wasted one — yields the
/// identical result; seeds only move work onto the speculative fan-out.
#[allow(clippy::too_many_arguments)]
pub fn sum_set_costs_bounded<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
    incumbent: &LexCost,
    order: &[u32],
    seeds: &[(u32, LexCost)],
    floors: Option<&[ScenarioFloor]>,
    cache: Option<&ScenarioCache>,
    scratch: &mut SweepScratch,
) -> SetSweep {
    assert!(threads >= 1);
    let n = indices.len();
    assert_eq!(order.len(), n, "order must be a permutation of positions");
    if let Some(f) = floors {
        assert_eq!(f.len(), n, "one floor per scenario position");
    }
    scratch.costs.clear();
    scratch.costs.resize(n, LexCost::ZERO);
    scratch.done.clear();
    scratch.done.resize(n, false);

    let workers = threads.min(n);
    if workers <= 1 {
        // Serial: evaluate in priority order, prove-or-continue after
        // every scenario (re-folding the evaluated subset costs O(n) LexCost
        // adds — noise next to one scenario evaluation).
        let check_every = (n / 128).max(1);
        let mut ws = ev.acquire_workspace();
        for (e, &pos) in order.iter().enumerate() {
            let pos = pos as usize;
            // Non-resident positions of a budget-bounded cache take the
            // plain repair-seeded path — the same bits, just uncached;
            // seeded positions reuse the speculative fan-out's bits.
            scratch.costs[pos] = match seeds.iter().find(|s| s.0 as usize == pos) {
                Some(&(_, c)) => c,
                None => {
                    let sc = set.scenario(indices[pos]);
                    match cache {
                        Some(c) if c.is_resident(pos) => ev.cost_cached(&mut ws, w, sc, c, pos),
                        _ => ev.cost_with(&mut ws, w, sc),
                    }
                }
            };
            scratch.done[pos] = true;
            let evaluated = e + 1;
            if evaluated < n
                && evaluated % check_every == 0
                && !fold_bound(set, indices, scratch, floors).better_than(incumbent)
            {
                ev.release_workspace(ws);
                // The cut is floor-attributed iff the evaluated subset
                // alone (floor-less fold) would *not* have proven it.
                let floor_cut = floors.is_some()
                    && fold_bound(set, indices, scratch, None).better_than(incumbent);
                return SetSweep::Cut {
                    evaluated,
                    floor_cut,
                };
            }
        }
        ev.release_workspace(ws);
        return SetSweep::Complete(fold_bound(set, indices, scratch, floors));
    }

    // Parallel: fixed rounds over the priority order; sharded evaluation
    // inside a round, cutoff check between rounds.
    let round = workers * 4;
    let mut evaluated = 0usize;
    while evaluated < n {
        let batch = &order[evaluated..(evaluated + round).min(n)];
        let chunk = batch.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut ws = ev.acquire_workspace();
                        let costs: Vec<(u32, LexCost)> = part
                            .iter()
                            .map(|&pos| {
                                if let Some(s) = seeds.iter().find(|s| s.0 == pos) {
                                    return (pos, s.1);
                                }
                                let sc = set.scenario(indices[pos as usize]);
                                let c = match cache {
                                    Some(c) if c.is_resident(pos as usize) => {
                                        ev.cost_cached(&mut ws, w, sc, c, pos as usize)
                                    }
                                    _ => ev.cost_with(&mut ws, w, sc),
                                };
                                (pos, c)
                            })
                            .collect();
                        ev.release_workspace(ws);
                        costs
                    })
                })
                .collect();
            for h in handles {
                for (pos, c) in h.join().expect("bounded-sweep worker panicked") {
                    scratch.costs[pos as usize] = c;
                    scratch.done[pos as usize] = true;
                }
            }
        });
        evaluated += batch.len();
        if evaluated < n && !fold_bound(set, indices, scratch, floors).better_than(incumbent) {
            let floor_cut =
                floors.is_some() && fold_bound(set, indices, scratch, None).better_than(incumbent);
            return SetSweep::Cut {
                evaluated,
                floor_cut,
            };
        }
    }
    SetSweep::Complete(fold_bound(set, indices, scratch, floors))
}

/// Compound (weight-aware) cost of `w` over a scenario set's indices:
/// the plain ordered sum for uniform sets, the probability-weighted sum
/// for weighted ones. Both reductions run in index order — the exact
/// float-add sequence of the seed's per-scenario accumulation.
pub fn sum_set_costs<S: crate::scenario::ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    set: &S,
    indices: &[usize],
    threads: usize,
) -> LexCost {
    let costs = evaluate_set(ev, w, set, indices, threads);
    if set.weighted() {
        costs
            .iter()
            .zip(indices)
            .fold(LexCost::ZERO, |acc, (c, &i)| {
                let p = set.weight(i);
                acc.add(&LexCost::new(c.lambda * p, c.phi * p))
            })
    } else {
        costs.iter().fold(LexCost::ZERO, |acc, c| acc.add(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::ClassMatrices;

    fn ring(n: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(Point::ORIGIN)).collect();
        for i in 0..n {
            b.add_duplex_link(ids[i], ids[(i + 1) % n], 100.0, 1e-3)
                .unwrap();
        }
        b.build().unwrap()
    }

    fn setup(n: usize) -> (Network, ClassMatrices) {
        let net = ring(n);
        let mut tm = ClassMatrices::zeros(n);
        for s in 0..n {
            tm.delay.set(s, (s + 1) % n, 5.0);
            tm.throughput.set(s, (s + 2) % n, 10.0);
        }
        (net, tm)
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        assert_eq!(scenarios.len(), 6);
        let serial = failure_costs(&ev, &w, &scenarios, 1);
        let parallel = failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(serial, parallel);
        let s1 = sum_failure_costs(&ev, &w, &scenarios, 1);
        let s4 = sum_failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn sum_matches_manual_accumulation() {
        let (net, tm) = setup(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let costs = failure_costs(&ev, &w, &scenarios, 1);
        let manual = costs.iter().fold(LexCost::ZERO, |a, c| a.add(c));
        assert_eq!(manual, sum_failure_costs(&ev, &w, &scenarios, 1));
    }

    #[test]
    fn empty_scenarios_sum_to_zero() {
        let (net, tm) = setup(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        assert_eq!(sum_failure_costs(&ev, &w, &[], 4), LexCost::ZERO);
    }

    #[test]
    fn weighted_sum_scales_each_scenario() {
        let (net, tm) = setup(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let weights = vec![0.5; scenarios.len()];
        let weighted = weighted_sum_failure_costs(&ev, &w, &scenarios, &weights, 2);
        let plain = sum_failure_costs(&ev, &w, &scenarios, 1);
        assert!((weighted.lambda - 0.5 * plain.lambda).abs() < 1e-9);
        assert!((weighted.phi - 0.5 * plain.phi).abs() < 1e-9);
    }

    #[test]
    fn evaluate_set_matches_slice_path_and_is_thread_invariant() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let set = crate::universe::FailureUniverse::of(&net);
        let indices: Vec<usize> = crate::scenario::ScenarioSet::all_indices(&set);
        let via_set_serial = evaluate_set(&ev, &w, &set, &indices, 1);
        let via_set_parallel = evaluate_set(&ev, &w, &set, &indices, 4);
        let via_slice = failure_costs(&ev, &w, &crate::scenario::ScenarioSet::scenarios(&set), 1);
        assert_eq!(via_set_serial, via_set_parallel);
        assert_eq!(via_set_serial, via_slice);
    }

    #[test]
    fn weighted_set_sum_reduces_in_index_order() {
        use crate::ext::probabilistic::FailureModel;
        use crate::scenario::{Probabilistic, ScenarioSet};
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let universe = crate::universe::FailureUniverse::of(&net);
        let model = FailureModel::length_proportional(&net, &universe);
        let set = Probabilistic::with_model(&net, model);
        let indices = set.all_indices();
        let serial = sum_set_costs(&ev, &w, &set, &indices, 1);
        let parallel = sum_set_costs(&ev, &w, &set, &indices, 4);
        assert_eq!(serial, parallel);
        // And the sum is the exact in-order weighted fold.
        let costs = evaluate_set(&ev, &w, &set, &indices, 1);
        let manual = costs
            .iter()
            .zip(&indices)
            .fold(LexCost::ZERO, |a, (c, &i)| {
                let p = set.weight(i);
                a.add(&LexCost::new(c.lambda * p, c.phi * p))
            });
        assert_eq!(manual, serial);
    }

    #[test]
    fn bounded_sweep_completes_bit_for_bit_under_unbeatable_incumbent() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let set = crate::universe::FailureUniverse::of(&net);
        let indices: Vec<usize> = crate::scenario::ScenarioSet::all_indices(&set);
        let never = LexCost::new(f64::INFINITY, f64::INFINITY);
        let order: Vec<u32> = (0..indices.len() as u32).rev().collect(); // any permutation
        let mut scratch = SweepScratch::new();
        for threads in [1, 4] {
            let got = sum_set_costs_bounded(
                &ev,
                &w,
                &set,
                &indices,
                threads,
                &never,
                &order,
                &[],
                None,
                None,
                &mut scratch,
            );
            let want = sum_set_costs(&ev, &w, &set, &indices, 1);
            assert_eq!(got, SetSweep::Complete(want), "threads={threads}");
            // Per-position costs match the plain sweep.
            let costs = evaluate_set(&ev, &w, &set, &indices, 1);
            assert_eq!(scratch.costs, costs);
        }
    }

    #[test]
    fn bounded_sweep_cuts_against_a_zero_incumbent() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let set = crate::universe::FailureUniverse::of(&net);
        let indices: Vec<usize> = crate::scenario::ScenarioSet::all_indices(&set);
        let order: Vec<u32> = (0..indices.len() as u32).collect();
        let mut scratch = SweepScratch::new();
        // Nothing is strictly better than zero cost, so the serial sweep
        // must cut after the very first evaluation.
        let got = sum_set_costs_bounded(
            &ev,
            &w,
            &set,
            &indices,
            1,
            &LexCost::ZERO,
            &order,
            &[],
            None,
            None,
            &mut scratch,
        );
        assert_eq!(
            got,
            SetSweep::Cut {
                evaluated: 1,
                floor_cut: false
            }
        );
    }

    #[test]
    fn floors_hasten_cuts_without_changing_completions() {
        let (net, tm) = setup(7);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let set = crate::universe::FailureUniverse::of(&net);
        let indices: Vec<usize> = crate::scenario::ScenarioSet::all_indices(&set);
        let mut ws = ev.acquire_workspace();
        let floors: Vec<ScenarioFloor> = indices
            .iter()
            .map(|&i| ev.scenario_floor(&mut ws, crate::scenario::ScenarioSet::scenario(&set, i)))
            .collect();
        ev.release_workspace(ws);
        let total = sum_set_costs(&ev, &w, &set, &indices, 1);
        let order: Vec<u32> = (0..indices.len() as u32).collect();
        let mut scratch = SweepScratch::new();
        for threads in [1, 3] {
            // Beatable incumbent: the floored sweep must still complete
            // with the exact bit-for-bit total.
            let above = LexCost::new(total.lambda + 1.0, total.phi);
            let got = sum_set_costs_bounded(
                &ev,
                &w,
                &set,
                &indices,
                threads,
                &above,
                &order,
                &[],
                Some(&floors),
                None,
                &mut scratch,
            );
            assert_eq!(got, SetSweep::Complete(total), "threads={threads}");
            // An incumbent below the summed floors is unbeatable from
            // position zero: the floored sweep cuts at its first check,
            // and the cut is attributed to the floors whenever the
            // evaluated subset alone would not have proven it.
            let floor_sum: f64 = floors.iter().map(|f| f.phi).sum();
            assert!(floor_sum > 0.0, "testbed floors are degenerate");
            let below_floors = LexCost::new(0.0, floor_sum * 0.5);
            match sum_set_costs_bounded(
                &ev,
                &w,
                &set,
                &indices,
                threads,
                &below_floors,
                &order,
                &[],
                Some(&floors),
                None,
                &mut scratch,
            ) {
                SetSweep::Cut { evaluated, .. } => {
                    assert!(evaluated < indices.len(), "threads={threads}")
                }
                SetSweep::Complete(c) => assert!(!c.better_than(&below_floors)),
            }
        }
    }

    #[test]
    fn bounded_sweep_cut_is_sound_for_every_incumbent_prefix() {
        // For incumbents slightly below the true total, the sweep must
        // cut; for incumbents above it, it must complete with the exact
        // sum — under any evaluation order and thread count.
        let (net, tm) = setup(7);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let set = crate::universe::FailureUniverse::of(&net);
        let indices: Vec<usize> = crate::scenario::ScenarioSet::all_indices(&set);
        let total = sum_set_costs(&ev, &w, &set, &indices, 1);
        let mut order: Vec<u32> = (0..indices.len() as u32).collect();
        order.reverse();
        let mut scratch = SweepScratch::new();
        for threads in [1, 3] {
            let below = LexCost::new(total.lambda, total.phi * 0.5);
            match sum_set_costs_bounded(
                &ev,
                &w,
                &set,
                &indices,
                threads,
                &below,
                &order,
                &[],
                None,
                None,
                &mut scratch,
            ) {
                SetSweep::Cut { evaluated, .. } => assert!(evaluated <= indices.len()),
                SetSweep::Complete(c) => {
                    // Completing is allowed (the cut is opportunistic),
                    // but the sum must be exact and not better.
                    assert_eq!(c, total);
                    assert!(!c.better_than(&below));
                }
            }
            let above = LexCost::new(total.lambda + 1.0, total.phi);
            let got = sum_set_costs_bounded(
                &ev,
                &w,
                &set,
                &indices,
                threads,
                &above,
                &order,
                &[],
                None,
                None,
                &mut scratch,
            );
            assert_eq!(got, SetSweep::Complete(total), "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let (net, tm) = setup(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let wide = failure_costs(&ev, &w, &scenarios, 64);
        let narrow = failure_costs(&ev, &w, &scenarios, 1);
        assert_eq!(wide, narrow);
    }
}
