//! Parallel failure-cost sums.
//!
//! Phase 2's objective `K̄fail = ⟨Σ_l Λfail,l, Σ_l Φfail,l⟩` (Eq. 7)
//! requires one full two-class evaluation per critical link. The scenarios
//! are independent, so they fan out over scoped threads. Per-scenario
//! costs land in a pre-indexed buffer and are reduced **in scenario
//! order**, so the floating-point sum — and therefore the whole
//! optimization trajectory — is identical for every thread count.

use dtr_cost::{Evaluator, LexCost};
use dtr_routing::{Scenario, WeightSetting};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-scenario costs of `w` under every scenario, in input order.
pub fn failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> Vec<LexCost> {
    assert!(threads >= 1);
    let mut out = vec![LexCost::ZERO; scenarios.len()];
    if threads == 1 || scenarios.len() <= 1 {
        for (slot, &sc) in out.iter_mut().zip(scenarios) {
            *slot = ev.cost(w, sc);
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<LexCost>> =
        out.iter().map(|&c| parking_lot::Mutex::new(c)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(scenarios.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let cost = ev.cost(w, scenarios[i]);
                *slots[i].lock() = cost;
            });
        }
    })
    .expect("failure-evaluation worker panicked");
    for (slot, m) in out.iter_mut().zip(&slots) {
        *slot = *m.lock();
    }
    out
}

/// Ordered sum of [`failure_costs`]: the compound `K̄fail`.
pub fn sum_failure_costs(
    ev: &Evaluator<'_>,
    w: &WeightSetting,
    scenarios: &[Scenario],
    threads: usize,
) -> LexCost {
    failure_costs(ev, w, scenarios, threads)
        .iter()
        .fold(LexCost::ZERO, |acc, c| acc.add(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::ClassMatrices;

    fn ring(n: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(Point::ORIGIN)).collect();
        for i in 0..n {
            b.add_duplex_link(ids[i], ids[(i + 1) % n], 100.0, 1e-3)
                .unwrap();
        }
        b.build().unwrap()
    }

    fn setup(n: usize) -> (Network, ClassMatrices) {
        let net = ring(n);
        let mut tm = ClassMatrices::zeros(n);
        for s in 0..n {
            tm.delay.set(s, (s + 1) % n, 5.0);
            tm.throughput.set(s, (s + 2) % n, 10.0);
        }
        (net, tm)
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let (net, tm) = setup(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        assert_eq!(scenarios.len(), 6);
        let serial = failure_costs(&ev, &w, &scenarios, 1);
        let parallel = failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(serial, parallel);
        let s1 = sum_failure_costs(&ev, &w, &scenarios, 1);
        let s4 = sum_failure_costs(&ev, &w, &scenarios, 4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn sum_matches_manual_accumulation() {
        let (net, tm) = setup(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios = Scenario::all_link_failures(&net);
        let costs = failure_costs(&ev, &w, &scenarios, 1);
        let manual = costs.iter().fold(LexCost::ZERO, |a, c| a.add(c));
        assert_eq!(manual, sum_failure_costs(&ev, &w, &scenarios, 1));
    }

    #[test]
    fn empty_scenarios_sum_to_zero() {
        let (net, tm) = setup(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        assert_eq!(sum_failure_costs(&ev, &w, &[], 4), LexCost::ZERO);
    }
}
