//! The complete robust-optimization pipeline (Fig. 1 of the paper),
//! generalized over [`ScenarioSet`].
//!
//! One optimizer serves every failure model: the builder picks the
//! ensemble, the phases stay the paper's. Every evaluation inside the
//! phases flows through the pooled incremental engine of
//! `dtr_cost::engine` (per-thread workspaces, replayed no-failure
//! baselines, per-destination incremental SPF), so pipeline results are
//! bit-for-bit those of the naive per-scenario evaluator at a fraction
//! of the cost.
//!
//! ```ignore
//! // The paper's single-link pipeline:
//! let report = RobustOptimizer::builder(&ev).params(params).build().optimize();
//!
//! // Any other failure model, same machinery:
//! let report = RobustOptimizer::builder(&ev)
//!     .scenarios(Srlg::geographic(&net, 0.08))   // or Probabilistic::length_proportional(&net),
//!     .params(params)                            //    DoubleLink::all(&net), a custom impl, ...
//!     .build()
//!     .optimize();
//! ```

use std::time::{Duration, Instant};

use dtr_cost::{Evaluator, LexCost};
use dtr_net::LinkId;
use dtr_routing::{Scenario, WeightSetting};

use crate::baselines::Selector;
use crate::params::Params;
use crate::phase1::{self, Phase1Output};
use crate::phase1b::{self, Phase1bStats};
use crate::phase2::{self, Phase2Output};
use crate::scenario::ScenarioSet;
use crate::search::SearchStats;
use crate::selection;
use crate::universe::FailureUniverse;

/// Timing and effort accounting of one pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub phase1: SearchStats,
    pub phase1b: Phase1bStats,
    pub phase2: SearchStats,
    pub phase1_time: Duration,
    pub phase2_time: Duration,
}

/// The pipeline's full product.
#[derive(Clone, Debug)]
pub struct RobustReport {
    /// Phase-1 best: the "regular optimization" / "No Robust" solution.
    pub regular: WeightSetting,
    /// Its normal-conditions cost `⟨Λ*, Φ*⟩`.
    pub regular_cost: LexCost,
    /// The robust solution of Phase 2.
    pub robust: WeightSetting,
    /// Normal-conditions cost of the robust solution (Eqs. 5–6 hold).
    pub robust_normal_cost: LexCost,
    /// Compound failure cost of the robust solution over the selected
    /// scenarios (probability-weighted for weighted sets).
    pub kfail: LexCost,
    /// Duplex representatives of the selected *single-link* scenarios
    /// (composite sets may select group/multi scenarios too — those have
    /// no single representative and appear only in `critical_indices`).
    pub critical_links: Vec<LinkId>,
    /// Selected scenario indices into the optimizer's [`ScenarioSet`].
    pub critical_indices: Vec<usize>,
    /// Failure-cost samples collected (total across links).
    pub samples: usize,
    /// Whether the criticality ranking converged (Phase 1a or 1b).
    pub converged: bool,
    pub stats: PipelineStats,
}

impl RobustReport {
    /// Realized normal-conditions degradation of the throughput class:
    /// `Φrobust/Φ* − 1` (the paper reports this as "cost degradation of
    /// throughput-sensitive traffic", Table II last row).
    pub fn phi_degradation(&self) -> f64 {
        if self.regular_cost.phi <= 0.0 {
            0.0
        } else {
            self.robust_normal_cost.phi / self.regular_cost.phi - 1.0
        }
    }
}

/// Builds a [`RobustOptimizer`]: pick the scenario ensemble with
/// [`scenarios`](RobustOptimizerBuilder::scenarios) (default: the
/// network's single-link [`FailureUniverse`]), set the heuristic
/// [`params`](RobustOptimizerBuilder::params) (required), optionally
/// override the critical-link [`selector`](RobustOptimizerBuilder::selector).
pub struct RobustOptimizerBuilder<'e, 'a, S: ScenarioSet = FailureUniverse> {
    ev: &'e Evaluator<'a>,
    set: S,
    params: Option<Params>,
    selector: Selector,
    warm_start: Option<Phase1Output>,
}

impl<'e, 'a, S: ScenarioSet> RobustOptimizerBuilder<'e, 'a, S> {
    /// Optimize against this scenario ensemble instead of the default
    /// single-link universe.
    pub fn scenarios<T: ScenarioSet>(self, set: T) -> RobustOptimizerBuilder<'e, 'a, T> {
        RobustOptimizerBuilder {
            ev: self.ev,
            set,
            params: self.params,
            selector: self.selector,
            warm_start: self.warm_start,
        }
    }

    /// Reuse an existing Phase-1 output instead of re-running Phases
    /// 1a/1b inside `optimize()` — for comparing several scenario
    /// ensembles against **identical** benchmarks without paying the
    /// sample harvest once per ensemble. Pass the output of
    /// [`phase1::run`] (after [`phase1b::run`] if rank convergence
    /// matters); it must come from the same evaluator, universe and
    /// params, which the caller is trusted to guarantee.
    pub fn warm_start(mut self, phase1: Phase1Output) -> Self {
        self.warm_start = Some(phase1);
        self
    }

    /// Heuristic parameters (required before [`build`](Self::build)).
    pub fn params(mut self, params: Params) -> Self {
        self.params = Some(params);
        self
    }

    /// Critical-link selection strategy (default: the paper's
    /// [`Selector::MeanLeftTail`]; the alternatives exist for the §IV-C
    /// ablation).
    pub fn selector(mut self, selector: Selector) -> Self {
        self.selector = selector;
        self
    }

    /// Finalize.
    ///
    /// # Panics
    /// Panics if [`params`](Self::params) was never set, or the params are
    /// invalid.
    pub fn build(self) -> RobustOptimizer<'e, 'a, S> {
        let params = self
            .params
            .expect("RobustOptimizer::builder requires .params(..) before .build()");
        params.validate();
        RobustOptimizer {
            ev: self.ev,
            set: self.set,
            params,
            selector: self.selector,
            warm_start: self.warm_start,
        }
    }
}

/// Orchestrates Phases 1a → 1b → 1c → 2 over any [`ScenarioSet`].
pub struct RobustOptimizer<'e, 'a, S: ScenarioSet = FailureUniverse> {
    ev: &'e Evaluator<'a>,
    set: S,
    params: Params,
    selector: Selector,
    warm_start: Option<Phase1Output>,
}

impl<'e, 'a> RobustOptimizer<'e, 'a> {
    /// Start building an optimizer. The default scenario set is the
    /// network's single-link [`FailureUniverse`] (analyzed here once).
    pub fn builder(ev: &'e Evaluator<'a>) -> RobustOptimizerBuilder<'e, 'a, FailureUniverse> {
        RobustOptimizerBuilder {
            ev,
            set: FailureUniverse::of(ev.net()),
            params: None,
            selector: Selector::MeanLeftTail,
            warm_start: None,
        }
    }

    /// Single-link optimizer with default selector — shorthand for
    /// `RobustOptimizer::builder(ev).params(params).build()`.
    pub fn new(ev: &'e Evaluator<'a>, params: Params) -> Self {
        RobustOptimizer::builder(ev).params(params).build()
    }
}

impl<'e, 'a, S: ScenarioSet + Sync> RobustOptimizer<'e, 'a, S> {
    /// The single-link failure universe backing Phase-1 sampling.
    pub fn universe(&self) -> &FailureUniverse {
        self.set.universe()
    }

    /// The scenario ensemble Phase 2 optimizes against.
    pub fn scenario_set(&self) -> &S {
        &self.set
    }

    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Phase 1 only — the "regular optimization" baseline the paper labels
    /// "No Robust" / "NR".
    pub fn regular_only(&self) -> Phase1Output {
        phase1::run(self.ev, self.set.universe(), &self.params)
    }

    /// Full pipeline with the configured selector.
    pub fn optimize(&self) -> RobustReport {
        self.optimize_with_selector(self.selector)
    }

    /// Full pipeline with an explicit critical-link selector (for the
    /// selector ablation).
    pub fn optimize_with_selector(&self, selector: Selector) -> RobustReport {
        let t0 = Instant::now();
        let (p1, p1b) = match &self.warm_start {
            Some(shared) => {
                // Warm start: the caller already ran (and paid for)
                // Phases 1a/1b on this evaluator.
                let p1 = shared.clone();
                let p1b = Phase1bStats {
                    converged: p1.converged,
                    ..Default::default()
                };
                (p1, p1b)
            }
            None => {
                let mut p1 = phase1::run(self.ev, self.set.universe(), &self.params);
                let p1b = phase1b::run(self.ev, self.set.universe(), &self.params, &mut p1);
                (p1, p1b)
            }
        };
        let phase1_time = t0.elapsed();

        let critical_indices =
            selection::select_for_set(&self.set, self.ev, &p1, &self.params, selector);

        let t1 = Instant::now();
        let p2 = phase2::run(self.ev, &self.set, &critical_indices, &self.params, &p1);
        let phase2_time = t1.elapsed();

        self.report(p1, p1b, p2, critical_indices, phase1_time, phase2_time)
    }

    /// Full-search variant: Phase 2 over the complete scenario set
    /// (`Ec = E`), the paper's accuracy yardstick.
    pub fn optimize_full(&self) -> RobustReport {
        let t0 = Instant::now();
        // Full search needs no criticality estimate, but running Phase 1b
        // anyway would waste evaluations: skip it (the paper's full search
        // has no Phase 1b/1c either).
        let mut p1 = match &self.warm_start {
            Some(shared) => shared.clone(),
            None => phase1::run(self.ev, self.set.universe(), &self.params),
        };
        let p1b = Phase1bStats {
            converged: p1.converged,
            ..Default::default()
        };
        let phase1_time = t0.elapsed();
        let critical_indices = self.set.all_indices();
        let t1 = Instant::now();
        let p2 = phase2::run(self.ev, &self.set, &critical_indices, &self.params, &p1);
        let phase2_time = t1.elapsed();
        // Phase 1b is skipped, so leave converged as Phase 1a reported it.
        p1.converged = p1b.converged;
        self.report(p1, p1b, p2, critical_indices, phase1_time, phase2_time)
    }

    fn report(
        &self,
        p1: Phase1Output,
        p1b: Phase1bStats,
        p2: Phase2Output,
        critical_indices: Vec<usize>,
        phase1_time: Duration,
        phase2_time: Duration,
    ) -> RobustReport {
        let critical_links = critical_indices
            .iter()
            .filter_map(|&i| match self.set.scenario(i) {
                Scenario::Link(l) => Some(l),
                _ => None,
            })
            .collect();
        RobustReport {
            regular: p1.best,
            regular_cost: p1.best_cost,
            robust: p2.best,
            robust_normal_cost: p2.best_normal,
            kfail: p2.best_kfail,
            critical_links,
            critical_indices,
            samples: p1.store.total(),
            converged: p1.converged,
            stats: PipelineStats {
                phase1: p1.stats,
                phase1b: p1b,
                phase2: p2.stats,
                phase1_time,
                phase2_time,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::{gravity, ClassMatrices};

    fn testbed(seed: u64) -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..7)
            .map(|i| b.add_node(Point::new((i % 3) as f64, (i / 3) as f64)))
            .collect();
        for i in 0..7 {
            b.add_duplex_link(n[i], n[(i + 1) % 7], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        b.add_duplex_link(n[2], n[5], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 3e6,
            ..gravity::GravityConfig::paper_default(7, seed)
        });
        (net, tm)
    }

    #[test]
    fn pipeline_produces_consistent_report() {
        let (net, tm) = testbed(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::builder(&ev)
            .params(Params::quick(1))
            .build();
        let r = opt.optimize();

        // Critical set has the configured target size.
        let expect = opt.universe().target_size(opt.params().critical_fraction);
        assert!(r.critical_indices.len() <= expect);
        assert!(!r.critical_indices.is_empty());
        assert_eq!(r.critical_links.len(), r.critical_indices.len());

        // Constraints hold (Eqs. 5-6).
        assert!(phase2::feasible(
            &r.robust_normal_cost,
            r.regular_cost.lambda,
            r.regular_cost.phi,
            opt.params().chi
        ));
        // Reported costs are truthful.
        assert_eq!(r.regular_cost, ev.cost(&r.regular, Scenario::Normal));
        assert_eq!(r.robust_normal_cost, ev.cost(&r.robust, Scenario::Normal));
        assert!(r.phi_degradation() <= opt.params().chi + 1e-9);
        assert!(r.samples > 0);
    }

    #[test]
    fn builder_and_new_agree() {
        let (net, tm) = testbed(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let a = RobustOptimizer::new(&ev, Params::quick(5)).optimize();
        let b = RobustOptimizer::builder(&ev)
            .params(Params::quick(5))
            .build()
            .optimize();
        assert_eq!(a.robust, b.robust);
        assert_eq!(a.kfail, b.kfail);
        assert_eq!(a.critical_indices, b.critical_indices);
    }

    #[test]
    fn robust_beats_or_matches_regular_on_kfail() {
        let (net, tm) = testbed(8);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::new(&ev, Params::quick(3));
        let r = opt.optimize();
        let scen = opt.universe().scenarios_for(&r.critical_indices);
        let k_regular = crate::parallel::sum_failure_costs(&ev, &r.regular, &scen, 1);
        assert!(
            !k_regular.better_than(&r.kfail),
            "regular {k_regular} beat robust {}",
            r.kfail
        );
    }

    #[test]
    fn full_search_is_at_least_as_good_on_its_objective() {
        let (net, tm) = testbed(2);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::new(&ev, Params::quick(9));
        let full = opt.optimize_full();
        assert_eq!(full.critical_indices.len(), opt.universe().len());
        // Full-universe Kfail of full search <= that of critical search.
        let crit = opt.optimize();
        let all = opt.universe().scenarios();
        let k_full = crate::parallel::sum_failure_costs(&ev, &full.robust, &all, 1);
        let k_crit = crate::parallel::sum_failure_costs(&ev, &crit.robust, &all, 1);
        // Not guaranteed in theory (heuristic), but with the same seeds
        // and tiny instance full search should not lose badly; allow ties
        // and small noise by only checking it is not catastrophically
        // worse (factor 2).
        assert!(
            k_full.lambda <= k_crit.lambda * 2.0 + 100.0,
            "full {k_full} vs critical {k_crit}"
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let (net, tm) = testbed(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let a = RobustOptimizer::new(&ev, Params::quick(12)).optimize();
        let b = RobustOptimizer::new(&ev, Params::quick(12)).optimize();
        assert_eq!(a.robust, b.robust);
        assert_eq!(a.kfail, b.kfail);
        assert_eq!(a.critical_indices, b.critical_indices);
    }

    #[test]
    fn selector_ablation_runs() {
        let (net, tm) = testbed(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::new(&ev, Params::quick(2));
        for sel in [Selector::Random, Selector::LoadBased, Selector::Fluctuation] {
            let r = opt.optimize_with_selector(sel);
            assert!(!r.critical_indices.is_empty(), "{sel}");
        }
        // And the builder's .selector() override reproduces the explicit
        // per-call variant.
        let via_builder = RobustOptimizer::builder(&ev)
            .params(Params::quick(2))
            .selector(Selector::Random)
            .build()
            .optimize();
        let via_call = opt.optimize_with_selector(Selector::Random);
        assert_eq!(via_builder.critical_indices, via_call.critical_indices);
        assert_eq!(via_builder.robust, via_call.robust);
    }

    #[test]
    #[should_panic(expected = "requires .params")]
    fn builder_without_params_panics() {
        let (net, tm) = testbed(3);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let _ = RobustOptimizer::builder(&ev).build();
    }
}
