//! The complete robust-optimization pipeline (Fig. 1 of the paper).

use std::time::{Duration, Instant};

use dtr_cost::{Evaluator, LexCost};
use dtr_net::LinkId;
use dtr_routing::WeightSetting;

use crate::baselines::{self, Selector};
use crate::params::Params;
use crate::phase1::{self, Phase1Output};
use crate::phase1b::{self, Phase1bStats};
use crate::phase2::{self, Phase2Output};
use crate::search::SearchStats;
use crate::universe::FailureUniverse;

/// Timing and effort accounting of one pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub phase1: SearchStats,
    pub phase1b: Phase1bStats,
    pub phase2: SearchStats,
    pub phase1_time: Duration,
    pub phase2_time: Duration,
}

/// The pipeline's full product.
#[derive(Clone, Debug)]
pub struct RobustReport {
    /// Phase-1 best: the "regular optimization" / "No Robust" solution.
    pub regular: WeightSetting,
    /// Its normal-conditions cost `⟨Λ*, Φ*⟩`.
    pub regular_cost: LexCost,
    /// The robust solution of Phase 2.
    pub robust: WeightSetting,
    /// Normal-conditions cost of the robust solution (Eqs. 5–6 hold).
    pub robust_normal_cost: LexCost,
    /// Compound failure cost of the robust solution over the critical set.
    pub kfail: LexCost,
    /// Selected critical links (duplex representatives).
    pub critical_links: Vec<LinkId>,
    /// Same, as failure indices into the universe.
    pub critical_indices: Vec<usize>,
    /// Failure-cost samples collected (total across links).
    pub samples: usize,
    /// Whether the criticality ranking converged (Phase 1a or 1b).
    pub converged: bool,
    pub stats: PipelineStats,
}

impl RobustReport {
    /// Realized normal-conditions degradation of the throughput class:
    /// `Φrobust/Φ* − 1` (the paper reports this as "cost degradation of
    /// throughput-sensitive traffic", Table II last row).
    pub fn phi_degradation(&self) -> f64 {
        if self.regular_cost.phi <= 0.0 {
            0.0
        } else {
            self.robust_normal_cost.phi / self.regular_cost.phi - 1.0
        }
    }
}

/// Orchestrates Phases 1a → 1b → 1c → 2.
pub struct RobustOptimizer<'e, 'a> {
    ev: &'e Evaluator<'a>,
    universe: FailureUniverse,
    params: Params,
}

impl<'e, 'a> RobustOptimizer<'e, 'a> {
    /// Build the optimizer (analyzes the failure universe once).
    pub fn new(ev: &'e Evaluator<'a>, params: Params) -> Self {
        params.validate();
        let universe = FailureUniverse::of(ev.net());
        RobustOptimizer {
            ev,
            universe,
            params,
        }
    }

    pub fn universe(&self) -> &FailureUniverse {
        &self.universe
    }

    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Phase 1 only — the "regular optimization" baseline the paper labels
    /// "No Robust" / "NR".
    pub fn regular_only(&self) -> Phase1Output {
        phase1::run(self.ev, &self.universe, &self.params)
    }

    /// Full pipeline with the paper's selector.
    pub fn optimize(&self) -> RobustReport {
        self.optimize_with_selector(Selector::MeanLeftTail)
    }

    /// Full pipeline with an explicit critical-link selector (for the
    /// selector ablation).
    pub fn optimize_with_selector(&self, selector: Selector) -> RobustReport {
        let t0 = Instant::now();
        let mut p1 = phase1::run(self.ev, &self.universe, &self.params);
        let p1b = phase1b::run(self.ev, &self.universe, &self.params, &mut p1);
        let phase1_time = t0.elapsed();

        let n = self.universe.target_size(self.params.critical_fraction);
        let critical_indices = baselines::select(
            selector,
            self.ev,
            &self.universe,
            &p1.store,
            &p1.best,
            self.params.left_tail_fraction,
            n,
            self.params.seed,
        );

        let t1 = Instant::now();
        let p2 = phase2::run(
            self.ev,
            &self.universe,
            &critical_indices,
            &self.params,
            &p1,
            None,
        );
        let phase2_time = t1.elapsed();

        self.report(p1, p1b, p2, critical_indices, phase1_time, phase2_time)
    }

    /// Full-search variant: Phase 2 over the complete failure universe
    /// (`Ec = E`), the paper's accuracy yardstick.
    pub fn optimize_full(&self) -> RobustReport {
        let t0 = Instant::now();
        let mut p1 = phase1::run(self.ev, &self.universe, &self.params);
        // Full search needs no criticality estimate, but running Phase 1b
        // anyway would waste evaluations: skip it (the paper's full search
        // has no Phase 1b/1c either).
        let p1b = Phase1bStats {
            converged: p1.converged,
            ..Default::default()
        };
        let phase1_time = t0.elapsed();
        let critical_indices: Vec<usize> = (0..self.universe.len()).collect();
        let t1 = Instant::now();
        let p2 = phase2::run(
            self.ev,
            &self.universe,
            &critical_indices,
            &self.params,
            &p1,
            None,
        );
        let phase2_time = t1.elapsed();
        // Phase 1b is skipped, so leave converged as Phase 1a reported it.
        p1.converged = p1b.converged;
        self.report(p1, p1b, p2, critical_indices, phase1_time, phase2_time)
    }

    fn report(
        &self,
        p1: Phase1Output,
        p1b: Phase1bStats,
        p2: Phase2Output,
        critical_indices: Vec<usize>,
        phase1_time: Duration,
        phase2_time: Duration,
    ) -> RobustReport {
        let critical_links = critical_indices
            .iter()
            .map(|&i| self.universe.failable[i])
            .collect();
        RobustReport {
            regular: p1.best,
            regular_cost: p1.best_cost,
            robust: p2.best,
            robust_normal_cost: p2.best_normal,
            kfail: p2.best_kfail,
            critical_links,
            critical_indices,
            samples: p1.store.total(),
            converged: p1.converged,
            stats: PipelineStats {
                phase1: p1.stats,
                phase1b: p1b,
                phase2: p2.stats,
                phase1_time,
                phase2_time,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_routing::Scenario;
    use dtr_traffic::{gravity, ClassMatrices};

    fn testbed(seed: u64) -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..7)
            .map(|i| b.add_node(Point::new((i % 3) as f64, (i / 3) as f64)))
            .collect();
        for i in 0..7 {
            b.add_duplex_link(n[i], n[(i + 1) % 7], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        b.add_duplex_link(n[2], n[5], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 3e6,
            ..gravity::GravityConfig::paper_default(7, seed)
        });
        (net, tm)
    }

    #[test]
    fn pipeline_produces_consistent_report() {
        let (net, tm) = testbed(4);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::new(&ev, Params::quick(1));
        let r = opt.optimize();

        // Critical set has the configured target size.
        let expect = opt.universe().target_size(opt.params().critical_fraction);
        assert!(r.critical_indices.len() <= expect);
        assert!(!r.critical_indices.is_empty());
        assert_eq!(r.critical_links.len(), r.critical_indices.len());

        // Constraints hold (Eqs. 5-6).
        assert!(phase2::feasible(
            &r.robust_normal_cost,
            r.regular_cost.lambda,
            r.regular_cost.phi,
            opt.params().chi
        ));
        // Reported costs are truthful.
        assert_eq!(r.regular_cost, ev.cost(&r.regular, Scenario::Normal));
        assert_eq!(r.robust_normal_cost, ev.cost(&r.robust, Scenario::Normal));
        assert!(r.phi_degradation() <= opt.params().chi + 1e-9);
        assert!(r.samples > 0);
    }

    #[test]
    fn robust_beats_or_matches_regular_on_kfail() {
        let (net, tm) = testbed(8);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::new(&ev, Params::quick(3));
        let r = opt.optimize();
        let scen = opt.universe().scenarios_for(&r.critical_indices);
        let k_regular = crate::parallel::sum_failure_costs(&ev, &r.regular, &scen, 1);
        assert!(
            !k_regular.better_than(&r.kfail),
            "regular {k_regular} beat robust {}",
            r.kfail
        );
    }

    #[test]
    fn full_search_is_at_least_as_good_on_its_objective() {
        let (net, tm) = testbed(2);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::new(&ev, Params::quick(9));
        let full = opt.optimize_full();
        assert_eq!(full.critical_indices.len(), opt.universe().len());
        // Full-universe Kfail of full search <= that of critical search.
        let crit = opt.optimize();
        let all = opt.universe().scenarios();
        let k_full = crate::parallel::sum_failure_costs(&ev, &full.robust, &all, 1);
        let k_crit = crate::parallel::sum_failure_costs(&ev, &crit.robust, &all, 1);
        // Not guaranteed in theory (heuristic), but with the same seeds
        // and tiny instance full search should not lose badly; allow ties
        // and small noise by only checking it is not catastrophically
        // worse (factor 2).
        assert!(
            k_full.lambda <= k_crit.lambda * 2.0 + 100.0,
            "full {k_full} vs critical {k_crit}"
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let (net, tm) = testbed(6);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let a = RobustOptimizer::new(&ev, Params::quick(12)).optimize();
        let b = RobustOptimizer::new(&ev, Params::quick(12)).optimize();
        assert_eq!(a.robust, b.robust);
        assert_eq!(a.kfail, b.kfail);
        assert_eq!(a.critical_indices, b.critical_indices);
    }

    #[test]
    fn selector_ablation_runs() {
        let (net, tm) = testbed(5);
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let opt = RobustOptimizer::new(&ev, Params::quick(2));
        for sel in [Selector::Random, Selector::LoadBased, Selector::Fluctuation] {
            let r = opt.optimize_with_selector(sel);
            assert!(!r.critical_indices.is_empty(), "{sel}");
        }
    }
}
