//! Link criticality — the paper's central concept (§IV-C).
//!
//! The criticality of link `l` is *the difference between the mean of the
//! conditional failure-cost distribution of `l` and its left-tail mean*
//! (Eqs. 8–9): if `l` is ignored by robust optimization, the final routing
//! behaves like a random draw from the distribution (expected cost ≈ mean);
//! if `l` is included, the optimizer steers towards the distribution's
//! favorable left tail. The gap is exactly the cost of ignoring the link.
//!
//! For Phase-1c selection, per-class criticalities are **normalized** by
//! the summed left-tail means of all links (lower-bound estimate of the
//! best achievable compound failure cost), so the two classes become
//! comparable relative deviations (§IV-D2).

use crate::samples::SampleStore;

/// Per-link criticality estimates (indexed by failure index).
#[derive(Clone, Debug, PartialEq)]
pub struct Criticality {
    /// Raw `ρ_Λ,l = Λ̂ − Λ̃` (Eq. 8); 0 for links without samples.
    pub rho_lambda: Vec<f64>,
    /// Raw `ρ_Φ,l = Φ̂ − Φ̃` (Eq. 9).
    pub rho_phi: Vec<f64>,
    /// Normalized `ρ̄_Λ,l = ρ_Λ,l / Σ_j Λ̃_fail,j` (0 if the denominator
    /// vanishes — e.g. no SLA violation ever observed).
    pub norm_lambda: Vec<f64>,
    /// Normalized `ρ̄_Φ,l`.
    pub norm_phi: Vec<f64>,
}

impl Criticality {
    /// Estimate criticalities from the sample store.
    pub fn estimate(store: &SampleStore, tail_fraction: f64) -> Self {
        let m = store.num_links();
        let mut rho_lambda = vec![0.0; m];
        let mut rho_phi = vec![0.0; m];
        let mut sum_tail_lambda = 0.0;
        let mut sum_tail_phi = 0.0;
        for i in 0..m {
            if let Some(st) = store.lambda_stats(i, tail_fraction) {
                rho_lambda[i] = st.rho();
                sum_tail_lambda += st.tail_mean;
            }
            if let Some(st) = store.phi_stats(i, tail_fraction) {
                rho_phi[i] = st.rho();
                sum_tail_phi += st.tail_mean;
            }
        }
        let norm = |rho: &[f64], denom: f64| -> Vec<f64> {
            if denom > 0.0 {
                rho.iter().map(|&r| r / denom).collect()
            } else {
                vec![0.0; rho.len()]
            }
        };
        Criticality {
            norm_lambda: norm(&rho_lambda, sum_tail_lambda),
            norm_phi: norm(&rho_phi, sum_tail_phi),
            rho_lambda,
            rho_phi,
        }
    }

    /// Number of links covered.
    pub fn len(&self) -> usize {
        self.rho_lambda.len()
    }

    /// `true` when covering zero links.
    pub fn is_empty(&self) -> bool {
        self.rho_lambda.is_empty()
    }

    /// Failure indices sorted by descending normalized Λ-criticality
    /// (the paper's list `E_Λ`). Ties break by index for determinism.
    pub fn ranking_lambda(&self) -> Vec<usize> {
        rank_desc(&self.norm_lambda)
    }

    /// Failure indices sorted by descending normalized Φ-criticality
    /// (`E_Φ`).
    pub fn ranking_phi(&self) -> Vec<usize> {
        rank_desc(&self.norm_phi)
    }

    /// Criticality scaled per failure index (raw and normalized values
    /// alike) — the probabilistic extension's expected-cost refinement:
    /// the criticality that drives selection is the distribution-shape
    /// criticality times the link's failure probability.
    ///
    /// # Panics
    /// Panics if `by` mismatches the covered link count.
    pub fn scaled(&self, by: &[f64]) -> Criticality {
        assert_eq!(by.len(), self.len(), "one scale factor per link");
        let scale =
            |values: &[f64]| -> Vec<f64> { values.iter().zip(by).map(|(&v, &p)| v * p).collect() };
        Criticality {
            rho_lambda: scale(&self.rho_lambda),
            rho_phi: scale(&self.rho_phi),
            norm_lambda: scale(&self.norm_lambda),
            norm_phi: scale(&self.norm_phi),
        }
    }
}

/// Indices sorted by descending value; ties by ascending index
/// (deterministic).
pub fn rank_desc(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .expect("finite criticality")
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(widths: &[(f64, f64)]) -> SampleStore {
        // Each link gets 20 lambda samples centered at 100 with the given
        // half-width, and phi samples centered at 10 with the second width.
        let mut s = SampleStore::new(widths.len());
        for (i, &(wl, wp)) in widths.iter().enumerate() {
            for k in 0..20 {
                let t = (k as f64 / 19.0) * 2.0 - 1.0; // -1..1
                s.record(i, 100.0 + wl * t, 10.0 + wp * t);
            }
        }
        s
    }

    #[test]
    fn wider_distribution_is_more_critical() {
        let s = store_with(&[(50.0, 0.0), (5.0, 0.0), (0.0, 0.0)]);
        let c = Criticality::estimate(&s, 0.10);
        assert!(c.rho_lambda[0] > c.rho_lambda[1]);
        assert!(c.rho_lambda[1] > c.rho_lambda[2]);
        assert_eq!(c.rho_lambda[2], 0.0);
        assert_eq!(c.ranking_lambda(), vec![0, 1, 2]);
    }

    #[test]
    fn classes_ranked_independently() {
        // Link 0 is Λ-critical only; link 1 is Φ-critical only.
        let s = store_with(&[(50.0, 0.0), (0.0, 5.0)]);
        let c = Criticality::estimate(&s, 0.10);
        assert_eq!(c.ranking_lambda(), vec![0, 1]);
        assert_eq!(c.ranking_phi(), vec![1, 0]);
    }

    #[test]
    fn normalization_divides_by_tail_sum() {
        let s = store_with(&[(50.0, 0.0), (0.0, 0.0)]);
        let c = Criticality::estimate(&s, 0.10);
        // Tail means: link0 tail of 100±50 over 20 samples, k=2 lowest
        // (50, 55.26..); link1 exactly 100. Denominator = their sum.
        let denom = {
            let t0 = s.lambda_stats(0, 0.10).unwrap().tail_mean;
            let t1 = s.lambda_stats(1, 0.10).unwrap().tail_mean;
            t0 + t1
        };
        assert!((c.norm_lambda[0] - c.rho_lambda[0] / denom).abs() < 1e-12);
    }

    #[test]
    fn zero_costs_normalize_to_zero() {
        // All-zero lambda samples: denominator is 0; normalized must be 0.
        let mut s = SampleStore::new(2);
        for i in 0..2 {
            for _ in 0..10 {
                s.record(i, 0.0, 1.0);
            }
        }
        let c = Criticality::estimate(&s, 0.10);
        assert!(c.norm_lambda.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn unsampled_links_have_zero_criticality() {
        let mut s = SampleStore::new(3);
        for _ in 0..10 {
            s.record(1, 50.0, 5.0);
            s.record(1, 150.0, 15.0);
        }
        let c = Criticality::estimate(&s, 0.10);
        assert_eq!(c.rho_lambda[0], 0.0);
        assert!(c.rho_lambda[1] > 0.0);
        assert_eq!(c.rho_lambda[2], 0.0);
        // Sampled link ranks first.
        assert_eq!(c.ranking_lambda()[0], 1);
    }

    #[test]
    fn rho_is_never_negative() {
        let s = store_with(&[(50.0, 3.0), (1.0, 1.0), (0.0, 0.0)]);
        let c = Criticality::estimate(&s, 0.10);
        assert!(c.rho_lambda.iter().all(|&x| x >= 0.0));
        assert!(c.rho_phi.iter().all(|&x| x >= 0.0));
        assert!(c.norm_lambda.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_desc_tie_break_is_by_index() {
        assert_eq!(rank_desc(&[1.0, 2.0, 1.0]), vec![1, 0, 2]);
    }
}
