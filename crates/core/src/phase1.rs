//! Phase 1a — regular optimization with failure-cost sample harvesting.
//!
//! Local search on the normal-conditions cost `Knormal = ⟨Λnormal, Φnormal⟩`
//! (Eq. 3). Every sweep re-draws the class-weight pair of each physical
//! link in random order, accepting lexicographic improvements. Two side
//! products are collected *for free* (§IV-D1):
//!
//! * **failure-cost samples** — when a proposed pair lands in the
//!   failure-emulation band `[q·wmax, wmax]²` for a failable link *and*
//!   the pre-perturbation setting was "acceptable" (`Λ` within `z·B1` of
//!   the running best, `Φ` within `(1+χ)×`), the post-perturbation cost is
//!   recorded as a sample of that link's conditional failure-cost
//!   distribution;
//! * **an archive of acceptable settings** — Phase 2 diversifies from
//!   these instead of from random noise.
//!
//! The criticality ranking is re-estimated every `τ` average samples per
//! link; Phase 1a reports whether it converged (else Phase 1b tops up).
//!
//! The sweep runs through the speculative batched-move kernel
//! ([`crate::search::speculative_sweep`]): the next `K` proposals are
//! pre-drawn and their normal-conditions costs evaluated concurrently on
//! pooled workspaces, then replayed serially in draw order — sample
//! harvesting, archive offers and the accept/reject sequence are
//! bit-for-bit those of the serial loop for every batch size and thread
//! count.

use dtr_cost::{Evaluator, LexCost};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dtr_routing::{Scenario, WeightSetting};

use crate::criticality::Criticality;
use crate::params::Params;
use crate::ranking::RankTracker;
use crate::samples::SampleStore;
use crate::search::{
    duplex_weights, random_symmetric_setting, random_weight_pair, set_duplex_weights,
    speculative_sweep, Archive, Decision, MoveOutcome, SearchStats, SpecBuffers, StopRule,
};
use crate::universe::FailureUniverse;

/// Everything Phase 1 hands to the rest of the pipeline.
#[derive(Clone, Debug)]
pub struct Phase1Output {
    /// Best weight setting found for normal conditions.
    pub best: WeightSetting,
    /// Its cost — the benchmarks `Λ*normal`, `Φ*normal` of Eqs. (5)–(6).
    pub best_cost: LexCost,
    /// Acceptable settings collected along the way (Phase-2 start points;
    /// always contains `best`).
    pub archive: Archive,
    /// Failure-cost samples per failable link.
    pub store: SampleStore,
    /// Rank tracker (carried into Phase 1b if needed).
    pub tracker: RankTracker,
    /// `true` if the criticality ranking converged during Phase 1a.
    pub converged: bool,
    /// Per-proposal accept/reject sequence (empty unless
    /// `params.record_trace`).
    pub trace: Vec<MoveOutcome>,
    pub stats: SearchStats,
}

/// Pre-perturbation acceptability (§IV-D1's relaxed Eqs. 5–6): `Λ` within
/// `z·B1` of the best seen so far, `Φ` within `(1+χ)` of it.
pub fn acceptable(cost: &LexCost, best: &LexCost, z: f64, chi: f64, b1: f64) -> bool {
    cost.lambda <= best.lambda + z * b1 && cost.phi <= (1.0 + chi) * best.phi
}

/// Run Phase 1a.
pub fn run(ev: &Evaluator<'_>, universe: &FailureUniverse, params: &Params) -> Phase1Output {
    params.validate();
    let net = ev.net();
    let b1 = ev.params().b1;
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x9e37_79b9_7f4a_7c15);

    let mut store = SampleStore::new(universe.len());
    let mut tracker = RankTracker::new();
    let mut converged = false;
    let mut next_checkpoint = params.tau * universe.len().max(1);

    let mut stats = SearchStats::default();
    let mut stop = StopRule::new(params.p1, params.c);
    let mut archive = Archive::new(params.archive_size);

    let mut current = random_symmetric_setting(net, params.wmax, &mut rng);
    let mut current_cost = ev.cost(&current, Scenario::Normal);
    stats.evaluations += 1;
    let mut best = current.clone();
    let mut best_cost = current_cost;
    archive.offer(&best, best_cost);

    let mut reps: Vec<_> = universe.all_duplex.clone();
    let mut stale_sweeps = 0usize;
    let mut spec = SpecBuffers::new();
    let mut trace: Vec<MoveOutcome> = Vec::new();

    while stats.iterations < params.max_iterations {
        stats.iterations += 1;
        reps.shuffle(&mut rng);
        let mut improved = false;
        let mut wasted = 0usize;

        speculative_sweep(
            &reps,
            &mut rng,
            params.speculation,
            params.threads,
            params.eager_min_batch,
            &mut current,
            &mut spec,
            &mut wasted,
            |rng| random_weight_pair(params.wmax, rng),
            duplex_weights,
            |w: &mut WeightSetting, rep, &(wd, wt): &(u32, u32)| {
                set_duplex_weights(w, net, rep, wd, wt)
            },
            |w| ev.cost(w, Scenario::Normal),
            |cand_w, rep, &cand: &LexCost| {
                stats.evaluations += 1;
                // `current_cost` is the pre-move cost here (the driver
                // applies the move to the setting only, never the cost).
                let base_acceptable =
                    acceptable(&current_cost, &best_cost, params.z, params.chi, b1);

                // Sample harvest: the new pair emulates this link's
                // failure.
                if base_acceptable && cand_w.emulates_failure(rep, params.q) {
                    if let Some(fi) = universe.failure_index(rep) {
                        store.record(fi, cand.lambda, cand.phi);
                    }
                }

                if cand.better_than(&current_cost) {
                    current_cost = cand;
                    improved = true;
                    if cand.better_than(&best_cost) {
                        best.clone_from(cand_w);
                        best_cost = cand;
                    }
                    if acceptable(&cand, &best_cost, params.z, params.chi, b1) {
                        archive.offer(cand_w, cand);
                    }
                    if params.record_trace {
                        trace.push(MoveOutcome::Accept);
                    }
                    Decision::Accept
                } else {
                    if params.record_trace {
                        trace.push(MoveOutcome::Reject);
                    }
                    Decision::Reject
                }
            },
        );
        stats.speculative_wasted += wasted;

        // Criticality-rank convergence checks every τ samples/link.
        while store.total() >= next_checkpoint {
            let crit = Criticality::estimate(&store, params.left_tail_fraction);
            if let Some(change) = tracker.update(&crit.ranking_lambda(), &crit.ranking_phi()) {
                converged = change.converged(params.e);
            }
            next_checkpoint += params.tau * universe.len().max(1);
        }

        stale_sweeps = if improved { 0 } else { stale_sweeps + 1 };
        if stale_sweeps >= params.div_interval_1 {
            stats.diversifications += 1;
            stale_sweeps = 0;
            if stop.record(best_cost) {
                break;
            }
            current = random_symmetric_setting(net, params.wmax, &mut rng);
            current_cost = ev.cost(&current, Scenario::Normal);
            stats.evaluations += 1;
        }
    }

    // The final best is acceptable by definition (Λ = Λ*, Φ = Φ*).
    archive.offer(&best, best_cost);

    Phase1Output {
        best,
        best_cost,
        archive,
        store,
        tracker,
        converged,
        trace,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::{gravity, ClassMatrices};

    /// Small 2-connected test network: 6-ring with two chords.
    fn testbed() -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new((i as f64 * 1.05).cos(), (i as f64 * 1.05).sin())))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        b.add_duplex_link(n[1], n[4], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let mut tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2e6,
            ..gravity::GravityConfig::paper_default(6, 5)
        });
        // Moderate load.
        tm.scale(1.0);
        (net, tm)
    }

    #[test]
    fn phase1_improves_over_random_start() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(7);
        let out = run(&ev, &universe, &params);

        // The found best must beat (or match) a handful of random settings.
        let mut rng = StdRng::seed_from_u64(999);
        for _ in 0..10 {
            let w = random_symmetric_setting(&net, params.wmax, &mut rng);
            let c = ev.cost(&w, Scenario::Normal);
            assert!(
                !c.better_than(&out.best_cost),
                "random setting beat phase-1 best: {c} < {}",
                out.best_cost
            );
        }
        assert!(out.stats.evaluations > 50);
        assert!(!out.archive.is_empty());
    }

    #[test]
    fn best_cost_matches_reported_weights() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let out = run(&ev, &universe, &Params::quick(3));
        let recheck = ev.cost(&out.best, Scenario::Normal);
        assert_eq!(recheck, out.best_cost);
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let a = run(&ev, &universe, &Params::quick(11));
        let b = run(&ev, &universe, &Params::quick(11));
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.store.total(), b.store.total());
    }

    #[test]
    fn different_seeds_explore_differently() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let a = run(&ev, &universe, &Params::quick(1));
        let b = run(&ev, &universe, &Params::quick(2));
        // Different trajectories (costs may coincide, weights rarely do).
        assert!(a.best != b.best || a.stats.evaluations != b.stats.evaluations);
    }

    #[test]
    fn samples_are_harvested_for_failable_links() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let out = run(&ev, &universe, &Params::quick(5));
        // With wmax=20 and q=0.7 the emulation band is [14,20]^2:
        // (7/20)^2 ≈ 12% of proposals; the quick run makes hundreds.
        assert!(
            out.store.total() > 0,
            "expected some failure-emulating samples"
        );
    }

    #[test]
    fn archive_entries_are_acceptable() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(13);
        let out = run(&ev, &universe, &params);
        let b1 = ev.params().b1;
        for (w, c) in out.archive.entries() {
            // Cached cost must be truthful.
            assert_eq!(*c, ev.cost(w, Scenario::Normal));
            // And acceptable relative to the final best.
            assert!(acceptable(c, &out.best_cost, params.z, params.chi, b1));
        }
    }

    #[test]
    fn acceptability_definition() {
        let best = LexCost::new(100.0, 10.0);
        // z=0.5, B1=100 -> Λ slack 50; χ=0.2 -> Φ cap 12.
        assert!(acceptable(
            &LexCost::new(150.0, 12.0),
            &best,
            0.5,
            0.2,
            100.0
        ));
        assert!(!acceptable(
            &LexCost::new(151.0, 10.0),
            &best,
            0.5,
            0.2,
            100.0
        ));
        assert!(!acceptable(
            &LexCost::new(100.0, 12.1),
            &best,
            0.5,
            0.2,
            100.0
        ));
    }
}
