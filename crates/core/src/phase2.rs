//! Phase 2 — robust optimization over the critical set (Eqs. 4–7),
//! restructured as a speculative, cutoff-aware batched kernel.
//!
//! Minimizes the compound failure cost
//! `K̄fail = ⟨Σ_{l∈Ec} Λfail,l, Σ_{l∈Ec} Φfail,l⟩` subject to the
//! normal-conditions constraints: `Λnormal` may not degrade at all (Eq. 5 —
//! delay-sensitive applications fall off a cliff past the SLA), and
//! `Φnormal` may degrade by at most `(1+χ)` (Eq. 6 — elastic traffic
//! tolerates some slack in exchange for robustness).
//!
//! The search starts from, and diversifies back to, the Phase-1 archive of
//! acceptable settings ("each diversification round starts with a weight
//! setting close to one that already satisfies the constraints", §V-A3).
//!
//! # The batched + cutoff kernel
//!
//! The hill climber itself — not the per-evaluation engine — is the hot
//! loop at paper scale, so both of its costs are restructured around the
//! facts that the RNG move stream is deterministic and that `K̄fail` is a
//! non-negative weighted sum:
//!
//! * **Speculative batched moves** — the next `K` candidate moves of a
//!   sweep are pre-drawn and their normal-conditions costs evaluated
//!   concurrently on pooled workspaces
//!   ([`crate::search::speculative_sweep`]); acceptance is replayed
//!   serially in draw order and speculation past the first accepted move
//!   is discarded. Most moves die at the Eq. 5–6 constraint gate, so the
//!   speculated costs are almost never wasted.
//! * **Monotone early-cutoff sweeps** — a candidate that survives the
//!   gate pays the `|Ec|`-scenario failure sweep through
//!   [`parallel::sum_set_costs_bounded`], which abandons the sweep as
//!   soon as the partial fold *proves* the candidate cannot beat the
//!   incumbent `K̄fail` (scenarios are evaluated
//!   costliest-under-the-incumbent first to make that proof fire early).
//!   Skipped evaluations land in
//!   [`SearchStats::scenario_evals_skipped`].
//!
//! Both mechanisms are float-exact: accepted moves always complete their
//! sweep (whose index-order reduction is bit-for-bit the plain
//! [`parallel::sum_set_costs`] fold), and the cutoff only fires on moves
//! the full sweep would reject. The best setting, its costs, and the
//! full accept/reject sequence are therefore identical for every
//! speculation window, thread count, and cutoff setting — pinned by
//! `tests/search_equivalence.rs`.
//!
//! Both evaluation kinds ride the incremental engine in
//! `dtr_cost::engine`: a neighbor move changes one duplex link's weights,
//! so the normal-conditions check re-routes only the destinations whose
//! distance field that change can provably touch, and the failure sweep
//! runs through the **delta-state scenario cache** — per scenario, only
//! destinations whose effective routing the candidate diff really moves
//! are repaired from the resident incumbent state, only
//! contributor-changed links are refolded, and only delay-touched
//! destinations re-run the SLA DP — for **every** scenario kind the set
//! holds (link, node, SRLG, double-link, probabilistically weighted).

use std::time::{Duration, Instant};

use dtr_cost::{Evaluator, LexCost};
use dtr_persist::{CheckpointSink, SnapshotError};
use dtr_routing::{Class, Scenario, WeightSetting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dtr_net::LinkId;

use crate::parallel::{self, SetSweep, SweepScratch};
use crate::params::{replica_seed, Params};
use crate::phase1::Phase1Output;
use crate::scenario::{ScenarioSet, SliceSet};
use crate::search::{
    duplex_weights, random_weight_pair, set_duplex_weights, speculative_sweep, Archive, Decision,
    MoveOutcome, SearchStats, SpecBuffers, StopRule, Terminated,
};

/// Result of the robust search.
#[derive(Clone, Debug)]
pub struct Phase2Output {
    /// The robust weight setting `W`.
    pub best: WeightSetting,
    /// Its compound failure cost over the critical set.
    pub best_kfail: LexCost,
    /// Its normal-conditions cost (satisfies Eqs. 5–6 w.r.t. Phase 1).
    pub best_normal: LexCost,
    /// Moves rejected by the normal-conditions constraints (cheap
    /// rejections — they skip the failure sweep).
    pub constraint_rejections: usize,
    /// Per-proposal accept/reject sequence (empty unless
    /// `params.record_trace`). In a portfolio run this is the winning
    /// replica's trace.
    pub trace: Vec<MoveOutcome>,
    /// Per-replica accept/reject traces of a portfolio run, in replica
    /// index order (empty unless `params.record_trace` and
    /// `params.portfolio.replicas > 1`). Bit-for-bit reproducible for a
    /// given `(seed, replicas, rendezvous_period)` at any thread count —
    /// the parallel-search contract in `DETERMINISM.md`.
    pub replica_traces: Vec<Vec<MoveOutcome>>,
    pub stats: SearchStats,
    /// Why the run returned (convergence, deadline/kill, or an
    /// already-terminal restored snapshot). Never affects *what* is
    /// returned — see "The checkpoint contract" in `DETERMINISM.md`.
    pub terminated: Terminated,
}

/// Eq. (5)–(6) feasibility of a candidate's normal-conditions cost against
/// the Phase-1 benchmarks. Λ must not degrade (ε-equality; improving on
/// Λ* is even better and accepted); Φ gets the χ budget.
pub fn feasible(normal: &LexCost, lambda_star: f64, phi_star: f64, chi: f64) -> bool {
    normal.lambda <= lambda_star + dtr_cost::LAMBDA_EPS && normal.phi <= (1.0 + chi) * phi_star
}

/// Evaluation-order state of the cutoff sweeps: positions into the
/// `indices` slice, costliest-under-the-incumbent first, the shared
/// per-position cost scratch, the per-position Λ/Φ floors that stand in
/// for scenarios a bounded sweep has not reached yet, and the
/// delta-state scenario cache.
struct SweepState {
    order: Vec<u32>,
    scratch: SweepScratch,
    floors: Vec<dtr_cost::ScenarioFloor>,
    cache: dtr_cost::ScenarioCache,
}

impl SweepState {
    /// Build the sweep state; the floors (one SPF per demand
    /// destination per scenario, see [`Evaluator::lambda_floor`] and
    /// [`Evaluator::phi_floor`]) are only computed when the cutoff will
    /// actually read them — their one-off cost is on the order of a
    /// single failure sweep. Floors depend only on (topology, traffic,
    /// mask, cost parameters) — never on the weights under search — so
    /// this single computation stays valid for the whole run.
    fn new<S: ScenarioSet + ?Sized>(
        ev: &Evaluator<'_>,
        set: &S,
        indices: &[usize],
        params: &Params,
    ) -> Self {
        let floors = if params.cutoff {
            let mut ws = ev.acquire_workspace();
            let floors = indices
                .iter()
                .map(|&i| {
                    let sc = set.scenario(i);
                    if params.phi_floors {
                        ev.scenario_floor(&mut ws, sc)
                    } else {
                        dtr_cost::ScenarioFloor {
                            lambda: ev.lambda_floor(sc),
                            phi: 0.0,
                        }
                    }
                })
                .collect();
            ev.release_workspace(ws);
            floors
        } else {
            Vec::new()
        };
        SweepState {
            order: (0..indices.len() as u32).collect(),
            scratch: SweepScratch::new(),
            floors,
            cache: dtr_cost::ScenarioCache::with_budget(params.cache_budget_bytes),
        }
    }

    /// Re-sort the evaluation order by the incumbent's per-scenario
    /// **excess over the Λ floor** (excess over the Φ floor as
    /// tie-break), descending, ties by position — so the order, and
    /// therefore the deterministic skip accounting, is fully pinned. The
    /// floors already stand in for unevaluated scenarios, so what
    /// advances a bounded sweep's partial fold toward the incumbent is
    /// exactly each evaluated scenario's excess; front-loading the
    /// scenarios where the incumbent's excess is largest makes a losing
    /// candidate's proof fire as early as possible.
    fn refresh<S: ScenarioSet + ?Sized>(&mut self, set: &S, indices: &[usize]) {
        let costs = &self.scratch.costs;
        let floors = &self.floors;
        let weighted = set.weighted();
        let key = |pos: u32| -> (f64, f64) {
            let c = &costs[pos as usize];
            let fl = &floors[pos as usize];
            let excess = c.lambda - fl.lambda;
            let excess_phi = c.phi - fl.phi;
            if weighted {
                let p = set.weight(indices[pos as usize]);
                (excess * p, excess_phi * p)
            } else {
                (excess, excess_phi)
            }
        };
        self.order.sort_by(|&a, &b| {
            let (la, pa) = key(a);
            let (lb, pb) = key(b);
            lb.total_cmp(&la).then(pb.total_cmp(&pa)).then(a.cmp(&b))
        });
    }
}

/// Full compound sweep (init, diversification restarts, cache rebuilds,
/// and the cutoff-off path): bit-for-bit [`parallel::sum_set_costs`].
/// With the cutoff enabled it runs serially through
/// [`Evaluator::cost_capture`], rebuilding the delta-state scenario cache
/// on `w` and refreshing the per-position costs and evaluation order as
/// it goes (the index-order weighted fold is exactly the seed's
/// float-add sequence).
fn full_sweep<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    w: &WeightSetting,
    stats: &mut SearchStats,
    st: &mut SweepState,
) -> LexCost {
    stats.evaluations += indices.len();
    if params.cutoff {
        rebuild_cache(ev, set, indices, w, params.threads, st);
        let resident = st.cache.resident_scenarios();
        stats.cache_resident_scenarios = stats.cache_resident_scenarios.max(resident);
        stats.cache_fallback_evals += indices.len() - resident;
        let weighted = set.weighted();
        let mut acc = LexCost::ZERO;
        for (pos, &i) in indices.iter().enumerate() {
            let c = &st.scratch.costs[pos];
            acc = if weighted {
                let p = set.weight(i);
                acc.add(&LexCost::new(c.lambda * p, c.phi * p))
            } else {
                acc.add(c)
            };
        }
        st.refresh(set, indices);
        acc
    } else {
        parallel::sum_set_costs(ev, w, set, indices, params.threads)
    }
}

/// Capture sweep over `w`: rebuilds the delta-state scenario cache (the
/// incumbent baseline plus every scenario's resident folded state) and
/// refreshes the per-position cost scratch, sharding across `threads`
/// workers (cache entries and cost slots are position-disjoint, so each
/// worker owns a contiguous chunk of both; the captured baseline is
/// shared read-only).
///
/// Budget-bounded caches first capture position 0 serially as a
/// calibration probe, plan the resident prefix from its measured
/// footprint ([`dtr_cost::ScenarioCache::plan_residency`]), then capture
/// only positions inside that prefix; the non-resident tail is evaluated
/// on the plain repair-seeded path, which returns the same bits (pinned
/// by `tests/scenario_engine_equivalence.rs`). A budget below one entry
/// keeps the calibration probe allocated but marks nothing resident —
/// at most one entry of slack over the configured budget.
fn rebuild_cache<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    w: &WeightSetting,
    threads: usize,
    st: &mut SweepState,
) {
    let mut ws = ev.acquire_workspace();
    ev.cache_rebuild_begin(&mut ws, &mut st.cache, w, indices.len());
    st.scratch.costs.clear();
    st.scratch.costs.resize(indices.len(), LexCost::ZERO);
    let mut captured = 0usize;
    if st.cache.budget_bytes() != usize::MAX && !indices.is_empty() {
        let (base, entries) = st.cache.capture_split();
        st.scratch.costs[0] =
            ev.cost_capture_into(&mut ws, w, set.scenario(indices[0]), base, &mut entries[0]);
        captured = 1;
    }
    st.cache.plan_residency(indices.len());
    // Positions still to capture sit in `captured..cap_hi`; everything
    // past the resident prefix takes the plain path into the same cost
    // slots (position 0 is already exact even when non-resident — the
    // capture eval and the plain eval are bit-identical).
    let cap_hi = st.cache.resident_scenarios().max(captured);
    let full = st.cache.full_resident_scenarios();
    let workers = threads.min(indices.len().max(1));
    if workers <= 1 {
        let (base, entries) = st.cache.capture_split();
        for pos in captured..cap_hi {
            st.scratch.costs[pos] = ev.cost_capture_into(
                &mut ws,
                w,
                set.scenario(indices[pos]),
                base,
                &mut entries[pos],
            );
        }
        // Partial-tier positions capture fully (the capture eval *is*
        // the exact cost) and immediately demote to the planned
        // routings + loads footprint.
        for entry in &mut entries[full..cap_hi] {
            entry.demote();
        }
        for (c, &i) in st.scratch.costs[cap_hi..]
            .iter_mut()
            .zip(&indices[cap_hi..])
        {
            *c = ev.cost_with(&mut ws, w, set.scenario(i));
        }
        ev.release_workspace(ws);
        return;
    }
    ev.release_workspace(ws);
    {
        let (base, entries) = st.cache.capture_split();
        let idx = &indices[captured..cap_hi];
        let ents = &mut entries[captured..cap_hi];
        let csts = &mut st.scratch.costs[captured..cap_hi];
        if !idx.is_empty() {
            let chunk = idx.len().div_ceil(workers);
            let parts: Vec<_> = idx
                .chunks(chunk)
                .zip(ents.chunks_mut(chunk))
                .zip(csts.chunks_mut(chunk))
                .collect();
            parallel::scoped_fanout(parts, |((idx, ents), cst)| {
                let mut ws = ev.acquire_workspace();
                for ((&i, entry), c) in idx.iter().zip(ents).zip(cst) {
                    *c = ev.cost_capture_into(&mut ws, w, set.scenario(i), base, entry);
                }
                ev.release_workspace(ws);
            });
        }
        // See the serial branch: demote the partial-tier band.
        for entry in &mut entries[full..cap_hi] {
            entry.demote();
        }
    }
    let tail = &indices[cap_hi..];
    if !tail.is_empty() {
        let csts = &mut st.scratch.costs[cap_hi..];
        let chunk = tail.len().div_ceil(workers);
        let parts: Vec<_> = tail.chunks(chunk).zip(csts.chunks_mut(chunk)).collect();
        parallel::scoped_fanout(parts, |(idx, cst)| {
            let mut ws = ev.acquire_workspace();
            for (&i, c) in idx.iter().zip(cst) {
                *c = ev.cost_with(&mut ws, w, set.scenario(i));
            }
            ev.release_workspace(ws);
        });
    }
}

/// Re-point the delta-state cache at the accepted incumbent `w`,
/// sharding the per-entry refresh across `threads` workers: after the
/// serial [`Evaluator::cache_refresh_begin`] baseline stage, resident
/// entries are position-disjoint and the refresh context is shared
/// read-only, so each worker owns a contiguous chunk and the spliced
/// result is bit-identical to the serial
/// [`Evaluator::cache_refresh`] at any thread count (the parallel-search
/// contract in `DETERMINISM.md`; pinned by `tests/search_equivalence.rs`).
fn refresh_cache<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    w: &WeightSetting,
    threads: usize,
    cache: &mut dtr_cost::ScenarioCache,
) {
    let resident = cache.resident_scenarios();
    let workers = threads.min(resident.max(1));
    let mut ws = ev.acquire_workspace();
    ev.cache_refresh_begin(&mut ws, cache, w);
    if workers <= 1 {
        let (ctx, entries) = cache.refresh_split();
        for (pos, entry) in entries.iter_mut().enumerate().take(resident) {
            ev.cache_refresh_entry(&mut ws, w, &ctx, set.scenario(indices[pos]), entry);
        }
        ev.release_workspace(ws);
    } else {
        ev.release_workspace(ws);
        let (ctx, entries) = cache.refresh_split();
        let chunk = resident.div_ceil(workers);
        let parts: Vec<_> = indices[..resident]
            .chunks(chunk)
            .zip(entries[..resident].chunks_mut(chunk))
            .collect();
        parallel::scoped_fanout(parts, |(idx, ents)| {
            let mut ws = ev.acquire_workspace();
            for (&i, entry) in idx.iter().zip(ents) {
                ev.cache_refresh_entry(&mut ws, w, &ctx, set.scenario(i), entry);
            }
            ev.release_workspace(ws);
        });
    }
    ev.cache_refresh_finish(cache, w);
}

/// The candidate cost the speculative fan-out hands back: the
/// normal-conditions cost plus the eager failure-sweep seed prefix
/// (empty for gate-failing candidates and for serial or cutoff-off
/// runs — see `sum_set_costs_bounded`'s seed contract).
type SpecCost = (LexCost, Vec<(u32, LexCost)>);

/// One replica's persistent search state: everything the classic
/// single-chain Phase-2 loop keeps across sweeps, owned per replica so
/// portfolio chains can run concurrently between rendezvous (the
/// parallel-search contract in `DETERMINISM.md`). `params` is the
/// replica-local copy — derived master seed, `1/replicas` share of the
/// worker threads; every other knob matches the run's. With
/// `replicas == 1` the chain *is* the classic search, bit for bit.
struct Chain {
    params: Params,
    rng: StdRng,
    stats: SearchStats,
    constraint_rejections: usize,
    trace: Vec<MoveOutcome>,
    st: SweepState,
    current: WeightSetting,
    current_kfail: LexCost,
    best: WeightSetting,
    best_kfail: LexCost,
    best_normal: LexCost,
    stop: StopRule,
    reps: Vec<LinkId>,
    stale_sweeps: usize,
    spec: SpecBuffers<WeightSetting, (u32, u32), SpecCost>,
    seed_prefix: Vec<u32>,
    /// Replica-local archive (a clone of Phase 1's): diversification
    /// restarts sample from it, and rendezvous merges offer the other
    /// replicas' elites into it in replica-index order.
    archive: Archive,
    done: bool,
}

impl Chain {
    /// Start a chain from the best archived setting — the classic
    /// Phase-2 prologue (initial full sweep included).
    fn new<S: ScenarioSet + Sync + ?Sized>(
        ev: &Evaluator<'_>,
        set: &S,
        indices: &[usize],
        params: Params,
        phase1: &Phase1Output,
    ) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ 0x2545_f491_4f6c_dd1d);
        let mut stats = SearchStats::default();
        let mut st = SweepState::new(ev, set, indices, &params);
        let archive = phase1.archive.clone();
        let (current, start_normal) = archive
            .best()
            .cloned()
            .expect("phase 1 archives at least its best setting");
        let current_kfail = full_sweep(ev, set, indices, &params, &current, &mut stats, &mut st);
        Chain {
            rng,
            stats,
            constraint_rejections: 0,
            trace: Vec::new(),
            st,
            best: current.clone(),
            best_kfail: current_kfail,
            best_normal: start_normal,
            current,
            current_kfail,
            stop: StopRule::new(params.p2, params.c),
            reps: ev.net().duplex_representatives(),
            stale_sweeps: 0,
            spec: SpecBuffers::new(),
            seed_prefix: Vec::new(),
            archive,
            done: false,
            params,
        }
    }

    /// Finish a single-chain run (no portfolio): the classic output.
    fn into_output(self, terminated: Terminated) -> Phase2Output {
        Phase2Output {
            best: self.best,
            best_kfail: self.best_kfail,
            best_normal: self.best_normal,
            constraint_rejections: self.constraint_rejections,
            trace: self.trace,
            replica_traces: Vec::new(),
            stats: self.stats,
            terminated,
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot codec ("The checkpoint contract", DETERMINISM.md).
//
// A snapshot captures every bit of chain state the trajectory depends
// on: the RNG stream position, current/best settings and costs, the
// stop-rule trailing history, the shuffled representative order, the
// replica-local archive, stats and trace. The delta-state scenario
// cache is NOT serialized: its entries are a pure function of the
// current incumbent, so restore rebuilds them with a capture sweep
// that is bit-identical to the refreshed cache it replaces (pinned by
// the cache equivalence suites); the per-position cost scratch and the
// evaluation order fall out of the same sweep, and the floors are
// weight-independent and recomputed.

const SEC_CONFIG: u32 = 0x10;
const SEC_CHAIN: u32 = 0x20;

fn put_lex(enc: &mut dtr_persist::Encoder, c: &LexCost) {
    enc.put_f64(c.lambda);
    enc.put_f64(c.phi);
}

fn take_lex(rd: &mut dtr_persist::Decoder<'_>) -> Result<LexCost, SnapshotError> {
    Ok(LexCost::new(rd.take_f64()?, rd.take_f64()?))
}

fn put_weights(enc: &mut dtr_persist::Encoder, w: &WeightSetting) {
    enc.put_slice_u32(w.weights(Class::Delay));
    enc.put_slice_u32(w.weights(Class::Throughput));
}

fn take_weights(
    rd: &mut dtr_persist::Decoder<'_>,
    wmax: u32,
    num_links: usize,
) -> Result<WeightSetting, SnapshotError> {
    let delay = rd.take_vec_u32()?;
    let throughput = rd.take_vec_u32()?;
    if delay.len() != num_links || throughput.len() != num_links {
        return Err(SnapshotError::Corrupt("weight vector length differs"));
    }
    if delay.iter().chain(&throughput).any(|&w| w < 1 || w > wmax) {
        return Err(SnapshotError::Corrupt("weight outside [1, wmax]"));
    }
    Ok(WeightSetting::from_vecs(delay, throughput, wmax))
}

fn put_stats(enc: &mut dtr_persist::Encoder, s: &SearchStats) {
    enc.put_usize(s.iterations);
    enc.put_usize(s.evaluations);
    enc.put_usize(s.diversifications);
    enc.put_usize(s.scenario_evals_skipped);
    enc.put_usize(s.skipped_floor);
    enc.put_usize(s.skipped_cache);
    enc.put_usize(s.skipped_cutoff);
    enc.put_usize(s.speculative_wasted);
    enc.put_usize(s.cache_rebuild_evals);
    enc.put_usize(s.cache_resident_scenarios);
    enc.put_usize(s.cache_fallback_evals);
}

fn take_stats(rd: &mut dtr_persist::Decoder<'_>) -> Result<SearchStats, SnapshotError> {
    Ok(SearchStats {
        iterations: rd.take_usize()?,
        evaluations: rd.take_usize()?,
        diversifications: rd.take_usize()?,
        scenario_evals_skipped: rd.take_usize()?,
        skipped_floor: rd.take_usize()?,
        skipped_cache: rd.take_usize()?,
        skipped_cutoff: rd.take_usize()?,
        speculative_wasted: rd.take_usize()?,
        cache_rebuild_evals: rd.take_usize()?,
        cache_resident_scenarios: rd.take_usize()?,
        cache_fallback_evals: rd.take_usize()?,
    })
}

/// Serialize one chain into an open snapshot. Steady-state
/// allocation-free: every write appends into the encoder's reusable
/// buffer, which stops growing once it has seen the largest snapshot
/// (registered in `crates/analysis/hot_paths.toml`, proven by
/// `tests/alloc_free.rs`).
fn encode_chain(enc: &mut dtr_persist::Encoder, ch: &Chain) {
    enc.begin_section(SEC_CHAIN);
    for word in ch.rng.state() {
        enc.put_u64(word);
    }
    put_stats(enc, &ch.stats);
    enc.put_usize(ch.constraint_rejections);
    enc.put_usize(ch.trace.len());
    for m in &ch.trace {
        enc.put_u8(match m {
            MoveOutcome::ConstraintReject => 0,
            MoveOutcome::Reject => 1,
            MoveOutcome::Accept => 2,
        });
    }
    put_weights(enc, &ch.current);
    put_lex(enc, &ch.current_kfail);
    put_weights(enc, &ch.best);
    put_lex(enc, &ch.best_kfail);
    put_lex(enc, &ch.best_normal);
    enc.put_usize(ch.stop.history().len());
    for c in ch.stop.history() {
        put_lex(enc, c);
    }
    enc.put_usize(ch.reps.len());
    for r in &ch.reps {
        enc.put_u32(r.index() as u32);
    }
    enc.put_usize(ch.stale_sweeps);
    enc.put_usize(ch.archive.len());
    for (w, normal) in ch.archive.entries() {
        put_weights(enc, w);
        put_lex(enc, normal);
    }
    enc.put_bool(ch.done);
    enc.end_section();
}

/// Rebuild one chain from an open snapshot. `params` is the
/// replica-local parameter block (derived seed, thread share) the
/// resumed run would hand a fresh chain. Decoding allocates freely —
/// restore runs once, outside every sweep kernel.
fn decode_chain<S: ScenarioSet + Sync + ?Sized>(
    rd: &mut dtr_persist::Decoder<'_>,
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: Params,
) -> Result<Chain, SnapshotError> {
    rd.section(SEC_CHAIN)?;
    let mut state = [0u64; 4];
    for word in &mut state {
        *word = rd.take_u64()?;
    }
    let rng = StdRng::from_state(state);
    let mut stats = take_stats(rd)?;
    let constraint_rejections = rd.take_usize()?;
    let trace_len = rd.take_len(1)?;
    let mut trace = Vec::with_capacity(trace_len);
    for _ in 0..trace_len {
        trace.push(match rd.take_u8()? {
            0 => MoveOutcome::ConstraintReject,
            1 => MoveOutcome::Reject,
            2 => MoveOutcome::Accept,
            _ => return Err(SnapshotError::Corrupt("move outcome out of range")),
        });
    }
    let num_links = ev.net().num_links();
    let current = take_weights(rd, params.wmax, num_links)?;
    let current_kfail = take_lex(rd)?;
    let best = take_weights(rd, params.wmax, num_links)?;
    let best_kfail = take_lex(rd)?;
    let best_normal = take_lex(rd)?;
    let hist_len = rd.take_len(16)?;
    let mut history = Vec::with_capacity(hist_len);
    for _ in 0..hist_len {
        history.push(take_lex(rd)?);
    }
    let mut stop = StopRule::new(params.p2, params.c);
    stop.restore_history(history);
    let reps_len = rd.take_len(4)?;
    let mut reps = Vec::with_capacity(reps_len);
    for _ in 0..reps_len {
        let x = rd.take_u32()? as usize;
        if x >= num_links {
            return Err(SnapshotError::Corrupt("representative link out of range"));
        }
        reps.push(LinkId::new(x));
    }
    let stale_sweeps = rd.take_usize()?;
    let arch_len = rd.take_len(16)?;
    let mut archive = Archive::new(params.archive_size);
    for _ in 0..arch_len {
        let w = take_weights(rd, params.wmax, num_links)?;
        let normal = take_lex(rd)?;
        // Entries were stored best-first, so re-offering in order
        // reproduces the archive exactly (each entry appends; the
        // fingerprints are recomputed).
        archive.offer(&w, normal);
    }
    let done = rd.take_bool()?;

    // Rebuild the evaluation-order state. The delta-state cache is a
    // pure function of the restored incumbent: a capture sweep over
    // `current` reproduces, bit for bit, the entries and per-position
    // costs the refreshed cache held at the checkpoint, and the floors
    // are weight-independent. The physical re-evaluations are
    // attributed to `cache_rebuild_evals`, never to the logical
    // `evaluations`.
    let mut st = SweepState::new(ev, set, indices, &params);
    if params.cutoff && !indices.is_empty() {
        rebuild_cache(ev, set, indices, &current, params.threads, &mut st);
        stats.cache_rebuild_evals += indices.len();
        stats.cache_resident_scenarios = stats
            .cache_resident_scenarios
            .max(st.cache.resident_scenarios());
        st.refresh(set, indices);
    }
    Ok(Chain {
        params,
        rng,
        stats,
        constraint_rejections,
        trace,
        st,
        current,
        current_kfail,
        best,
        best_kfail,
        best_normal,
        stop,
        reps,
        stale_sweeps,
        spec: SpecBuffers::new(),
        seed_prefix: Vec::new(),
        archive,
        done,
    })
}

/// Write the whole run state (config fingerprint + every chain) into
/// `enc`, leaving it ready for `finish()`. Steady-state
/// allocation-free like [`encode_chain`].
#[allow(clippy::too_many_arguments)]
fn encode_snapshot(
    enc: &mut dtr_persist::Encoder,
    params: &Params,
    indices_len: usize,
    num_links: usize,
    lambda_star: f64,
    phi_star: f64,
    boundary: u64,
    chains: &[Chain],
) {
    enc.begin(dtr_persist::KIND_DTR_PHASE2);
    enc.begin_section(SEC_CONFIG);
    enc.put_u64(params.seed);
    enc.put_usize(params.portfolio.replicas);
    enc.put_usize(params.portfolio.rendezvous_period);
    enc.put_usize(indices_len);
    enc.put_usize(num_links);
    enc.put_u32(params.wmax);
    enc.put_f64(params.chi);
    enc.put_usize(params.p2);
    enc.put_f64(params.c);
    enc.put_usize(params.div_interval_2);
    enc.put_usize(params.max_iterations);
    enc.put_usize(params.archive_size);
    enc.put_f64(lambda_star);
    enc.put_f64(phi_star);
    enc.put_u64(boundary);
    enc.put_usize(chains.len());
    enc.end_section();
    for ch in chains {
        encode_chain(enc, ch);
    }
}

/// Config fingerprint + Phase-1 benchmarks recovered from a snapshot.
struct SnapshotHeader {
    lambda_star: f64,
    phi_star: f64,
    boundary: u64,
}

/// Check the stored config fingerprint against the resuming run.
/// Only trajectory-determining knobs are fingerprinted: `threads`,
/// `speculation`, `cutoff`, the cache budget and the eager batch size
/// may all legally differ between the saving and the resuming process —
/// the determinism contract makes the continued trajectory identical
/// regardless.
fn decode_config(
    rd: &mut dtr_persist::Decoder<'_>,
    params: &Params,
    indices_len: usize,
    num_links: usize,
) -> Result<SnapshotHeader, SnapshotError> {
    rd.section(SEC_CONFIG)?;
    if rd.take_u64()? != params.seed {
        return Err(SnapshotError::Mismatch("seed differs"));
    }
    if rd.take_usize()? != params.portfolio.replicas {
        return Err(SnapshotError::Mismatch("replica count differs"));
    }
    if rd.take_usize()? != params.portfolio.rendezvous_period {
        return Err(SnapshotError::Mismatch("rendezvous period differs"));
    }
    if rd.take_usize()? != indices_len {
        return Err(SnapshotError::Mismatch("critical-set size differs"));
    }
    if rd.take_usize()? != num_links {
        return Err(SnapshotError::Mismatch("link count differs"));
    }
    if rd.take_u32()? != params.wmax {
        return Err(SnapshotError::Mismatch("wmax differs"));
    }
    if rd.take_f64()?.to_bits() != params.chi.to_bits() {
        return Err(SnapshotError::Mismatch("chi differs"));
    }
    if rd.take_usize()? != params.p2 {
        return Err(SnapshotError::Mismatch("stop window differs"));
    }
    if rd.take_f64()?.to_bits() != params.c.to_bits() {
        return Err(SnapshotError::Mismatch("stop threshold differs"));
    }
    if rd.take_usize()? != params.div_interval_2 {
        return Err(SnapshotError::Mismatch("diversification interval differs"));
    }
    if rd.take_usize()? != params.max_iterations {
        return Err(SnapshotError::Mismatch("iteration cap differs"));
    }
    if rd.take_usize()? != params.archive_size {
        return Err(SnapshotError::Mismatch("archive size differs"));
    }
    let lambda_star = rd.take_f64()?;
    let phi_star = rd.take_f64()?;
    let boundary = rd.take_u64()?;
    if rd.take_usize()? != params.portfolio.replicas {
        return Err(SnapshotError::Corrupt("chain count differs from replicas"));
    }
    Ok(SnapshotHeader {
        lambda_star,
        phi_star,
        boundary,
    })
}

/// External control of a robust search run: an optional checkpoint
/// sink fed every [`Params::checkpoint_every`] boundaries, and a
/// deterministic kill-point for the fault-injection harness.
///
/// A *boundary* is one chain sweep for a single-chain run and one
/// rendezvous (fan-out + elite merge) for a portfolio run — the only
/// points where all chain state is consistent, hence the only points
/// where snapshots are taken and termination is decided.
pub struct RunControl<'a> {
    /// Where checkpoints go. `None` disables checkpointing even when
    /// `Params::checkpoint_every` is set.
    pub sink: Option<&'a mut dyn CheckpointSink>,
    /// Deterministic kill-point: stop (as if the deadline fired) once
    /// this many boundaries have completed, counted across restores —
    /// so a resumed run's kill indices stay globally aligned with an
    /// uninterrupted run's.
    pub kill_after: Option<u64>,
}

impl<'a> RunControl<'a> {
    /// No checkpointing, no kill-point: plain [`run`] behaviour.
    pub fn none() -> Self {
        RunControl {
            sink: None,
            kill_after: None,
        }
    }

    /// Checkpoint into `sink` every `Params::checkpoint_every`
    /// boundaries.
    pub fn with_sink(sink: &'a mut dyn CheckpointSink) -> Self {
        RunControl {
            sink: Some(sink),
            kill_after: None,
        }
    }
}

/// Boundary bookkeeping shared by both drivers: checkpoint when the
/// cadence is due, then decide whether the run ends here (injected
/// kill-point or wall-clock deadline). The decision only reads *whether*
/// to stop — never which move to accept — so every prefix of the
/// trajectory matches an uncontrolled run's bit for bit.
#[allow(clippy::too_many_arguments)]
fn at_boundary(
    enc: &mut dtr_persist::Encoder,
    params: &Params,
    indices_len: usize,
    num_links: usize,
    lambda_star: f64,
    phi_star: f64,
    boundary: u64,
    chains: &[Chain],
    deadline: Option<Instant>,
    ctl: &mut RunControl<'_>,
) -> Result<Option<Terminated>, SnapshotError> {
    if params.checkpoint_every != 0 && boundary.is_multiple_of(params.checkpoint_every as u64) {
        if let Some(sink) = ctl.sink.as_mut() {
            encode_snapshot(
                enc,
                params,
                indices_len,
                num_links,
                lambda_star,
                phi_star,
                boundary,
                chains,
            );
            sink.store(enc.finish())?;
        }
    }
    if ctl.kill_after.is_some_and(|k| boundary >= k) {
        return Ok(Some(Terminated::Deadline));
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Ok(Some(Terminated::Deadline));
    }
    Ok(None)
}

/// Boundary-driven driver behind [`run`], [`run_controlled`] and
/// [`resume`]: sweeps chains between boundaries, checkpoints and
/// decides termination only at boundaries, and assembles the output.
#[allow(clippy::too_many_arguments)]
fn drive<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    lambda_star: f64,
    phi_star: f64,
    mut chains: Vec<Chain>,
    start_boundary: u64,
    restored: bool,
    ctl: &mut RunControl<'_>,
) -> Result<Phase2Output, SnapshotError> {
    let deadline = params
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut enc = dtr_persist::Encoder::new();
    let num_links = ev.net().num_links();
    let mut boundary = start_boundary;
    let mut terminated = if restored && chains.iter().all(|c| c.done) {
        Terminated::Restored
    } else {
        Terminated::Converged
    };

    if params.portfolio.replicas == 1 {
        let mut ch = chains.pop().expect("exactly one chain");
        if !indices.is_empty() {
            while !ch.done {
                chain_sweep(ev, set, indices, lambda_star, phi_star, &mut ch);
                boundary += 1;
                if let Some(t) = at_boundary(
                    &mut enc,
                    params,
                    indices.len(),
                    num_links,
                    lambda_star,
                    phi_star,
                    boundary,
                    std::slice::from_ref(&ch),
                    deadline,
                    ctl,
                )? {
                    terminated = t;
                    break;
                }
            }
        }
        return Ok(ch.into_output(terminated));
    }

    // Portfolio search (parallel-search contract, `DETERMINISM.md`):
    // independent chains from distinct derived seeds, each granted an
    // equal share of the worker threads, exchanging archive elites at
    // fixed rendezvous points. Every cross-replica step — elite
    // collection, archive offers, the final winner pick and stat
    // merge — happens in replica index order on the coordinating
    // thread, so the output depends only on
    // `(seed, replicas, rendezvous_period)`, never on thread count.
    if !indices.is_empty() {
        let mut elites: Vec<(WeightSetting, LexCost)> = Vec::new();
        while chains.iter().any(|c| !c.done) {
            parallel::scoped_fanout(
                chains.iter_mut().filter(|c| !c.done).collect(),
                |ch: &mut Chain| {
                    for _ in 0..params.portfolio.rendezvous_period {
                        chain_sweep(ev, set, indices, lambda_star, phi_star, ch);
                        if ch.done {
                            break;
                        }
                    }
                },
            );
            // Rendezvous: collect every replica's elite in index order,
            // then offer the batch into every archive in that same
            // order. `Archive::offer` dedups by fingerprint, so repeat
            // offers across rendezvous are no-ops and the merge is
            // idempotent.
            elites.clear();
            elites.extend(chains.iter().map(|c| (c.best.clone(), c.best_normal)));
            for ch in chains.iter_mut() {
                for (w, normal) in &elites {
                    ch.archive.offer(w, *normal);
                }
            }
            boundary += 1;
            if let Some(t) = at_boundary(
                &mut enc,
                params,
                indices.len(),
                num_links,
                lambda_star,
                phi_star,
                boundary,
                &chains,
                deadline,
                ctl,
            )? {
                terminated = t;
                break;
            }
        }
    }

    // Winner: best k-failure cost, lowest replica index on ties.
    let mut win = 0usize;
    for r in 1..chains.len() {
        if chains[r].best_kfail.better_than(&chains[win].best_kfail) {
            win = r;
        }
    }
    let mut stats = SearchStats::default();
    let mut constraint_rejections = 0usize;
    for c in &chains {
        stats.merge(&c.stats);
        constraint_rejections += c.constraint_rejections;
    }
    let mut replica_traces: Vec<Vec<MoveOutcome>> = Vec::new();
    if params.record_trace {
        replica_traces.extend(chains.iter_mut().map(|c| std::mem::take(&mut c.trace)));
    }
    let trace = replica_traces.get(win).cloned().unwrap_or_default();
    let winner = chains.swap_remove(win);
    Ok(Phase2Output {
        best: winner.best,
        best_kfail: winner.best_kfail,
        best_normal: winner.best_normal,
        constraint_rejections,
        trace,
        replica_traces,
        stats,
        terminated,
    })
}

/// One sweep of one chain — the classic Phase-2 loop body (speculative
/// batched moves, Eq. 5–6 gate, bounded failure sweeps, diversification
/// and the stop rule). Sets `ch.done` when the chain's stop rule or the
/// iteration backstop fires; a done chain is never swept again.
fn chain_sweep<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    lambda_star: f64,
    phi_star: f64,
    ch: &mut Chain,
) {
    if ch.done {
        return;
    }
    if ch.stats.iterations >= ch.params.max_iterations {
        ch.done = true;
        return;
    }
    let params = ch.params;
    let net = ev.net();
    let Chain {
        rng,
        stats,
        constraint_rejections,
        trace,
        st,
        current,
        current_kfail,
        best,
        best_kfail,
        best_normal,
        stop,
        reps,
        stale_sweeps,
        spec,
        seed_prefix,
        archive,
        done,
        ..
    } = ch;

    stats.iterations += 1;
    reps.shuffle(rng);
    let mut improved = false;
    let mut wasted = 0usize;

    // Eager failure-sweep prefix (parallel-search contract,
    // `DETERMINISM.md`): alongside each gate-passing candidate's
    // normal-conditions cost, the speculative fan-out pre-computes
    // the first few scenarios of the bounded sweep's priority order
    // on the worker threads. The seeds substitute bit-identical
    // values in `sum_set_costs_bounded`, so a stale snapshot (the
    // order re-sorts after an accept) wastes at most the seed work,
    // never changes bits.
    seed_prefix.clear();
    if params.threads > 1 && params.cutoff {
        let l = params.threads.min(st.order.len());
        seed_prefix.extend_from_slice(&st.order[..l]);
    }
    let seed_prefix: &[u32] = seed_prefix;

    speculative_sweep(
        reps,
        rng,
        params.speculation,
        params.threads,
        params.eager_min_batch,
        current,
        spec,
        &mut wasted,
        |rng| random_weight_pair(params.wmax, rng),
        duplex_weights,
        |w: &mut WeightSetting, rep, &(wd, wt): &(u32, u32)| {
            set_duplex_weights(w, net, rep, wd, wt)
        },
        |w| {
            let normal = ev.cost(w, Scenario::Normal);
            let mut seeds: Vec<(u32, LexCost)> = Vec::new();
            if !seed_prefix.is_empty() && feasible(&normal, lambda_star, phi_star, params.chi) {
                let mut ws = ev.acquire_workspace();
                seeds.extend(seed_prefix.iter().map(|&p| {
                    (
                        p,
                        ev.cost_with(&mut ws, w, set.scenario(indices[p as usize])),
                    )
                }));
                ev.release_workspace(ws);
            }
            (normal, seeds)
        },
        |cand_w, _rep, cost: &SpecCost| {
            let (normal, seeds) = cost;
            stats.evaluations += 1;
            if !feasible(normal, lambda_star, phi_star, params.chi) {
                *constraint_rejections += 1;
                if params.record_trace {
                    trace.push(MoveOutcome::ConstraintReject);
                }
                return Decision::Reject;
            }
            stats.evaluations += indices.len();
            let outcome = if params.cutoff {
                ev.cache_begin(&mut st.cache, cand_w);
                parallel::sum_set_costs_bounded(
                    ev,
                    cand_w,
                    set,
                    indices,
                    params.threads,
                    current_kfail,
                    &st.order,
                    seeds,
                    Some(&st.floors),
                    Some(&st.cache),
                    &mut st.scratch,
                )
            } else {
                SetSweep::Complete(parallel::sum_set_costs(
                    ev,
                    cand_w,
                    set,
                    indices,
                    params.threads,
                ))
            };
            if params.cutoff {
                // Attribute plain-path (non-resident) evaluations of
                // this bounded sweep. The canonical evaluation set is
                // the `evaluated`-long prefix of the deterministic
                // order, so the counter is thread-invariant.
                let resident = st.cache.resident_scenarios();
                stats.cache_fallback_evals += match &outcome {
                    SetSweep::Complete(_) => indices.len() - resident,
                    SetSweep::Cut { evaluated, .. } => st.order[..*evaluated]
                        .iter()
                        .filter(|&&p| p as usize >= resident)
                        .count(),
                };
            }
            match outcome {
                SetSweep::Complete(kfail) if kfail.better_than(current_kfail) => {
                    *current_kfail = kfail;
                    if params.cutoff {
                        // Re-point the cache at the new incumbent so
                        // the next candidate's diff is again a single
                        // duplex move. The delta-state refresh keeps
                        // affected-set coverage *exact*, so no
                        // periodic full rebuild is needed.
                        refresh_cache(ev, set, indices, cand_w, params.threads, &mut st.cache);
                        st.refresh(set, indices);
                    }
                    improved = true;
                    if kfail.better_than(best_kfail) {
                        best.clone_from(cand_w);
                        *best_kfail = kfail;
                        *best_normal = *normal;
                    }
                    if params.record_trace {
                        trace.push(MoveOutcome::Accept);
                    }
                    Decision::Accept
                }
                SetSweep::Complete(_) => {
                    if params.record_trace {
                        trace.push(MoveOutcome::Reject);
                    }
                    Decision::Reject
                }
                SetSweep::Cut {
                    evaluated,
                    floor_cut,
                } => {
                    let skips = indices.len() - evaluated;
                    stats.scenario_evals_skipped += skips;
                    if floor_cut {
                        stats.skipped_floor += skips;
                    } else {
                        // Phase 2's bounded sweeps always run through
                        // the delta-state cache when the cutoff is on.
                        stats.skipped_cache += skips;
                    }
                    if params.record_trace {
                        trace.push(MoveOutcome::Reject);
                    }
                    Decision::Reject
                }
            }
        },
    );
    stats.speculative_wasted += wasted;

    *stale_sweeps = if improved { 0 } else { *stale_sweeps + 1 };
    if *stale_sweeps >= params.div_interval_2 {
        stats.diversifications += 1;
        *stale_sweeps = 0;
        if stop.record(*best_kfail) {
            *done = true;
            return;
        }
        // Restart from a random archived setting. An archive entry may
        // violate Eq. 5 slightly (accepted under the z·B1 slack); it
        // still serves as a diversification point — only *accepted
        // moves* must be feasible, and the best tracker only advances
        // on feasible candidates.
        let (w, _normal) = archive.sample(rng).cloned().expect("archive is non-empty");
        *current = w;
        *current_kfail = full_sweep(ev, set, indices, &params, current, stats, st);
    }
}

/// Run Phase 2 over the scenarios of `indices` drawn from any
/// [`ScenarioSet`]. The set supplies both the scenarios and (for
/// probabilistic ensembles) their weights; uniform sets keep the paper's
/// plain Eq. (4) sum. The canonical single-link call passes the
/// [`crate::FailureUniverse`] itself; arbitrary scenario slices ride the
/// same path through [`SliceSet`] (see [`run_scenarios`]).
///
/// All failure sweeps run through the set-native sharded kernels in
/// [`parallel`]: no scenario vector is materialized per sweep, every
/// worker reuses a pooled incremental workspace, and the weighted
/// reduction folds in index order — so the trajectory is bit-for-bit
/// identical for every `params.threads`, `params.speculation`, and
/// `params.cutoff` (see the module docs).
pub fn run<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    phase1: &Phase1Output,
) -> Phase2Output {
    run_controlled(ev, set, indices, params, phase1, &mut RunControl::none())
        .expect("without a checkpoint sink no snapshot i/o can fail")
}

/// [`run`] under external control: checkpoints into `ctl.sink` every
/// `params.checkpoint_every` boundaries and honours `ctl.kill_after`
/// and `params.deadline_ms`. The only fallible step is storing a
/// snapshot, so with `RunControl::none()` this is exactly [`run`].
pub fn run_controlled<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    phase1: &Phase1Output,
    ctl: &mut RunControl<'_>,
) -> Result<Phase2Output, SnapshotError> {
    params.validate();
    if set.weighted() {
        for &i in indices {
            let p = set.weight(i);
            assert!(
                p >= 0.0 && p.is_finite(),
                "scenario {i} has invalid weight {p}"
            );
        }
    }
    let lambda_star = phase1.best_cost.lambda;
    let phi_star = phase1.best_cost.phi;
    let chains = build_chains(ev, set, indices, params, phase1);
    drive(
        ev,
        set,
        indices,
        params,
        lambda_star,
        phi_star,
        chains,
        0,
        false,
        ctl,
    )
}

/// Restore a Phase-2 run from `snapshot` bytes and continue it under
/// `ctl`. The evaluator, scenario set, critical indices and the
/// trajectory-determining `params` knobs must match the saving run
/// ([`SnapshotError::Mismatch`] otherwise); `threads`, `speculation`,
/// `cutoff` and the cache budget may differ freely — the determinism
/// contract keeps the continued trajectory bit-identical regardless.
/// No `Phase1Output` is needed: the Λ*/Φ* benchmarks and the archive
/// travel inside the snapshot.
///
/// The wall-clock deadline, when set, is a fresh budget for this call —
/// time spent before the crash is not counted against it.
pub fn resume<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    snapshot: &[u8],
    ctl: &mut RunControl<'_>,
) -> Result<Phase2Output, SnapshotError> {
    params.validate();
    let mut rd = dtr_persist::open(snapshot, dtr_persist::KIND_DTR_PHASE2)?;
    let hdr = decode_config(&mut rd, params, indices.len(), ev.net().num_links())?;
    let replicas = params.portfolio.replicas;
    let mut chains = Vec::with_capacity(replicas);
    if replicas == 1 {
        chains.push(decode_chain(&mut rd, ev, set, indices, *params)?);
    } else {
        let inner = Params {
            threads: (params.threads / replicas).max(1),
            ..*params
        };
        for r in 0..replicas {
            let p = Params {
                seed: replica_seed(params.seed, r),
                ..inner
            };
            chains.push(decode_chain(&mut rd, ev, set, indices, p)?);
        }
    }
    rd.finish()?;
    drive(
        ev,
        set,
        indices,
        params,
        hdr.lambda_star,
        hdr.phi_star,
        chains,
        hdr.boundary,
        true,
        ctl,
    )
}

/// Build the chain vector [`drive`] runs: one classic chain, or
/// `replicas` portfolio chains from distinct derived seeds, each with
/// an equal share of the worker threads (initial full sweeps fan out
/// across replicas exactly as before).
fn build_chains<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    phase1: &Phase1Output,
) -> Vec<Chain> {
    let replicas = params.portfolio.replicas;
    if replicas == 1 {
        return vec![Chain::new(ev, set, indices, *params, phase1)];
    }
    let inner = Params {
        threads: (params.threads / replicas).max(1),
        ..*params
    };
    let mut slots: Vec<Option<Chain>> = Vec::new();
    slots.resize_with(replicas, || None);
    parallel::scoped_fanout(
        slots.iter_mut().enumerate().collect(),
        |(r, slot): (usize, &mut Option<Chain>)| {
            let p = Params {
                seed: replica_seed(params.seed, r),
                ..inner
            };
            *slot = Some(Chain::new(ev, set, indices, p, phase1));
        },
    );
    slots
        .into_iter()
        .map(|s| s.expect("every replica slot is initialised"))
        .collect()
}

/// Run Phase 2 against an arbitrary scenario slice — e.g. all single node
/// failures for the §V-F comparison routing, or sampled double-link
/// failures. The slice rides the set-native path through a [`SliceSet`]
/// adapter, so it gets the same sharded, speculative, cutoff-aware
/// kernel as [`run`] — and the same float behaviour as the historical
/// slice-specific sweep (weights, when given, multiply each scenario's
/// cost before the index-order fold).
pub fn run_scenarios(
    ev: &Evaluator<'_>,
    scenarios: &[Scenario],
    params: &Params,
    phase1: &Phase1Output,
    scenario_weights: Option<&[f64]>,
) -> Phase2Output {
    let set = SliceSet::new(scenarios, scenario_weights);
    let indices: Vec<usize> = (0..scenarios.len()).collect();
    run(ev, &set, &indices, params, phase1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;
    use crate::universe::FailureUniverse;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::{gravity, ClassMatrices};

    fn testbed() -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64, (i * i % 3) as f64)))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        b.add_duplex_link(n[1], n[4], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2.5e6,
            ..gravity::GravityConfig::paper_default(6, 9)
        });
        (net, tm)
    }

    fn setup() -> (Network, ClassMatrices) {
        testbed()
    }

    #[test]
    fn robust_solution_is_feasible_and_not_worse_than_start() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(21);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let p2 = run(&ev, &universe, &all, &params, &p1);

        // Feasibility (Eqs. 5-6).
        assert!(feasible(
            &p2.best_normal,
            p1.best_cost.lambda,
            p1.best_cost.phi,
            params.chi
        ));
        // Kfail of the result must not exceed Kfail of the Phase-1 best.
        let scenarios = universe.scenarios();
        let k_start = parallel::sum_failure_costs(&ev, &p1.best, &scenarios, 1);
        assert!(
            !k_start.better_than(&p2.best_kfail),
            "phase 2 regressed: start {k_start} vs robust {}",
            p2.best_kfail
        );
        // Reported kfail must be truthful.
        let recheck = parallel::sum_failure_costs(&ev, &p2.best, &scenarios, 1);
        assert_eq!(recheck, p2.best_kfail);
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(33);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let a = run(&ev, &universe, &all, &params, &p1);
        let b = run(&ev, &universe, &all, &params, &p1);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_kfail, b.best_kfail);
    }

    #[test]
    fn budget_bounded_cache_matches_unbounded_bit_for_bit() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params {
            record_trace: true,
            ..Params::quick(21)
        };
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let unbounded = run(&ev, &universe, &all, &params, &p1);
        assert_eq!(unbounded.stats.cache_resident_scenarios, all.len());
        assert_eq!(unbounded.stats.cache_fallback_evals, 0);
        // From "below one entry" through "a partial prefix" to "holds
        // everything": the trajectory never moves.
        for budget in [0usize, 4_096, 1 << 22] {
            let bounded = run(
                &ev,
                &universe,
                &all,
                &Params {
                    cache_budget_bytes: budget,
                    ..params
                },
                &p1,
            );
            assert_eq!(bounded.best, unbounded.best, "budget {budget}");
            assert_eq!(bounded.best_kfail, unbounded.best_kfail, "budget {budget}");
            assert_eq!(
                bounded.best_normal, unbounded.best_normal,
                "budget {budget}"
            );
            assert_eq!(bounded.trace, unbounded.trace, "budget {budget}");
            assert_eq!(
                bounded.constraint_rejections, unbounded.constraint_rejections,
                "budget {budget}"
            );
            // Every stat except the two residency counters matches.
            let mut masked = bounded.stats;
            masked.cache_resident_scenarios = unbounded.stats.cache_resident_scenarios;
            masked.cache_fallback_evals = unbounded.stats.cache_fallback_evals;
            assert_eq!(masked, unbounded.stats, "budget {budget}");
            assert!(
                bounded.stats.cache_resident_scenarios <= all.len(),
                "budget {budget}"
            );
        }
        // A budget below one entry degrades the cache entirely — and the
        // fallback accounting must show it.
        let tiny = run(
            &ev,
            &universe,
            &all,
            &Params {
                cache_budget_bytes: 1,
                ..params
            },
            &p1,
        );
        assert_eq!(tiny.stats.cache_resident_scenarios, 0);
        assert!(tiny.stats.cache_fallback_evals > 0);
    }

    #[test]
    fn critical_subset_costs_fewer_evaluations() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let few = vec![0usize];
        let full = run(&ev, &universe, &all, &params, &p1);
        let crit = run(&ev, &universe, &few, &params, &p1);
        assert!(
            crit.stats.evaluations < full.stats.evaluations,
            "critical {} vs full {}",
            crit.stats.evaluations,
            full.stats.evaluations
        );
    }

    #[test]
    fn empty_critical_set_returns_start() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let p1 = phase1::run(&ev, &universe, &params);
        let out = run(&ev, &universe, &[], &params, &p1);
        assert_eq!(out.best_kfail, LexCost::ZERO);
        assert_eq!(&out.best, &p1.archive.best().unwrap().0);
    }

    #[test]
    fn weighted_scenarios_change_the_objective() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(8);
        let p1 = phase1::run(&ev, &universe, &params);
        let idx: Vec<usize> = (0..universe.len()).collect();
        let uniform = run(&ev, &universe, &idx, &params, &p1);
        let scenarios = universe.scenarios_for(&idx);
        let weights = vec![0.5; idx.len()];
        let halved = run_scenarios(&ev, &scenarios, &params, &p1, Some(&weights));
        // Halving all weights halves the reported objective for the same
        // trajectory (acceptance decisions are scale-invariant).
        assert!((halved.best_kfail.lambda - 0.5 * uniform.best_kfail.lambda).abs() < 1e-6);
        assert!((halved.best_kfail.phi - 0.5 * uniform.best_kfail.phi).abs() < 1e-6);
    }

    #[test]
    fn cutoff_skips_scenario_evaluations_without_changing_the_result() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params_on = Params::quick(21);
        let params_off = Params {
            cutoff: false,
            ..params_on
        };
        let p1 = phase1::run(&ev, &universe, &params_on);
        let all: Vec<usize> = (0..universe.len()).collect();
        let on = run(&ev, &universe, &all, &params_on, &p1);
        let off = run(&ev, &universe, &all, &params_off, &p1);
        assert_eq!(on.best, off.best);
        assert_eq!(on.best_kfail, off.best_kfail);
        assert_eq!(on.best_normal, off.best_normal);
        assert_eq!(on.constraint_rejections, off.constraint_rejections);
        assert_eq!(on.stats.evaluations, off.stats.evaluations);
        assert_eq!(off.stats.scenario_evals_skipped, 0);
        assert!(
            on.stats.scenario_evals_skipped > 0,
            "cutoff never fired on a quick run with sweep rejections"
        );
        // Per-cause attribution partitions the legacy counter exactly.
        assert_eq!(
            on.stats.scenario_evals_skipped,
            on.stats.skipped_floor + on.stats.skipped_cache + on.stats.skipped_cutoff
        );
        // Disabling the Φ floors must not change the trajectory either —
        // floors only hasten provable rejections.
        let params_no_phi = Params {
            phi_floors: false,
            ..params_on
        };
        let no_phi = run(&ev, &universe, &all, &params_no_phi, &p1);
        assert_eq!(no_phi.best, on.best);
        assert_eq!(no_phi.best_kfail, on.best_kfail);
        assert_eq!(no_phi.stats.evaluations, on.stats.evaluations);
    }

    #[test]
    #[should_panic(expected = "one weight per critical scenario")]
    fn mismatched_weights_panic() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(8);
        let p1 = phase1::run(&ev, &universe, &params);
        let scenarios = universe.scenarios();
        let _ = run_scenarios(&ev, &scenarios, &params, &p1, Some(&[1.0]));
    }
}
