//! Phase 2 — robust optimization over the critical set (Eqs. 4–7).
//!
//! Minimizes the compound failure cost
//! `K̄fail = ⟨Σ_{l∈Ec} Λfail,l, Σ_{l∈Ec} Φfail,l⟩` subject to the
//! normal-conditions constraints: `Λnormal` may not degrade at all (Eq. 5 —
//! delay-sensitive applications fall off a cliff past the SLA), and
//! `Φnormal` may degrade by at most `(1+χ)` (Eq. 6 — elastic traffic
//! tolerates some slack in exchange for robustness).
//!
//! The search starts from, and diversifies back to, the Phase-1 archive of
//! acceptable settings ("each diversification round starts with a weight
//! setting close to one that already satisfies the constraints", §V-A3).
//! A candidate move is first checked against the constraints with a single
//! normal-conditions evaluation; only survivors pay for the full
//! `|Ec|`-scenario failure sweep.
//!
//! Both evaluations ride the incremental engine in `dtr_cost::engine`: a
//! neighbor move changes one duplex link's weights, so the
//! normal-conditions check re-routes only the destinations whose distance
//! field that change can provably touch, and the failure sweep
//! ([`parallel::evaluate_set`] for set-based runs,
//! [`parallel::failure_costs`] for scenario slices) re-routes, per
//! scenario, only the destinations whose shortest-path DAG uses a link of
//! that scenario's down-set — for **every** scenario kind the set holds
//! (link, node, SRLG, double-link, probabilistically weighted). Results
//! are bit-for-bit those of full per-scenario evaluation, so the search
//! trajectory is unchanged.

use dtr_cost::{Evaluator, LexCost};
use dtr_routing::{Scenario, WeightSetting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::parallel;
use crate::params::Params;
use crate::phase1::Phase1Output;
use crate::scenario::ScenarioSet;
use crate::search::{
    duplex_weights, random_weight_pair, set_duplex_weights, SearchStats, StopRule,
};

/// Result of the robust search.
#[derive(Clone, Debug)]
pub struct Phase2Output {
    /// The robust weight setting `W`.
    pub best: WeightSetting,
    /// Its compound failure cost over the critical set.
    pub best_kfail: LexCost,
    /// Its normal-conditions cost (satisfies Eqs. 5–6 w.r.t. Phase 1).
    pub best_normal: LexCost,
    /// Moves rejected by the normal-conditions constraints (cheap
    /// rejections — they skip the failure sweep).
    pub constraint_rejections: usize,
    pub stats: SearchStats,
}

/// Eq. (5)–(6) feasibility of a candidate's normal-conditions cost against
/// the Phase-1 benchmarks. Λ must not degrade (ε-equality; improving on
/// Λ* is even better and accepted); Φ gets the χ budget.
pub fn feasible(normal: &LexCost, lambda_star: f64, phi_star: f64, chi: f64) -> bool {
    normal.lambda <= lambda_star + dtr_cost::LAMBDA_EPS && normal.phi <= (1.0 + chi) * phi_star
}

/// Run Phase 2 over the scenarios of `indices` drawn from any
/// [`ScenarioSet`]. The set supplies both the scenarios and (for
/// probabilistic ensembles) their weights; uniform sets keep the paper's
/// plain Eq. (4) sum. The canonical single-link call passes the
/// [`crate::FailureUniverse`] itself.
///
/// The failure sweep runs through the set-native sharded
/// [`parallel::evaluate_set`]: no scenario vector is materialized per
/// sweep, every worker reuses a pooled incremental workspace, and the
/// weighted reduction folds in index order — so the trajectory is
/// bit-for-bit identical for every `params.threads`.
pub fn run<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    phase1: &Phase1Output,
) -> Phase2Output {
    params.validate();
    if set.weighted() {
        for &i in indices {
            let p = set.weight(i);
            assert!(
                p >= 0.0 && p.is_finite(),
                "scenario {i} has invalid weight {p}"
            );
        }
    }
    let kfail_of = |w: &WeightSetting, stats: &mut SearchStats| -> LexCost {
        stats.evaluations += indices.len();
        parallel::sum_set_costs(ev, w, set, indices, params.threads)
    };
    run_with(ev, params, phase1, indices.is_empty(), kfail_of)
}

/// Run Phase 2 against an arbitrary scenario slice — e.g. all single node
/// failures for the §V-F comparison routing, or sampled double-link
/// failures. Identical machinery; only the objective's scenario sum
/// differs.
pub fn run_scenarios(
    ev: &Evaluator<'_>,
    scenarios: &[Scenario],
    params: &Params,
    phase1: &Phase1Output,
    scenario_weights: Option<&[f64]>,
) -> Phase2Output {
    params.validate();
    if let Some(sw) = scenario_weights {
        assert_eq!(
            sw.len(),
            scenarios.len(),
            "one weight per critical scenario"
        );
        assert!(sw.iter().all(|&p| p >= 0.0 && p.is_finite()));
    }
    let kfail_of = |w: &WeightSetting, stats: &mut SearchStats| -> LexCost {
        let costs = parallel::failure_costs(ev, w, scenarios, params.threads);
        stats.evaluations += costs.len();
        match scenario_weights {
            None => costs.iter().fold(LexCost::ZERO, |a, c| a.add(c)),
            Some(sw) => costs.iter().zip(sw).fold(LexCost::ZERO, |a, (c, &p)| {
                a.add(&LexCost::new(c.lambda * p, c.phi * p))
            }),
        }
    };
    run_with(ev, params, phase1, scenarios.is_empty(), kfail_of)
}

/// The shared Phase-2 search loop: everything but the compound-cost
/// sweep, which the public entry points supply as `kfail_of` (set-native
/// sharded for [`run`], slice-based for [`run_scenarios`] — identical
/// float behaviour either way).
fn run_with(
    ev: &Evaluator<'_>,
    params: &Params,
    phase1: &Phase1Output,
    no_scenarios: bool,
    kfail_of: impl Fn(&WeightSetting, &mut SearchStats) -> LexCost,
) -> Phase2Output {
    let net = ev.net();
    let lambda_star = phase1.best_cost.lambda;
    let phi_star = phase1.best_cost.phi;
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x2545_f491_4f6c_dd1d);

    let mut stats = SearchStats::default();
    let mut constraint_rejections = 0usize;

    // Start from the best archived setting.
    let (start, start_normal) = phase1
        .archive
        .best()
        .cloned()
        .expect("phase 1 archives at least its best setting");
    let mut current = start;
    let mut current_kfail = kfail_of(&current, &mut stats);

    let mut best = current.clone();
    let mut best_kfail = current_kfail;
    let mut best_normal = start_normal;

    let mut stop = StopRule::new(params.p2, params.c);
    let mut reps: Vec<_> = net.duplex_representatives();
    let mut stale_sweeps = 0usize;

    // Degenerate but legal: nothing to optimize against.
    if no_scenarios {
        return Phase2Output {
            best,
            best_kfail,
            best_normal,
            constraint_rejections,
            stats,
        };
    }

    while stats.iterations < params.max_iterations {
        stats.iterations += 1;
        reps.shuffle(&mut rng);
        let mut improved = false;

        for &rep in &reps {
            let (old_wd, old_wt) = duplex_weights(&current, rep);
            let (new_wd, new_wt) = random_weight_pair(params.wmax, &mut rng);
            if (new_wd, new_wt) == (old_wd, old_wt) {
                continue;
            }
            set_duplex_weights(&mut current, net, rep, new_wd, new_wt);
            let normal = ev.cost(&current, Scenario::Normal);
            stats.evaluations += 1;
            if !feasible(&normal, lambda_star, phi_star, params.chi) {
                constraint_rejections += 1;
                set_duplex_weights(&mut current, net, rep, old_wd, old_wt);
                continue;
            }
            let kfail = kfail_of(&current, &mut stats);
            if kfail.better_than(&current_kfail) {
                current_kfail = kfail;
                improved = true;
                if kfail.better_than(&best_kfail) {
                    best = current.clone();
                    best_kfail = kfail;
                    best_normal = normal;
                }
            } else {
                set_duplex_weights(&mut current, net, rep, old_wd, old_wt);
            }
        }

        stale_sweeps = if improved { 0 } else { stale_sweeps + 1 };
        if stale_sweeps >= params.div_interval_2 {
            stats.diversifications += 1;
            stale_sweeps = 0;
            if stop.record(best_kfail) {
                break;
            }
            // Restart from a random archived setting. An archive entry may
            // violate Eq. 5 slightly (accepted under the z·B1 slack); it
            // still serves as a diversification point — only *accepted
            // moves* must be feasible, and the best tracker only advances
            // on feasible candidates.
            let (w, _normal) = phase1
                .archive
                .sample(&mut rng)
                .cloned()
                .expect("archive is non-empty");
            current = w;
            current_kfail = kfail_of(&current, &mut stats);
        }
    }

    Phase2Output {
        best,
        best_kfail,
        best_normal,
        constraint_rejections,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;
    use crate::universe::FailureUniverse;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::{gravity, ClassMatrices};

    fn testbed() -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64, (i * i % 3) as f64)))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        b.add_duplex_link(n[1], n[4], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2.5e6,
            ..gravity::GravityConfig::paper_default(6, 9)
        });
        (net, tm)
    }

    fn setup() -> (Network, ClassMatrices) {
        testbed()
    }

    #[test]
    fn robust_solution_is_feasible_and_not_worse_than_start() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(21);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let p2 = run(&ev, &universe, &all, &params, &p1);

        // Feasibility (Eqs. 5-6).
        assert!(feasible(
            &p2.best_normal,
            p1.best_cost.lambda,
            p1.best_cost.phi,
            params.chi
        ));
        // Kfail of the result must not exceed Kfail of the Phase-1 best.
        let scenarios = universe.scenarios();
        let k_start = parallel::sum_failure_costs(&ev, &p1.best, &scenarios, 1);
        assert!(
            !k_start.better_than(&p2.best_kfail),
            "phase 2 regressed: start {k_start} vs robust {}",
            p2.best_kfail
        );
        // Reported kfail must be truthful.
        let recheck = parallel::sum_failure_costs(&ev, &p2.best, &scenarios, 1);
        assert_eq!(recheck, p2.best_kfail);
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(33);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let a = run(&ev, &universe, &all, &params, &p1);
        let b = run(&ev, &universe, &all, &params, &p1);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_kfail, b.best_kfail);
    }

    #[test]
    fn critical_subset_costs_fewer_evaluations() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let few = vec![0usize];
        let full = run(&ev, &universe, &all, &params, &p1);
        let crit = run(&ev, &universe, &few, &params, &p1);
        assert!(
            crit.stats.evaluations < full.stats.evaluations,
            "critical {} vs full {}",
            crit.stats.evaluations,
            full.stats.evaluations
        );
    }

    #[test]
    fn empty_critical_set_returns_start() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let p1 = phase1::run(&ev, &universe, &params);
        let out = run(&ev, &universe, &[], &params, &p1);
        assert_eq!(out.best_kfail, LexCost::ZERO);
        assert_eq!(&out.best, &p1.archive.best().unwrap().0);
    }

    #[test]
    fn weighted_scenarios_change_the_objective() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(8);
        let p1 = phase1::run(&ev, &universe, &params);
        let idx: Vec<usize> = (0..universe.len()).collect();
        let uniform = run(&ev, &universe, &idx, &params, &p1);
        let scenarios = universe.scenarios_for(&idx);
        let weights = vec![0.5; idx.len()];
        let halved = run_scenarios(&ev, &scenarios, &params, &p1, Some(&weights));
        // Halving all weights halves the reported objective for the same
        // trajectory (acceptance decisions are scale-invariant).
        assert!((halved.best_kfail.lambda - 0.5 * uniform.best_kfail.lambda).abs() < 1e-6);
        assert!((halved.best_kfail.phi - 0.5 * uniform.best_kfail.phi).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one weight per critical scenario")]
    fn mismatched_weights_panic() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(8);
        let p1 = phase1::run(&ev, &universe, &params);
        let scenarios = universe.scenarios();
        let _ = run_scenarios(&ev, &scenarios, &params, &p1, Some(&[1.0]));
    }
}
