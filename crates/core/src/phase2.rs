//! Phase 2 — robust optimization over the critical set (Eqs. 4–7),
//! restructured as a speculative, cutoff-aware batched kernel.
//!
//! Minimizes the compound failure cost
//! `K̄fail = ⟨Σ_{l∈Ec} Λfail,l, Σ_{l∈Ec} Φfail,l⟩` subject to the
//! normal-conditions constraints: `Λnormal` may not degrade at all (Eq. 5 —
//! delay-sensitive applications fall off a cliff past the SLA), and
//! `Φnormal` may degrade by at most `(1+χ)` (Eq. 6 — elastic traffic
//! tolerates some slack in exchange for robustness).
//!
//! The search starts from, and diversifies back to, the Phase-1 archive of
//! acceptable settings ("each diversification round starts with a weight
//! setting close to one that already satisfies the constraints", §V-A3).
//!
//! # The batched + cutoff kernel
//!
//! The hill climber itself — not the per-evaluation engine — is the hot
//! loop at paper scale, so both of its costs are restructured around the
//! facts that the RNG move stream is deterministic and that `K̄fail` is a
//! non-negative weighted sum:
//!
//! * **Speculative batched moves** — the next `K` candidate moves of a
//!   sweep are pre-drawn and their normal-conditions costs evaluated
//!   concurrently on pooled workspaces
//!   ([`crate::search::speculative_sweep`]); acceptance is replayed
//!   serially in draw order and speculation past the first accepted move
//!   is discarded. Most moves die at the Eq. 5–6 constraint gate, so the
//!   speculated costs are almost never wasted.
//! * **Monotone early-cutoff sweeps** — a candidate that survives the
//!   gate pays the `|Ec|`-scenario failure sweep through
//!   [`parallel::sum_set_costs_bounded`], which abandons the sweep as
//!   soon as the partial fold *proves* the candidate cannot beat the
//!   incumbent `K̄fail` (scenarios are evaluated
//!   costliest-under-the-incumbent first to make that proof fire early).
//!   Skipped evaluations land in
//!   [`SearchStats::scenario_evals_skipped`].
//!
//! Both mechanisms are float-exact: accepted moves always complete their
//! sweep (whose index-order reduction is bit-for-bit the plain
//! [`parallel::sum_set_costs`] fold), and the cutoff only fires on moves
//! the full sweep would reject. The best setting, its costs, and the
//! full accept/reject sequence are therefore identical for every
//! speculation window, thread count, and cutoff setting — pinned by
//! `tests/search_equivalence.rs`.
//!
//! Both evaluation kinds ride the incremental engine in
//! `dtr_cost::engine`: a neighbor move changes one duplex link's weights,
//! so the normal-conditions check re-routes only the destinations whose
//! distance field that change can provably touch, and the failure sweep
//! runs through the **delta-state scenario cache** — per scenario, only
//! destinations whose effective routing the candidate diff really moves
//! are repaired from the resident incumbent state, only
//! contributor-changed links are refolded, and only delay-touched
//! destinations re-run the SLA DP — for **every** scenario kind the set
//! holds (link, node, SRLG, double-link, probabilistically weighted).

use dtr_cost::{Evaluator, LexCost};
use dtr_routing::{Scenario, WeightSetting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::parallel::{self, SetSweep, SweepScratch};
use crate::params::Params;
use crate::phase1::Phase1Output;
use crate::scenario::{ScenarioSet, SliceSet};
use crate::search::{
    duplex_weights, random_weight_pair, set_duplex_weights, speculative_sweep, Decision,
    MoveOutcome, SearchStats, SpecBuffers, StopRule,
};

/// Result of the robust search.
#[derive(Clone, Debug)]
pub struct Phase2Output {
    /// The robust weight setting `W`.
    pub best: WeightSetting,
    /// Its compound failure cost over the critical set.
    pub best_kfail: LexCost,
    /// Its normal-conditions cost (satisfies Eqs. 5–6 w.r.t. Phase 1).
    pub best_normal: LexCost,
    /// Moves rejected by the normal-conditions constraints (cheap
    /// rejections — they skip the failure sweep).
    pub constraint_rejections: usize,
    /// Per-proposal accept/reject sequence (empty unless
    /// `params.record_trace`).
    pub trace: Vec<MoveOutcome>,
    pub stats: SearchStats,
}

/// Eq. (5)–(6) feasibility of a candidate's normal-conditions cost against
/// the Phase-1 benchmarks. Λ must not degrade (ε-equality; improving on
/// Λ* is even better and accepted); Φ gets the χ budget.
pub fn feasible(normal: &LexCost, lambda_star: f64, phi_star: f64, chi: f64) -> bool {
    normal.lambda <= lambda_star + dtr_cost::LAMBDA_EPS && normal.phi <= (1.0 + chi) * phi_star
}

/// Evaluation-order state of the cutoff sweeps: positions into the
/// `indices` slice, costliest-under-the-incumbent first, the shared
/// per-position cost scratch, the per-position Λ/Φ floors that stand in
/// for scenarios a bounded sweep has not reached yet, and the
/// delta-state scenario cache.
struct SweepState {
    order: Vec<u32>,
    scratch: SweepScratch,
    floors: Vec<dtr_cost::ScenarioFloor>,
    cache: dtr_cost::ScenarioCache,
}

impl SweepState {
    /// Build the sweep state; the floors (one SPF per demand
    /// destination per scenario, see [`Evaluator::lambda_floor`] and
    /// [`Evaluator::phi_floor`]) are only computed when the cutoff will
    /// actually read them — their one-off cost is on the order of a
    /// single failure sweep. Floors depend only on (topology, traffic,
    /// mask, cost parameters) — never on the weights under search — so
    /// this single computation stays valid for the whole run.
    fn new<S: ScenarioSet + ?Sized>(
        ev: &Evaluator<'_>,
        set: &S,
        indices: &[usize],
        params: &Params,
    ) -> Self {
        let floors = if params.cutoff {
            let mut ws = ev.acquire_workspace();
            let floors = indices
                .iter()
                .map(|&i| {
                    let sc = set.scenario(i);
                    if params.phi_floors {
                        ev.scenario_floor(&mut ws, sc)
                    } else {
                        dtr_cost::ScenarioFloor {
                            lambda: ev.lambda_floor(sc),
                            phi: 0.0,
                        }
                    }
                })
                .collect();
            ev.release_workspace(ws);
            floors
        } else {
            Vec::new()
        };
        SweepState {
            order: (0..indices.len() as u32).collect(),
            scratch: SweepScratch::new(),
            floors,
            cache: dtr_cost::ScenarioCache::with_budget(params.cache_budget_bytes),
        }
    }

    /// Re-sort the evaluation order by the incumbent's per-scenario
    /// **excess over the Λ floor** (excess over the Φ floor as
    /// tie-break), descending, ties by position — so the order, and
    /// therefore the deterministic skip accounting, is fully pinned. The
    /// floors already stand in for unevaluated scenarios, so what
    /// advances a bounded sweep's partial fold toward the incumbent is
    /// exactly each evaluated scenario's excess; front-loading the
    /// scenarios where the incumbent's excess is largest makes a losing
    /// candidate's proof fire as early as possible.
    fn refresh<S: ScenarioSet + ?Sized>(&mut self, set: &S, indices: &[usize]) {
        let costs = &self.scratch.costs;
        let floors = &self.floors;
        let weighted = set.weighted();
        let key = |pos: u32| -> (f64, f64) {
            let c = &costs[pos as usize];
            let fl = &floors[pos as usize];
            let excess = c.lambda - fl.lambda;
            let excess_phi = c.phi - fl.phi;
            if weighted {
                let p = set.weight(indices[pos as usize]);
                (excess * p, excess_phi * p)
            } else {
                (excess, excess_phi)
            }
        };
        self.order.sort_by(|&a, &b| {
            let (la, pa) = key(a);
            let (lb, pb) = key(b);
            lb.total_cmp(&la).then(pb.total_cmp(&pa)).then(a.cmp(&b))
        });
    }
}

/// Full compound sweep (init, diversification restarts, cache rebuilds,
/// and the cutoff-off path): bit-for-bit [`parallel::sum_set_costs`].
/// With the cutoff enabled it runs serially through
/// [`Evaluator::cost_capture`], rebuilding the delta-state scenario cache
/// on `w` and refreshing the per-position costs and evaluation order as
/// it goes (the index-order weighted fold is exactly the seed's
/// float-add sequence).
fn full_sweep<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    w: &WeightSetting,
    stats: &mut SearchStats,
    st: &mut SweepState,
) -> LexCost {
    stats.evaluations += indices.len();
    if params.cutoff {
        rebuild_cache(ev, set, indices, w, params.threads, st);
        let resident = st.cache.resident_scenarios();
        stats.cache_resident_scenarios = stats.cache_resident_scenarios.max(resident);
        stats.cache_fallback_evals += indices.len() - resident;
        let weighted = set.weighted();
        let mut acc = LexCost::ZERO;
        for (pos, &i) in indices.iter().enumerate() {
            let c = &st.scratch.costs[pos];
            acc = if weighted {
                let p = set.weight(i);
                acc.add(&LexCost::new(c.lambda * p, c.phi * p))
            } else {
                acc.add(c)
            };
        }
        st.refresh(set, indices);
        acc
    } else {
        parallel::sum_set_costs(ev, w, set, indices, params.threads)
    }
}

/// Capture sweep over `w`: rebuilds the delta-state scenario cache (the
/// incumbent baseline plus every scenario's resident folded state) and
/// refreshes the per-position cost scratch, sharding across `threads`
/// workers (cache entries and cost slots are position-disjoint, so each
/// worker owns a contiguous chunk of both; the captured baseline is
/// shared read-only).
///
/// Budget-bounded caches first capture position 0 serially as a
/// calibration probe, plan the resident prefix from its measured
/// footprint ([`dtr_cost::ScenarioCache::plan_residency`]), then capture
/// only positions inside that prefix; the non-resident tail is evaluated
/// on the plain repair-seeded path, which returns the same bits (pinned
/// by `tests/scenario_engine_equivalence.rs`). A budget below one entry
/// keeps the calibration probe allocated but marks nothing resident —
/// at most one entry of slack over the configured budget.
fn rebuild_cache<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    w: &WeightSetting,
    threads: usize,
    st: &mut SweepState,
) {
    let mut ws = ev.acquire_workspace();
    ev.cache_rebuild_begin(&mut ws, &mut st.cache, w, indices.len());
    st.scratch.costs.clear();
    st.scratch.costs.resize(indices.len(), LexCost::ZERO);
    let mut captured = 0usize;
    if st.cache.budget_bytes() != usize::MAX && !indices.is_empty() {
        let (base, entries) = st.cache.capture_split();
        st.scratch.costs[0] =
            ev.cost_capture_into(&mut ws, w, set.scenario(indices[0]), base, &mut entries[0]);
        captured = 1;
    }
    st.cache.plan_residency(indices.len());
    // Positions still to capture sit in `captured..cap_hi`; everything
    // past the resident prefix takes the plain path into the same cost
    // slots (position 0 is already exact even when non-resident — the
    // capture eval and the plain eval are bit-identical).
    let cap_hi = st.cache.resident_scenarios().max(captured);
    let workers = threads.min(indices.len().max(1));
    if workers <= 1 {
        let (base, entries) = st.cache.capture_split();
        for pos in captured..cap_hi {
            st.scratch.costs[pos] = ev.cost_capture_into(
                &mut ws,
                w,
                set.scenario(indices[pos]),
                base,
                &mut entries[pos],
            );
        }
        for (c, &i) in st.scratch.costs[cap_hi..]
            .iter_mut()
            .zip(&indices[cap_hi..])
        {
            *c = ev.cost_with(&mut ws, w, set.scenario(i));
        }
        ev.release_workspace(ws);
        return;
    }
    ev.release_workspace(ws);
    {
        let (base, entries) = st.cache.capture_split();
        let idx = &indices[captured..cap_hi];
        let ents = &mut entries[captured..cap_hi];
        let csts = &mut st.scratch.costs[captured..cap_hi];
        if !idx.is_empty() {
            let chunk = idx.len().div_ceil(workers);
            let parts: Vec<_> = idx
                .chunks(chunk)
                .zip(ents.chunks_mut(chunk))
                .zip(csts.chunks_mut(chunk))
                .collect();
            parallel::scoped_fanout(parts, |((idx, ents), cst)| {
                let mut ws = ev.acquire_workspace();
                for ((&i, entry), c) in idx.iter().zip(ents).zip(cst) {
                    *c = ev.cost_capture_into(&mut ws, w, set.scenario(i), base, entry);
                }
                ev.release_workspace(ws);
            });
        }
    }
    let tail = &indices[cap_hi..];
    if !tail.is_empty() {
        let csts = &mut st.scratch.costs[cap_hi..];
        let chunk = tail.len().div_ceil(workers);
        let parts: Vec<_> = tail.chunks(chunk).zip(csts.chunks_mut(chunk)).collect();
        parallel::scoped_fanout(parts, |(idx, cst)| {
            let mut ws = ev.acquire_workspace();
            for (&i, c) in idx.iter().zip(cst) {
                *c = ev.cost_with(&mut ws, w, set.scenario(i));
            }
            ev.release_workspace(ws);
        });
    }
}

/// Run Phase 2 over the scenarios of `indices` drawn from any
/// [`ScenarioSet`]. The set supplies both the scenarios and (for
/// probabilistic ensembles) their weights; uniform sets keep the paper's
/// plain Eq. (4) sum. The canonical single-link call passes the
/// [`crate::FailureUniverse`] itself; arbitrary scenario slices ride the
/// same path through [`SliceSet`] (see [`run_scenarios`]).
///
/// All failure sweeps run through the set-native sharded kernels in
/// [`parallel`]: no scenario vector is materialized per sweep, every
/// worker reuses a pooled incremental workspace, and the weighted
/// reduction folds in index order — so the trajectory is bit-for-bit
/// identical for every `params.threads`, `params.speculation`, and
/// `params.cutoff` (see the module docs).
pub fn run<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    indices: &[usize],
    params: &Params,
    phase1: &Phase1Output,
) -> Phase2Output {
    params.validate();
    if set.weighted() {
        for &i in indices {
            let p = set.weight(i);
            assert!(
                p >= 0.0 && p.is_finite(),
                "scenario {i} has invalid weight {p}"
            );
        }
    }
    let net = ev.net();
    let lambda_star = phase1.best_cost.lambda;
    let phi_star = phase1.best_cost.phi;
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x2545_f491_4f6c_dd1d);

    let mut stats = SearchStats::default();
    let mut constraint_rejections = 0usize;
    let mut trace: Vec<MoveOutcome> = Vec::new();
    let mut st = SweepState::new(ev, set, indices, params);

    // Start from the best archived setting.
    let (start, start_normal) = phase1
        .archive
        .best()
        .cloned()
        .expect("phase 1 archives at least its best setting");
    let mut current = start;
    let mut current_kfail = full_sweep(ev, set, indices, params, &current, &mut stats, &mut st);

    let mut best = current.clone();
    let mut best_kfail = current_kfail;
    let mut best_normal = start_normal;

    let mut stop = StopRule::new(params.p2, params.c);
    let mut reps: Vec<_> = net.duplex_representatives();
    let mut stale_sweeps = 0usize;
    let mut spec = SpecBuffers::new();

    // Degenerate but legal: nothing to optimize against.
    if indices.is_empty() {
        return Phase2Output {
            best,
            best_kfail,
            best_normal,
            constraint_rejections,
            trace,
            stats,
        };
    }

    while stats.iterations < params.max_iterations {
        stats.iterations += 1;
        reps.shuffle(&mut rng);
        let mut improved = false;
        let mut wasted = 0usize;

        speculative_sweep(
            &reps,
            &mut rng,
            params.speculation,
            params.threads,
            &mut current,
            &mut spec,
            &mut wasted,
            |rng| random_weight_pair(params.wmax, rng),
            duplex_weights,
            |w: &mut WeightSetting, rep, &(wd, wt): &(u32, u32)| {
                set_duplex_weights(w, net, rep, wd, wt)
            },
            |w| ev.cost(w, Scenario::Normal),
            |cand_w, _rep, normal: &LexCost| {
                stats.evaluations += 1;
                if !feasible(normal, lambda_star, phi_star, params.chi) {
                    constraint_rejections += 1;
                    if params.record_trace {
                        trace.push(MoveOutcome::ConstraintReject);
                    }
                    return Decision::Reject;
                }
                stats.evaluations += indices.len();
                let outcome = if params.cutoff {
                    ev.cache_begin(&mut st.cache, cand_w);
                    parallel::sum_set_costs_bounded(
                        ev,
                        cand_w,
                        set,
                        indices,
                        params.threads,
                        &current_kfail,
                        &st.order,
                        Some(&st.floors),
                        Some(&st.cache),
                        &mut st.scratch,
                    )
                } else {
                    SetSweep::Complete(parallel::sum_set_costs(
                        ev,
                        cand_w,
                        set,
                        indices,
                        params.threads,
                    ))
                };
                if params.cutoff {
                    // Attribute plain-path (non-resident) evaluations of
                    // this bounded sweep. The canonical evaluation set is
                    // the `evaluated`-long prefix of the deterministic
                    // order, so the counter is thread-invariant.
                    let resident = st.cache.resident_scenarios();
                    stats.cache_fallback_evals += match &outcome {
                        SetSweep::Complete(_) => indices.len() - resident,
                        SetSweep::Cut { evaluated, .. } => st.order[..*evaluated]
                            .iter()
                            .filter(|&&p| p as usize >= resident)
                            .count(),
                    };
                }
                match outcome {
                    SetSweep::Complete(kfail) if kfail.better_than(&current_kfail) => {
                        current_kfail = kfail;
                        if params.cutoff {
                            // Re-point the cache at the new incumbent so
                            // the next candidate's diff is again a single
                            // duplex move. The delta-state refresh keeps
                            // affected-set coverage *exact*, so no
                            // periodic full rebuild is needed.
                            let mut ws = ev.acquire_workspace();
                            ev.cache_refresh(&mut ws, &mut st.cache, cand_w, |pos| {
                                set.scenario(indices[pos])
                            });
                            ev.release_workspace(ws);
                            st.refresh(set, indices);
                        }
                        improved = true;
                        if kfail.better_than(&best_kfail) {
                            best.clone_from(cand_w);
                            best_kfail = kfail;
                            best_normal = *normal;
                        }
                        if params.record_trace {
                            trace.push(MoveOutcome::Accept);
                        }
                        Decision::Accept
                    }
                    SetSweep::Complete(_) => {
                        if params.record_trace {
                            trace.push(MoveOutcome::Reject);
                        }
                        Decision::Reject
                    }
                    SetSweep::Cut {
                        evaluated,
                        floor_cut,
                    } => {
                        let skips = indices.len() - evaluated;
                        stats.scenario_evals_skipped += skips;
                        if floor_cut {
                            stats.skipped_floor += skips;
                        } else {
                            // Phase 2's bounded sweeps always run through
                            // the delta-state cache when the cutoff is on.
                            stats.skipped_cache += skips;
                        }
                        if params.record_trace {
                            trace.push(MoveOutcome::Reject);
                        }
                        Decision::Reject
                    }
                }
            },
        );
        stats.speculative_wasted += wasted;

        stale_sweeps = if improved { 0 } else { stale_sweeps + 1 };
        if stale_sweeps >= params.div_interval_2 {
            stats.diversifications += 1;
            stale_sweeps = 0;
            if stop.record(best_kfail) {
                break;
            }
            // Restart from a random archived setting. An archive entry may
            // violate Eq. 5 slightly (accepted under the z·B1 slack); it
            // still serves as a diversification point — only *accepted
            // moves* must be feasible, and the best tracker only advances
            // on feasible candidates.
            let (w, _normal) = phase1
                .archive
                .sample(&mut rng)
                .cloned()
                .expect("archive is non-empty");
            current = w;
            current_kfail = full_sweep(ev, set, indices, params, &current, &mut stats, &mut st);
        }
    }

    Phase2Output {
        best,
        best_kfail,
        best_normal,
        constraint_rejections,
        trace,
        stats,
    }
}

/// Run Phase 2 against an arbitrary scenario slice — e.g. all single node
/// failures for the §V-F comparison routing, or sampled double-link
/// failures. The slice rides the set-native path through a [`SliceSet`]
/// adapter, so it gets the same sharded, speculative, cutoff-aware
/// kernel as [`run`] — and the same float behaviour as the historical
/// slice-specific sweep (weights, when given, multiply each scenario's
/// cost before the index-order fold).
pub fn run_scenarios(
    ev: &Evaluator<'_>,
    scenarios: &[Scenario],
    params: &Params,
    phase1: &Phase1Output,
    scenario_weights: Option<&[f64]>,
) -> Phase2Output {
    let set = SliceSet::new(scenarios, scenario_weights);
    let indices: Vec<usize> = (0..scenarios.len()).collect();
    run(ev, &set, &indices, params, phase1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;
    use crate::universe::FailureUniverse;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::{gravity, ClassMatrices};

    fn testbed() -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64, (i * i % 3) as f64)))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        b.add_duplex_link(n[1], n[4], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2.5e6,
            ..gravity::GravityConfig::paper_default(6, 9)
        });
        (net, tm)
    }

    fn setup() -> (Network, ClassMatrices) {
        testbed()
    }

    #[test]
    fn robust_solution_is_feasible_and_not_worse_than_start() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(21);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let p2 = run(&ev, &universe, &all, &params, &p1);

        // Feasibility (Eqs. 5-6).
        assert!(feasible(
            &p2.best_normal,
            p1.best_cost.lambda,
            p1.best_cost.phi,
            params.chi
        ));
        // Kfail of the result must not exceed Kfail of the Phase-1 best.
        let scenarios = universe.scenarios();
        let k_start = parallel::sum_failure_costs(&ev, &p1.best, &scenarios, 1);
        assert!(
            !k_start.better_than(&p2.best_kfail),
            "phase 2 regressed: start {k_start} vs robust {}",
            p2.best_kfail
        );
        // Reported kfail must be truthful.
        let recheck = parallel::sum_failure_costs(&ev, &p2.best, &scenarios, 1);
        assert_eq!(recheck, p2.best_kfail);
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(33);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let a = run(&ev, &universe, &all, &params, &p1);
        let b = run(&ev, &universe, &all, &params, &p1);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_kfail, b.best_kfail);
    }

    #[test]
    fn budget_bounded_cache_matches_unbounded_bit_for_bit() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params {
            record_trace: true,
            ..Params::quick(21)
        };
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let unbounded = run(&ev, &universe, &all, &params, &p1);
        assert_eq!(unbounded.stats.cache_resident_scenarios, all.len());
        assert_eq!(unbounded.stats.cache_fallback_evals, 0);
        // From "below one entry" through "a partial prefix" to "holds
        // everything": the trajectory never moves.
        for budget in [0usize, 4_096, 1 << 22] {
            let bounded = run(
                &ev,
                &universe,
                &all,
                &Params {
                    cache_budget_bytes: budget,
                    ..params
                },
                &p1,
            );
            assert_eq!(bounded.best, unbounded.best, "budget {budget}");
            assert_eq!(bounded.best_kfail, unbounded.best_kfail, "budget {budget}");
            assert_eq!(
                bounded.best_normal, unbounded.best_normal,
                "budget {budget}"
            );
            assert_eq!(bounded.trace, unbounded.trace, "budget {budget}");
            assert_eq!(
                bounded.constraint_rejections, unbounded.constraint_rejections,
                "budget {budget}"
            );
            // Every stat except the two residency counters matches.
            let mut masked = bounded.stats;
            masked.cache_resident_scenarios = unbounded.stats.cache_resident_scenarios;
            masked.cache_fallback_evals = unbounded.stats.cache_fallback_evals;
            assert_eq!(masked, unbounded.stats, "budget {budget}");
            assert!(
                bounded.stats.cache_resident_scenarios <= all.len(),
                "budget {budget}"
            );
        }
        // A budget below one entry degrades the cache entirely — and the
        // fallback accounting must show it.
        let tiny = run(
            &ev,
            &universe,
            &all,
            &Params {
                cache_budget_bytes: 1,
                ..params
            },
            &p1,
        );
        assert_eq!(tiny.stats.cache_resident_scenarios, 0);
        assert!(tiny.stats.cache_fallback_evals > 0);
    }

    #[test]
    fn critical_subset_costs_fewer_evaluations() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let p1 = phase1::run(&ev, &universe, &params);
        let all: Vec<usize> = (0..universe.len()).collect();
        let few = vec![0usize];
        let full = run(&ev, &universe, &all, &params, &p1);
        let crit = run(&ev, &universe, &few, &params, &p1);
        assert!(
            crit.stats.evaluations < full.stats.evaluations,
            "critical {} vs full {}",
            crit.stats.evaluations,
            full.stats.evaluations
        );
    }

    #[test]
    fn empty_critical_set_returns_start() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let p1 = phase1::run(&ev, &universe, &params);
        let out = run(&ev, &universe, &[], &params, &p1);
        assert_eq!(out.best_kfail, LexCost::ZERO);
        assert_eq!(&out.best, &p1.archive.best().unwrap().0);
    }

    #[test]
    fn weighted_scenarios_change_the_objective() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(8);
        let p1 = phase1::run(&ev, &universe, &params);
        let idx: Vec<usize> = (0..universe.len()).collect();
        let uniform = run(&ev, &universe, &idx, &params, &p1);
        let scenarios = universe.scenarios_for(&idx);
        let weights = vec![0.5; idx.len()];
        let halved = run_scenarios(&ev, &scenarios, &params, &p1, Some(&weights));
        // Halving all weights halves the reported objective for the same
        // trajectory (acceptance decisions are scale-invariant).
        assert!((halved.best_kfail.lambda - 0.5 * uniform.best_kfail.lambda).abs() < 1e-6);
        assert!((halved.best_kfail.phi - 0.5 * uniform.best_kfail.phi).abs() < 1e-6);
    }

    #[test]
    fn cutoff_skips_scenario_evaluations_without_changing_the_result() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params_on = Params::quick(21);
        let params_off = Params {
            cutoff: false,
            ..params_on
        };
        let p1 = phase1::run(&ev, &universe, &params_on);
        let all: Vec<usize> = (0..universe.len()).collect();
        let on = run(&ev, &universe, &all, &params_on, &p1);
        let off = run(&ev, &universe, &all, &params_off, &p1);
        assert_eq!(on.best, off.best);
        assert_eq!(on.best_kfail, off.best_kfail);
        assert_eq!(on.best_normal, off.best_normal);
        assert_eq!(on.constraint_rejections, off.constraint_rejections);
        assert_eq!(on.stats.evaluations, off.stats.evaluations);
        assert_eq!(off.stats.scenario_evals_skipped, 0);
        assert!(
            on.stats.scenario_evals_skipped > 0,
            "cutoff never fired on a quick run with sweep rejections"
        );
        // Per-cause attribution partitions the legacy counter exactly.
        assert_eq!(
            on.stats.scenario_evals_skipped,
            on.stats.skipped_floor + on.stats.skipped_cache + on.stats.skipped_cutoff
        );
        // Disabling the Φ floors must not change the trajectory either —
        // floors only hasten provable rejections.
        let params_no_phi = Params {
            phi_floors: false,
            ..params_on
        };
        let no_phi = run(&ev, &universe, &all, &params_no_phi, &p1);
        assert_eq!(no_phi.best, on.best);
        assert_eq!(no_phi.best_kfail, on.best_kfail);
        assert_eq!(no_phi.stats.evaluations, on.stats.evaluations);
    }

    #[test]
    #[should_panic(expected = "one weight per critical scenario")]
    fn mismatched_weights_panic() {
        let (net, tm) = setup();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(8);
        let p1 = phase1::run(&ev, &universe, &params);
        let scenarios = universe.scenarios();
        let _ = run_scenarios(&ev, &scenarios, &params, &p1, Some(&[1.0]));
    }
}
