//! # dtr-core — robust DTR optimization (the paper's contribution)
//!
//! Implements §IV of *"Balancing Performance, Robustness and Flexibility in
//! Routing Systems"*: a two-phase local-search heuristic that finds one DTR
//! weight setting performing well under normal conditions **and** under an
//! ensemble of failure scenarios, made tractable by a principled
//! critical-link methodology.
//!
//! ## Architecture: one optimizer, many failure models
//!
//! The public surface is the builder-driven pipeline over the
//! [`scenario::ScenarioSet`] trait:
//!
//! ```ignore
//! use dtr_core::{Params, RobustOptimizer};
//! use dtr_core::scenario::{DoubleLink, Probabilistic, SingleLink, Srlg};
//!
//! // The paper's single-link pipeline (default scenario set):
//! let report = RobustOptimizer::builder(&ev).params(params).build().optimize();
//!
//! // Every other failure model rides the same machinery:
//! RobustOptimizer::builder(&ev).scenarios(SingleLink::of(&net))                  // explicit default
//!     .params(params).build().optimize();
//! RobustOptimizer::builder(&ev).scenarios(Srlg::geographic(&net, 0.08))          // conduit cuts
//!     .params(params).build().optimize();
//! RobustOptimizer::builder(&ev).scenarios(Probabilistic::length_proportional(&net))
//!     .params(params).build().optimize();                                        // expected cost
//! RobustOptimizer::builder(&ev).scenarios(DoubleLink::all(&net))                 // pair failures
//!     .params(params).build().optimize();
//! ```
//!
//! A [`scenario::ScenarioSet`] enumerates weighted failure
//! [`Scenario`](dtr_routing::Scenario)s with stable indices, pre-filters
//! non-survivable scenarios at construction, and declares how the Phase-1
//! criticality signal applies to it. [`FailureUniverse`] is the canonical
//! single-link implementation; custom models (regional outages,
//! maintenance windows, k-link cascades) implement the same trait and
//! ride the same optimizer — there is exactly one Phase-2 loop in the
//! workspace ([`phase2::run_scenarios`]).
//!
//! ## Pipeline (Fig. 1 of the paper)
//!
//! 1. **Phase 1a** ([`phase1`]) — local search minimizing the normal-
//!    conditions cost `Knormal` (Eq. 3). Along the way, weight
//!    perturbations that *emulate failures* (both class weights of a link
//!    pushed into `[q·wmax, wmax]`) are harvested as samples of the
//!    conditional failure-cost distribution of that link ([`samples`]).
//! 2. **Phase 1b** ([`phase1b`]) — if the criticality *ranking* has not
//!    converged (rank-change index `S ≤ e`, [`ranking`]), generate more
//!    failure-emulating samples until it has.
//! 3. **Phase 1c** ([`selection`]) — link criticality `ρ = mean −
//!    left-tail-mean` of each link's distribution ([`criticality`]),
//!    normalized per class, merged into one critical set by Algorithm 1,
//!    then mapped to scenario indices by the set
//!    ([`selection::select_for_set`]).
//! 4. **Phase 2** ([`phase2`]) — local search minimizing the compound
//!    (weight-aware) failure cost `K̄fail` over the selected scenarios
//!    only (Eq. 7), constrained to keep normal-conditions performance
//!    (Eqs. 5–6).
//!
//! [`pipeline::RobustOptimizer`] runs the whole thing;
//! [`full_search::full_search`] is the brute-force `Ec = E` baseline;
//! [`baselines`] implements the prior-art critical-link selectors the
//! paper compares against (§IV-C); [`ext`] carries the scenario-set
//! constructors for the extensions sketched in the paper's conclusion.
//!
//! ## Migration from the pre-builder API
//!
//! The scattered per-extension entry points were removed in favor of the
//! builder; every old call has a direct replacement:
//!
//! | removed | replacement |
//! |---|---|
//! | `ext::srlg::optimize_robust_srlg(ev, u, crit, cat, p, p1)` | `RobustOptimizer::builder(&ev).scenarios(Srlg::from_catalog(net, cat)).params(p).build().optimize()` |
//! | `ext::probabilistic::optimize(ev, u, p, p1, model)` | `RobustOptimizer::builder(&ev).scenarios(Probabilistic::with_model(net, model)).params(p).build().optimize()` |
//! | `ext::probabilistic::select_critical(p1, model, u, p, n)` | `selection::select_for_set(&Probabilistic::with_model(net, model), &ev, &p1, &p, Selector::MeanLeftTail)` |
//! | `ext::multi_failure::double_failures(ev, u, cap, seed)` | `DoubleLink::all(&net)` / `DoubleLink::sampled(&net, cap, seed)` + `.scenarios()` |
//! | `phase2::run(ev, u, idx, p, p1, Some(w))` | `phase2::run(ev, &set, idx, p, p1)` — the set carries the weights |
//!
//! Determinism: all randomness flows from [`Params::seed`]; the builder
//! path reproduces the removed entry points bit-for-bit on equal seeds
//! (pinned by `tests/scenario_equivalence.rs` at the workspace root).
//! Parallelism: failure-cost sums fan out over scenarios with scoped
//! threads ([`parallel`]) — [`Params::threads`] `= 1` gives a fully serial,
//! bit-reproducible run (parallel sums are reduced in scenario order, so
//! results are identical across thread counts anyway).

#![forbid(unsafe_code)]

pub mod baselines;
pub mod criticality;
pub mod ext;
pub mod full_search;
pub mod parallel;
pub mod params;
pub mod phase1;
pub mod phase1b;
pub mod phase2;
pub mod pipeline;
pub mod ranking;
pub mod samples;
pub mod scenario;
pub mod search;
pub mod selection;
pub mod str_baseline;
pub mod strategies;
mod universe;

pub use baselines::Selector;
pub use params::{replica_seed, Params, PortfolioParams};
pub use phase2::RunControl;
pub use pipeline::{RobustOptimizer, RobustOptimizerBuilder, RobustReport};
pub use scenario::{DoubleLink, Probabilistic, ScenarioSet, SingleLink, SliceSet, Srlg};
pub use search::Terminated;
pub use universe::FailureUniverse;

// Checkpoint/restore building blocks, re-exported so downstream callers
// need no direct `dtr-persist` dependency.
pub use dtr_persist::{CheckpointSink, FileSink, MemorySink, SnapshotError, TornWrite};
