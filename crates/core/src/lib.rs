//! # dtr-core — robust DTR optimization (the paper's contribution)
//!
//! Implements §IV of *"Balancing Performance, Robustness and Flexibility in
//! Routing Systems"*: a two-phase local-search heuristic that finds one DTR
//! weight setting performing well under normal conditions **and** under
//! every single link failure, made tractable by a principled critical-link
//! methodology.
//!
//! Pipeline (Fig. 1 of the paper):
//!
//! 1. **Phase 1a** ([`phase1`]) — local search minimizing the normal-
//!    conditions cost `Knormal` (Eq. 3). Along the way, weight
//!    perturbations that *emulate failures* (both class weights of a link
//!    pushed into `[q·wmax, wmax]`) are harvested as samples of the
//!    conditional failure-cost distribution of that link ([`samples`]).
//! 2. **Phase 1b** ([`phase1b`]) — if the criticality *ranking* has not
//!    converged (rank-change index `S ≤ e`, [`ranking`]), generate more
//!    failure-emulating samples until it has.
//! 3. **Phase 1c** ([`selection`]) — link criticality `ρ = mean −
//!    left-tail-mean` of each link's distribution ([`criticality`]),
//!    normalized per class, merged into one critical set by Algorithm 1.
//! 4. **Phase 2** ([`phase2`]) — local search minimizing the compound
//!    failure cost `K̄fail` over the critical set only (Eq. 7), constrained
//!    to keep normal-conditions performance (Eqs. 5–6).
//!
//! [`pipeline::RobustOptimizer`] runs the whole thing;
//! [`full_search::full_search`] is the brute-force `Ec = E` baseline;
//! [`baselines`] implements the prior-art critical-link selectors the
//! paper compares against (§IV-C); [`ext`] carries the extensions sketched
//! in the paper's conclusion (probabilistic failure model, multi-failure
//! robustness).
//!
//! Determinism: all randomness flows from [`Params::seed`].
//! Parallelism: failure-cost sums fan out over scenarios with scoped
//! threads ([`parallel`]) — [`Params::threads`] `= 1` gives a fully serial,
//! bit-reproducible run (parallel sums are reduced in scenario order, so
//! results are identical across thread counts anyway).

#![forbid(unsafe_code)]

pub mod baselines;
pub mod criticality;
pub mod ext;
pub mod full_search;
pub mod parallel;
mod params;
pub mod phase1;
pub mod phase1b;
pub mod phase2;
pub mod pipeline;
pub mod ranking;
pub mod samples;
pub mod search;
pub mod selection;
pub mod str_baseline;
pub mod strategies;
mod universe;

pub use params::Params;
pub use pipeline::{RobustOptimizer, RobustReport};
pub use universe::FailureUniverse;
