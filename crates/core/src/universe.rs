//! The failure universe: which physical links can fail, and the mapping
//! between duplex links and the perturbation/criticality bookkeeping.

use std::collections::HashMap;

use dtr_net::{LinkId, Network};
use dtr_routing::Scenario;

/// The set of physical (duplex) links the optimization reasons about.
///
/// * Perturbations operate on *duplex* links: one move re-draws the two
///   class weights of a physical link and applies them to both directions
///   symmetrically (operators configure symmetric IGP metrics, and the
///   paper's failure emulation — both class weights near `wmax` — only
///   corresponds to a physical failure if both directions move together).
/// * Failure scenarios are the *survivable* duplex failures: physical
///   links whose loss keeps the network strongly connected. Cut links are
///   excluded (no routing can mitigate a partition, so they carry no
///   optimization signal).
#[derive(Clone, Debug)]
pub struct FailureUniverse {
    /// One representative directed link id per physical link
    /// (`Network::duplex_representatives`), *all* physical links.
    pub all_duplex: Vec<LinkId>,
    /// Subset of `all_duplex` whose failure is survivable — the unit of
    /// criticality and the failure enumeration set. Index into this vec is
    /// the "failure index" used by samples/criticality/selection.
    pub failable: Vec<LinkId>,
    /// Reverse map from duplex representative to failure index, built once
    /// in [`FailureUniverse::of`] so the hot sample-harvest path does not
    /// pay a linear scan per proposal.
    index: HashMap<LinkId, usize>,
}

impl FailureUniverse {
    /// Analyze `net` once (bridge detection) and build the universe.
    pub fn of(net: &Network) -> Self {
        let all_duplex = net.duplex_representatives();
        let failable = dtr_net::bridges::survivable_duplex_failures(net);
        let index = failable.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        FailureUniverse {
            all_duplex,
            failable,
            index,
        }
    }

    /// A universe with no links at all. Backs scenario sets that are not
    /// derived from a network's duplex links (e.g. the
    /// [`crate::scenario::SliceSet`] adapter over an arbitrary scenario
    /// slice): Phase-1 sampling has nothing to perturb there, and
    /// criticality selection does not apply.
    pub fn empty() -> Self {
        FailureUniverse {
            all_duplex: Vec::new(),
            failable: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of **failable** physical links — the failure-scenario count
    /// (`|E|` in the paper's Phase-2 accounting; its well-connected
    /// topologies have no bridges, so this equals the physical link count
    /// there). Bridges are excluded: use [`FailureUniverse::total_duplex`]
    /// for the full physical link count.
    pub fn len(&self) -> usize {
        self.failable.len()
    }

    /// `true` when nothing can fail survivably (degenerate topologies).
    /// Mirrors [`FailureUniverse::len`]: a bridge-only network is "empty"
    /// even though it has physical links.
    pub fn is_empty(&self) -> bool {
        self.failable.is_empty()
    }

    /// Number of physical (duplex) links, bridges included — the
    /// perturbation set of the Phase-1 search. Prefer this accessor over
    /// reaching into `all_duplex` directly.
    pub fn total_duplex(&self) -> usize {
        self.all_duplex.len()
    }

    /// Failure index of duplex representative `l`, if survivable.
    /// O(1): the map is precomputed at construction.
    pub fn failure_index(&self, l: LinkId) -> Option<usize> {
        self.index.get(&l).copied()
    }

    /// The failure scenario for failure index `i`.
    pub fn scenario(&self, i: usize) -> Scenario {
        Scenario::Link(self.failable[i])
    }

    /// All failure scenarios, in failure-index order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.failable.iter().map(|&l| Scenario::Link(l)).collect()
    }

    /// Scenarios for a subset of failure indices (the critical set).
    pub fn scenarios_for(&self, indices: &[usize]) -> Vec<Scenario> {
        indices.iter().map(|&i| self.scenario(i)).collect()
    }

    /// Target critical-set size for a fraction `f` of the universe:
    /// `ceil(f·len)`, at least 1 (when non-empty).
    pub fn target_size(&self, f: f64) -> usize {
        if self.is_empty() {
            return 0;
        }
        ((self.len() as f64 * f).ceil() as usize).clamp(1, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_net::{NetworkBuilder, Point};

    /// Ring of 5 plus a pendant node hanging off node 0 by a bridge.
    fn ring_with_pendant() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(Point::ORIGIN)).collect();
        for i in 0..5 {
            b.add_duplex_link(n[i], n[(i + 1) % 5], 1e9, 1e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[5], 1e9, 1e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bridge_excluded_from_failable() {
        let net = ring_with_pendant();
        let u = FailureUniverse::of(&net);
        assert_eq!(u.total_duplex(), 6);
        assert_eq!(u.len(), 5); // the pendant bridge can't fail survivably
        assert!(!u.is_empty()); // len/is_empty speak about failable links
    }

    #[test]
    fn failure_index_rejects_non_failable_links() {
        let net = ring_with_pendant();
        let u = FailureUniverse::of(&net);
        for &l in &u.all_duplex {
            if u.failable.contains(&l) {
                assert!(u.failure_index(l).is_some());
            } else {
                assert_eq!(u.failure_index(l), None, "bridge {l} got an index");
            }
        }
    }

    #[test]
    fn failure_index_round_trip() {
        let net = ring_with_pendant();
        let u = FailureUniverse::of(&net);
        for (i, &l) in u.failable.iter().enumerate() {
            assert_eq!(u.failure_index(l), Some(i));
            assert_eq!(u.scenario(i), Scenario::Link(l));
        }
    }

    #[test]
    fn target_size_rounds_up_and_clamps() {
        let net = ring_with_pendant();
        let u = FailureUniverse::of(&net); // 5 failable
        assert_eq!(u.target_size(0.15), 1);
        assert_eq!(u.target_size(0.5), 3);
        assert_eq!(u.target_size(1.0), 5);
        assert_eq!(u.target_size(0.0001), 1);
    }

    #[test]
    fn scenarios_cover_universe() {
        let net = ring_with_pendant();
        let u = FailureUniverse::of(&net);
        assert_eq!(u.scenarios().len(), 5);
        assert_eq!(u.scenarios_for(&[0, 2]).len(), 2);
    }
}
