//! Shared local-search machinery for Phases 1 and 2.
//!
//! Both phases are the same hill-climbing skeleton (§IV-A): sweep all
//! physical links in random order, re-draw each link's two class weights,
//! accept the move iff the objective improves (lexicographically), restart
//! from a diversification point after an improvement drought, and stop
//! when the trailing window of diversifications yields less than `c`
//! relative improvement.

use dtr_cost::LexCost;
use dtr_net::{LinkId, Network};
use dtr_routing::{Class, WeightSetting};
use rand::rngs::StdRng;
use rand::Rng;

/// Apply new class weights `(wd, wt)` to the physical link represented by
/// `rep`, symmetrically on both directions (see
/// [`crate::FailureUniverse`] for why symmetric).
pub fn set_duplex_weights(w: &mut WeightSetting, net: &Network, rep: LinkId, wd: u32, wt: u32) {
    w.set(Class::Delay, rep, wd);
    w.set(Class::Throughput, rep, wt);
    if let Some(r) = net.reverse_link(rep) {
        w.set(Class::Delay, r, wd);
        w.set(Class::Throughput, r, wt);
    }
}

/// Current class weights of the physical link (forward direction is
/// authoritative; both directions are kept equal by the search).
pub fn duplex_weights(w: &WeightSetting, rep: LinkId) -> (u32, u32) {
    (w.get(Class::Delay, rep), w.get(Class::Throughput, rep))
}

/// Draw a fresh uniform weight pair in `[1, wmax]²`.
pub fn random_weight_pair(wmax: u32, rng: &mut StdRng) -> (u32, u32) {
    (rng.gen_range(1..=wmax), rng.gen_range(1..=wmax))
}

/// Draw a failure-emulating pair in `[⌈q·wmax⌉, wmax]²` (§IV-D1).
pub fn failure_emulating_pair(wmax: u32, q: f64, rng: &mut StdRng) -> (u32, u32) {
    let floor = ((q * wmax as f64).ceil() as u32).clamp(1, wmax);
    (rng.gen_range(floor..=wmax), rng.gen_range(floor..=wmax))
}

/// A symmetric random weight setting: both directions of every physical
/// link share their class weights (diversification restart state).
pub fn random_symmetric_setting(net: &Network, wmax: u32, rng: &mut StdRng) -> WeightSetting {
    let mut w = WeightSetting::uniform(net.num_links(), wmax);
    for rep in net.duplex_representatives() {
        let (wd, wt) = random_weight_pair(wmax, rng);
        set_duplex_weights(&mut w, net, rep, wd, wt);
    }
    w
}

/// Counters reported by each search phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Full sweeps over all links.
    pub iterations: usize,
    /// Objective evaluations (normal-conditions evaluations in Phase 1;
    /// in Phase 2 each failure-scenario evaluation counts separately).
    pub evaluations: usize,
    /// Diversification restarts performed.
    pub diversifications: usize,
}

impl SearchStats {
    pub fn merge(&mut self, other: &SearchStats) {
        self.iterations += other.iterations;
        self.evaluations += other.evaluations;
        self.diversifications += other.diversifications;
    }
}

/// The paper's stopping rule: after each diversification, stop once the
/// relative improvement of the global best over the trailing `window`
/// diversifications drops below `c`.
#[derive(Clone, Debug)]
pub struct StopRule {
    window: usize,
    c: f64,
    history: Vec<LexCost>,
}

impl StopRule {
    pub fn new(window: usize, c: f64) -> Self {
        assert!(window >= 1);
        StopRule {
            window,
            c,
            history: Vec::new(),
        }
    }

    /// Record the global best at the end of a diversification; returns
    /// `true` when the search should stop.
    pub fn record(&mut self, global_best: LexCost) -> bool {
        self.history.push(global_best);
        if self.history.len() <= self.window {
            return false;
        }
        let reference = self.history[self.history.len() - 1 - self.window];
        let improvement = global_best.relative_improvement_over(&reference);
        improvement < self.c
    }
}

/// Bounded archive of good weight settings, ordered best-first by
/// lexicographic cost. Phase 1 feeds it with acceptable settings; Phase 2
/// diversifies from it.
#[derive(Clone, Debug)]
pub struct Archive {
    entries: Vec<(WeightSetting, LexCost)>,
    cap: usize,
}

impl Archive {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        Archive {
            entries: Vec::new(),
            cap,
        }
    }

    /// Offer a setting; kept if among the `cap` best seen (duplicates by
    /// exact weight equality are ignored).
    pub fn offer(&mut self, w: &WeightSetting, cost: LexCost) {
        if self.entries.iter().any(|(e, _)| e == w) {
            return;
        }
        let pos = self
            .entries
            .iter()
            .position(|(_, c)| cost.better_than(c))
            .unwrap_or(self.entries.len());
        if pos >= self.cap {
            return;
        }
        self.entries.insert(pos, (w.clone(), cost));
        self.entries.truncate(self.cap);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[(WeightSetting, LexCost)] {
        &self.entries
    }

    /// Uniformly random entry.
    pub fn sample(&self, rng: &mut StdRng) -> Option<&(WeightSetting, LexCost)> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())])
        }
    }

    /// Best entry.
    pub fn best(&self) -> Option<&(WeightSetting, LexCost)> {
        self.entries.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_net::{NetworkBuilder, Point};
    use rand::SeedableRng;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(Point::ORIGIN)).collect();
        b.add_duplex_link(n[0], n[1], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[1], n[2], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[2], n[0], 1e9, 1e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn duplex_weights_stay_symmetric() {
        let net = triangle();
        let mut w = WeightSetting::uniform(net.num_links(), 20);
        let rep = net.duplex_representatives()[0];
        set_duplex_weights(&mut w, &net, rep, 7, 13);
        let rev = net.reverse_link(rep).unwrap();
        assert_eq!(w.get(Class::Delay, rep), 7);
        assert_eq!(w.get(Class::Delay, rev), 7);
        assert_eq!(w.get(Class::Throughput, rep), 13);
        assert_eq!(w.get(Class::Throughput, rev), 13);
        assert_eq!(duplex_weights(&w, rep), (7, 13));
    }

    #[test]
    fn random_symmetric_setting_is_symmetric() {
        let net = triangle();
        let mut rng = StdRng::seed_from_u64(3);
        let w = random_symmetric_setting(&net, 20, &mut rng);
        for l in net.links() {
            let r = net.reverse_link(l).unwrap();
            assert_eq!(w.get(Class::Delay, l), w.get(Class::Delay, r));
            assert_eq!(w.get(Class::Throughput, l), w.get(Class::Throughput, r));
        }
    }

    #[test]
    fn failure_emulating_pair_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let (a, b) = failure_emulating_pair(20, 0.7, &mut rng);
            assert!((14..=20).contains(&a));
            assert!((14..=20).contains(&b));
        }
    }

    #[test]
    fn stop_rule_waits_for_full_window() {
        let mut sr = StopRule::new(3, 0.001);
        // Big improvements: never stop.
        assert!(!sr.record(LexCost::new(0.0, 100.0)));
        assert!(!sr.record(LexCost::new(0.0, 50.0)));
        assert!(!sr.record(LexCost::new(0.0, 25.0)));
        // Window full now; 25 -> 12.5 over 3 records is 50% improvement.
        assert!(!sr.record(LexCost::new(0.0, 12.5)));
        // Stagnation: improvement < 0.1% over the window eventually.
        assert!(!sr.record(LexCost::new(0.0, 12.49)));
        assert!(!sr.record(LexCost::new(0.0, 12.49)));
        assert!(sr.record(LexCost::new(0.0, 12.49)));
    }

    #[test]
    fn stop_rule_uses_lexicographic_improvement() {
        let mut sr = StopRule::new(1, 0.001);
        assert!(!sr.record(LexCost::new(200.0, 1.0)));
        // Lambda halved: 50% improvement, keep going.
        assert!(!sr.record(LexCost::new(100.0, 1.0)));
        // No movement: stop.
        assert!(sr.record(LexCost::new(100.0, 1.0)));
    }

    #[test]
    fn archive_keeps_best_and_dedups() {
        let net = triangle();
        let mut rng = StdRng::seed_from_u64(9);
        let mut arch = Archive::new(2);
        let w1 = random_symmetric_setting(&net, 20, &mut rng);
        let w2 = random_symmetric_setting(&net, 20, &mut rng);
        let w3 = random_symmetric_setting(&net, 20, &mut rng);
        arch.offer(&w1, LexCost::new(0.0, 30.0));
        arch.offer(&w1, LexCost::new(0.0, 30.0)); // dup ignored
        assert_eq!(arch.len(), 1);
        arch.offer(&w2, LexCost::new(0.0, 10.0));
        arch.offer(&w3, LexCost::new(0.0, 20.0)); // evicts w1 (worst)
        assert_eq!(arch.len(), 2);
        assert_eq!(arch.best().unwrap().1.phi, 10.0);
        assert!(arch.entries().iter().all(|(_, c)| c.phi < 30.0));
    }

    #[test]
    fn archive_sample_is_deterministic_per_seed() {
        let net = triangle();
        let mut rng = StdRng::seed_from_u64(9);
        let mut arch = Archive::new(4);
        for i in 0..4 {
            let w = random_symmetric_setting(&net, 20, &mut rng);
            arch.offer(&w, LexCost::new(0.0, i as f64));
        }
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(
            arch.sample(&mut r1).unwrap().1,
            arch.sample(&mut r2).unwrap().1
        );
    }
}
