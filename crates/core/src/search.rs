//! Shared local-search machinery for Phases 1 and 2.
//!
//! Both phases are the same hill-climbing skeleton (§IV-A): sweep all
//! physical links in random order, re-draw each link's two class weights,
//! accept the move iff the objective improves (lexicographically), restart
//! from a diversification point after an improvement drought, and stop
//! when the trailing window of diversifications yields less than `c`
//! relative improvement.
//!
//! # Speculative batched moves
//!
//! The sweep's RNG stream is deterministic and evaluations never consume
//! randomness, so the next `K` candidate moves of a sweep can be
//! pre-drawn without perturbing the draw order the serial loop would
//! produce. [`speculative_sweep`] exploits this: it keeps a sliding
//! window of up to `K` pre-drawn moves, evaluates their
//! normal-conditions costs concurrently on pooled workspaces, then
//! *replays* the window serially in draw order. Acceptance invalidates
//! the speculation past the accepted move (those costs were computed
//! against a stale base and are discarded — counted in
//! [`SearchStats::speculative_wasted`] — then recomputed), so the
//! accept/reject sequence, every accepted cost, and the RNG stream are
//! bit-for-bit those of the serial loop for **any** batch size and
//! thread count. Since most moves are rejected (Phase 2's Eq. 5–6
//! constraint gate kills the bulk of them), speculation almost always
//! pays: the whole window's evaluations fan out across threads instead
//! of serializing behind one another.

use dtr_cost::LexCost;
use dtr_net::{LinkId, Network};
use dtr_routing::{Class, WeightSetting};
use rand::rngs::StdRng;
use rand::Rng;

/// Apply new class weights `(wd, wt)` to the physical link represented by
/// `rep`, symmetrically on both directions (see
/// [`crate::FailureUniverse`] for why symmetric).
pub fn set_duplex_weights(w: &mut WeightSetting, net: &Network, rep: LinkId, wd: u32, wt: u32) {
    w.set(Class::Delay, rep, wd);
    w.set(Class::Throughput, rep, wt);
    if let Some(r) = net.reverse_link(rep) {
        w.set(Class::Delay, r, wd);
        w.set(Class::Throughput, r, wt);
    }
}

/// Current class weights of the physical link (forward direction is
/// authoritative; both directions are kept equal by the search).
pub fn duplex_weights(w: &WeightSetting, rep: LinkId) -> (u32, u32) {
    (w.get(Class::Delay, rep), w.get(Class::Throughput, rep))
}

/// Draw a fresh uniform weight pair in `[1, wmax]²`.
pub fn random_weight_pair(wmax: u32, rng: &mut StdRng) -> (u32, u32) {
    (rng.gen_range(1..=wmax), rng.gen_range(1..=wmax))
}

/// Draw a failure-emulating pair in `[⌈q·wmax⌉, wmax]²` (§IV-D1).
pub fn failure_emulating_pair(wmax: u32, q: f64, rng: &mut StdRng) -> (u32, u32) {
    let floor = ((q * wmax as f64).ceil() as u32).clamp(1, wmax);
    (rng.gen_range(floor..=wmax), rng.gen_range(floor..=wmax))
}

/// A symmetric random weight setting: both directions of every physical
/// link share their class weights (diversification restart state).
pub fn random_symmetric_setting(net: &Network, wmax: u32, rng: &mut StdRng) -> WeightSetting {
    let mut w = WeightSetting::uniform(net.num_links(), wmax);
    for rep in net.duplex_representatives() {
        let (wd, wt) = random_weight_pair(wmax, rng);
        set_duplex_weights(&mut w, net, rep, wd, wt);
    }
    w
}

/// Why a robust search returned.
///
/// The reason never affects *what* is returned — `best`, costs, trace
/// and stats are bit-identical functions of how many boundaries ran —
/// only *why* the boundary loop ended. See "The checkpoint contract"
/// in `DETERMINISM.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Terminated {
    /// The stop rule fired (or the `max_iterations` backstop bound).
    #[default]
    Converged,
    /// The wall-clock deadline (or an injected kill-point) ended the
    /// run at a sweep/rendezvous boundary; the output is the
    /// best-so-far, never a half-applied accept.
    Deadline,
    /// The restored snapshot was already terminal — every chain had
    /// converged before the checkpoint was taken.
    Restored,
}

/// Counters reported by each search phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Full sweeps over all links.
    pub iterations: usize,
    /// *Logical* objective evaluations — what the serial, cutoff-free
    /// loop would perform (normal-conditions evaluations in Phase 1; in
    /// Phase 2 each failure-scenario evaluation counts separately).
    /// Invariant across batch size, thread count and cutoff setting.
    pub evaluations: usize,
    /// Diversification restarts performed.
    pub diversifications: usize,
    /// Failure-scenario evaluations (already counted in `evaluations`)
    /// that the incumbent-bounded sweep proved unnecessary and skipped —
    /// the observable win of the early cutoff. Always the exact sum of
    /// the three per-cause counters below (kept for trace
    /// compatibility).
    pub scenario_evals_skipped: usize,
    /// Skips from cuts that *needed* the Λ/Φ floor stand-ins: the
    /// evaluated subset alone would not have proven the rejection
    /// (`SetSweep::Cut::floor_cut`).
    pub skipped_floor: usize,
    /// Skips from cuts the evaluated subset proved on its own, on a
    /// sweep running through the delta-state scenario cache.
    pub skipped_cache: usize,
    /// Skips from cuts the evaluated subset proved on its own, on an
    /// uncached bounded sweep.
    pub skipped_cutoff: usize,
    /// Speculative normal-conditions evaluations discarded because an
    /// earlier move in the window was accepted (re-evaluated against the
    /// new base; the wasted copies are *extra* work, never counted in
    /// `evaluations`).
    pub speculative_wasted: usize,
    /// Extra scenario evaluations spent rebuilding the delta-state
    /// scenario cache outside a logical full sweep (physical overhead of
    /// the cutoff kernel, never counted in `evaluations`). Since the
    /// delta-state refresh maintains cache coverage exactly on every
    /// accept, drift rebuilds no longer exist and this stays 0 in the
    /// shipped phases; the counter is kept for custom drivers.
    pub cache_rebuild_evals: usize,
    /// Gauge: how many scenarios the delta-state cache held resident
    /// under its byte budget (`Params::cache_budget_bytes`) at the last
    /// rebuild. Equals the critical-set size when the budget never
    /// binds; merged by max.
    pub cache_resident_scenarios: usize,
    /// Scenario evaluations a budget-bounded cache routed through the
    /// plain repair-seeded path because their position was not resident
    /// (bit-identical results, attributed for the benches). Stays 0
    /// whenever the budget does not bind.
    pub cache_fallback_evals: usize,
}

impl SearchStats {
    pub fn merge(&mut self, other: &SearchStats) {
        self.iterations += other.iterations;
        self.evaluations += other.evaluations;
        self.diversifications += other.diversifications;
        self.scenario_evals_skipped += other.scenario_evals_skipped;
        self.skipped_floor += other.skipped_floor;
        self.skipped_cache += other.skipped_cache;
        self.skipped_cutoff += other.skipped_cutoff;
        self.speculative_wasted += other.speculative_wasted;
        self.cache_rebuild_evals += other.cache_rebuild_evals;
        // A gauge, not a counter: phases sharing one cache report the
        // same residency, so the merged value is the max, not the sum.
        self.cache_resident_scenarios = self
            .cache_resident_scenarios
            .max(other.cache_resident_scenarios);
        self.cache_fallback_evals += other.cache_fallback_evals;
    }
}

/// Outcome of one replayed proposal, recorded into the search trace when
/// `Params::record_trace` is set. The trace pins the **full**
/// accept/reject sequence, so the equivalence suite can assert the
/// trajectory — not just its end state — is identical across speculation
/// batch sizes, thread counts and cutoff settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveOutcome {
    /// Rejected by the normal-conditions constraint gate (Phase 2 /
    /// robust phase only) — never paid for a failure sweep.
    ConstraintReject,
    /// Rejected on the objective (in Phase 2: by the failure sweep,
    /// whether fully evaluated or provably cut early).
    Reject,
    /// Accepted.
    Accept,
}

/// Replay verdict a phase hands back to [`speculative_sweep`] for one
/// proposal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Keep the move applied; speculation past it is invalidated.
    Accept,
    /// Revert the move.
    Reject,
}

/// One pre-drawn move of the speculation window.
#[derive(Debug)]
struct SpecSlot<M, C> {
    rep: LinkId,
    mv: M,
    old: M,
    noop: bool,
    cost: Option<C>,
}

/// Reusable buffers for [`speculative_sweep`] (keep one per search run;
/// all buffers reach steady-state capacity after the first sweep).
#[derive(Debug)]
pub struct SpecBuffers<W, M, C> {
    slots: Vec<SpecSlot<M, C>>,
    cand: Vec<W>,
    todo: Vec<usize>,
}

impl<W, M, C> SpecBuffers<W, M, C> {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        SpecBuffers {
            slots: Vec::new(),
            cand: Vec::new(),
            todo: Vec::new(),
        }
    }
}

impl<W, M, C> Default for SpecBuffers<W, M, C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Smallest pending-candidate batch worth evaluating eagerly ahead of
/// the replay cursor when `threads > 1`.
///
/// Measured on this codebase's testbed scale: one `std::thread::scope`
/// fan-out (spawn + join of ≤ `threads` workers) costs **~30–60 µs** of
/// pure overhead, while a paper-scale normal-conditions evaluation costs
/// ~90 µs — so a 2-candidate batch on a 2-core host finishes in
/// ~90 µs + overhead ≈ 135 µs against 180 µs serial, and every larger
/// batch amortizes the fan-out further. A 1-candidate "batch" can never
/// pay: there is nothing to overlap, and an eagerly computed cost is
/// discarded (`SearchStats::speculative_wasted`) whenever an earlier
/// move in the window is accepted — deferring it to lazy replay-time
/// evaluation produces the same bits with zero waste. Hence the
/// threshold is 2: fan out only when at least two candidates are
/// pending, otherwise fall back to the lazy path even on multicore
/// hosts. (On very small topologies where an evaluation undercuts the
/// fan-out overhead the whole speculation feature is moot — the serial
/// loop is already µs-fast — so no eval-cost-aware threshold is
/// needed.)
///
/// Re-measured at the PR-8 500/2,000/5,000-node tiers: one
/// normal-conditions evaluation there costs **milliseconds** (≈3 ms at
/// 500 nodes), three orders of magnitude above the 30–60 µs fan-out
/// overhead, so the break-even batch stays at 2 — larger thresholds
/// only delay the overlap. The value is therefore kept as the default
/// of the `eager_min_batch` knob on `Params`/`MtrParams` rather than
/// raised; hosts where fan-out is unusually expensive can raise it
/// without touching the kernel (the trajectory is identical for every
/// value, see [`speculative_sweep`]).
pub const EAGER_MIN_BATCH: usize = 2;

/// One sweep of the hill climber with speculative batched moves — the
/// engine of Phases 1/2 and their MTR analogues (see the module docs).
///
/// Replays are exactly the serial loop: for each physical link in `reps`
/// order, a move is drawn (`draw` consumes the RNG in draw order whether
/// or not the move is later discarded), no-op re-draws are skipped, and
/// `process` is invoked with `current` *already carrying the move*,
/// deciding accept (keep) or reject (the driver reverts). The only
/// difference is *when* the normal-conditions costs are computed: up to
/// `k` moves ahead of the replay cursor, concurrently on `threads`
/// workers via `eval`. Because every per-setting cost is bit-exact
/// regardless of which workspace computes it, and speculation past an
/// accepted move is discarded and recomputed, the resulting trajectory
/// is identical for every `(k, threads)` — `k = 1, threads = 1` *is* the
/// serial loop.
///
/// `wasted` accumulates the discarded speculative evaluations
/// ([`SearchStats::speculative_wasted`]).
///
/// `eager_min` is the smallest pending batch worth fanning out eagerly
/// (below it, evaluation defers to lazy replay even on multicore);
/// [`EAGER_MIN_BATCH`] is the measured default. Like `k` and `threads`
/// it only moves work between the eager and lazy paths — the costs,
/// decisions and trajectory are bit-identical for every value.
#[allow(clippy::too_many_arguments)]
pub fn speculative_sweep<W, M, C, D, R, A, E, P>(
    reps: &[LinkId],
    rng: &mut StdRng,
    k: usize,
    threads: usize,
    eager_min: usize,
    current: &mut W,
    bufs: &mut SpecBuffers<W, M, C>,
    wasted: &mut usize,
    mut draw: D,
    read_old: R,
    apply: A,
    eval: E,
    mut process: P,
) where
    W: Clone + Send + Sync,
    M: PartialEq,
    C: Send,
    D: FnMut(&mut StdRng) -> M,
    R: Fn(&W, LinkId) -> M,
    A: Fn(&mut W, LinkId, &M),
    E: Fn(&W) -> C + Sync,
    P: FnMut(&W, LinkId, &C) -> Decision,
{
    let k = k.max(1);
    bufs.slots.clear();
    let mut pos = 0usize; // next window slot to replay
    let mut drawn = 0usize; // moves drawn so far (== bufs.slots.len())

    while pos < reps.len() {
        // Extend the window to k pre-drawn moves, consuming the RNG in
        // exactly the serial draw order. `old` is stable for the rest of
        // the sweep: reps are distinct within a sweep, so no other
        // accepted move can touch this link's weights.
        while drawn < reps.len() && drawn - pos < k {
            let rep = reps[drawn];
            let mv = draw(rng);
            let old = read_old(current, rep);
            let noop = mv == old;
            bufs.slots.push(SpecSlot {
                rep,
                mv,
                old,
                noop,
                cost: None,
            });
            drawn += 1;
        }

        // Evaluate every pending non-noop candidate against the current
        // base, fanning out over `threads` workers. With a single worker
        // there is nothing to overlap, and a batch below `eager_min`
        // (default [`EAGER_MIN_BATCH`]) cannot amortize the fan-out
        // overhead (see the measured threshold above), so evaluation
        // is deferred to
        // the replay below (same costs, no wasted work, and the
        // workspace baseline tracks `current` exactly as in the serial
        // loop).
        bufs.todo.clear();
        if threads > 1 {
            bufs.todo.extend(
                (pos..drawn).filter(|&i| !bufs.slots[i].noop && bufs.slots[i].cost.is_none()),
            );
            if bufs.todo.len() < eager_min.max(1) {
                bufs.todo.clear();
            }
        }
        if !bufs.todo.is_empty() {
            while bufs.cand.len() < bufs.todo.len() {
                bufs.cand.push(current.clone());
            }
            for (j, &i) in bufs.todo.iter().enumerate() {
                let slot = &bufs.slots[i];
                bufs.cand[j].clone_from(current);
                apply(&mut bufs.cand[j], slot.rep, &slot.mv);
            }
            let cands = &bufs.cand[..bufs.todo.len()];
            let costs = crate::parallel::parallel_map(cands, threads, &eval);
            for (&i, c) in bufs.todo.iter().zip(costs) {
                bufs.slots[i].cost = Some(c);
            }
        }

        // Replay in draw order until the window drains or a move is
        // accepted (which invalidates the speculation past it).
        let mut accepted = false;
        while pos < drawn {
            let i = pos;
            pos += 1;
            if bufs.slots[i].noop {
                continue;
            }
            apply(current, bufs.slots[i].rep, &bufs.slots[i].mv);
            let cost = match bufs.slots[i].cost.take() {
                Some(c) => c,
                // Single-worker (or invalidated) slot: evaluate at replay
                // time, on `current` with the move applied — bit-for-bit
                // the speculative candidate's cost.
                None => eval(current),
            };
            match process(current, bufs.slots[i].rep, &cost) {
                Decision::Accept => {
                    accepted = true;
                    break;
                }
                Decision::Reject => apply(current, bufs.slots[i].rep, &bufs.slots[i].old),
            }
        }
        if accepted {
            for slot in &mut bufs.slots[pos..drawn] {
                if slot.cost.take().is_some() {
                    *wasted += 1;
                }
            }
        }
    }
}

/// The paper's stopping rule: after each diversification, stop once the
/// relative improvement of the global best over the trailing `window`
/// diversifications drops below `c`.
///
/// Only the trailing `window + 1` records are retained — the rule never
/// looks further back, and long runs diversify tens of thousands of
/// times.
#[derive(Clone, Debug)]
pub struct StopRule {
    window: usize,
    c: f64,
    history: Vec<LexCost>,
}

impl StopRule {
    pub fn new(window: usize, c: f64) -> Self {
        assert!(window >= 1);
        StopRule {
            window,
            c,
            history: Vec::new(),
        }
    }

    /// Record the global best at the end of a diversification; returns
    /// `true` when the search should stop.
    pub fn record(&mut self, global_best: LexCost) -> bool {
        self.history.push(global_best);
        if self.history.len() <= self.window {
            return false;
        }
        if self.history.len() > self.window + 1 {
            // Keep exactly the trailing window (+ the new record); the
            // comparison below only ever reads that far back.
            let excess = self.history.len() - (self.window + 1);
            self.history.drain(..excess);
        }
        let reference = self.history[self.history.len() - 1 - self.window];
        let improvement = global_best.relative_improvement_over(&reference);
        improvement < self.c
    }

    /// Trailing history records, oldest first — exactly what a snapshot
    /// must carry so a restored search makes the same stop decision as
    /// an uninterrupted one (see "The checkpoint contract" in
    /// `DETERMINISM.md`).
    pub fn history(&self) -> &[LexCost] {
        &self.history
    }

    /// Replace the trailing history (snapshot restore).
    pub fn restore_history(&mut self, records: Vec<LexCost>) {
        self.history = records;
    }
}

/// Cheap 64-bit fingerprint of a weight setting (FNV-1a over both class
/// weight vectors). Used by [`Archive::offer`] to reject duplicates with
/// one integer compare per entry instead of an O(links) vector scan;
/// equal fingerprints fall back to full equality, so dedup behaviour is
/// *identical* to the exact scan.
pub fn weight_fingerprint(w: &WeightSetting) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for class in Class::ALL {
        for &x in w.weights(class) {
            h ^= u64::from(x);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Bounded archive of good weight settings, ordered best-first by
/// lexicographic cost. Phase 1 feeds it with acceptable settings; Phase 2
/// diversifies from it.
#[derive(Clone, Debug)]
pub struct Archive {
    entries: Vec<(WeightSetting, LexCost)>,
    /// Per-entry [`weight_fingerprint`], aligned with `entries`.
    fingerprints: Vec<u64>,
    cap: usize,
}

impl Archive {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        Archive {
            entries: Vec::new(),
            fingerprints: Vec::new(),
            cap,
        }
    }

    /// Offer a setting; kept if among the `cap` best seen (duplicates by
    /// exact weight equality are ignored — screened by fingerprint, so
    /// the common miss costs one integer compare per entry).
    pub fn offer(&mut self, w: &WeightSetting, cost: LexCost) {
        let f = weight_fingerprint(w);
        if self
            .fingerprints
            .iter()
            .zip(&self.entries)
            .any(|(&g, (e, _))| g == f && e == w)
        {
            return;
        }
        let pos = self
            .entries
            .iter()
            .position(|(_, c)| cost.better_than(c))
            .unwrap_or(self.entries.len());
        if pos >= self.cap {
            return;
        }
        self.entries.insert(pos, (w.clone(), cost));
        self.fingerprints.insert(pos, f);
        self.entries.truncate(self.cap);
        self.fingerprints.truncate(self.cap);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[(WeightSetting, LexCost)] {
        &self.entries
    }

    /// Uniformly random entry.
    pub fn sample(&self, rng: &mut StdRng) -> Option<&(WeightSetting, LexCost)> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())])
        }
    }

    /// Best entry.
    pub fn best(&self) -> Option<&(WeightSetting, LexCost)> {
        self.entries.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_net::{NetworkBuilder, Point};
    use rand::SeedableRng;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(Point::ORIGIN)).collect();
        b.add_duplex_link(n[0], n[1], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[1], n[2], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[2], n[0], 1e9, 1e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn duplex_weights_stay_symmetric() {
        let net = triangle();
        let mut w = WeightSetting::uniform(net.num_links(), 20);
        let rep = net.duplex_representatives()[0];
        set_duplex_weights(&mut w, &net, rep, 7, 13);
        let rev = net.reverse_link(rep).unwrap();
        assert_eq!(w.get(Class::Delay, rep), 7);
        assert_eq!(w.get(Class::Delay, rev), 7);
        assert_eq!(w.get(Class::Throughput, rep), 13);
        assert_eq!(w.get(Class::Throughput, rev), 13);
        assert_eq!(duplex_weights(&w, rep), (7, 13));
    }

    #[test]
    fn random_symmetric_setting_is_symmetric() {
        let net = triangle();
        let mut rng = StdRng::seed_from_u64(3);
        let w = random_symmetric_setting(&net, 20, &mut rng);
        for l in net.links() {
            let r = net.reverse_link(l).unwrap();
            assert_eq!(w.get(Class::Delay, l), w.get(Class::Delay, r));
            assert_eq!(w.get(Class::Throughput, l), w.get(Class::Throughput, r));
        }
    }

    #[test]
    fn failure_emulating_pair_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let (a, b) = failure_emulating_pair(20, 0.7, &mut rng);
            assert!((14..=20).contains(&a));
            assert!((14..=20).contains(&b));
        }
    }

    #[test]
    fn stop_rule_waits_for_full_window() {
        let mut sr = StopRule::new(3, 0.001);
        // Big improvements: never stop.
        assert!(!sr.record(LexCost::new(0.0, 100.0)));
        assert!(!sr.record(LexCost::new(0.0, 50.0)));
        assert!(!sr.record(LexCost::new(0.0, 25.0)));
        // Window full now; 25 -> 12.5 over 3 records is 50% improvement.
        assert!(!sr.record(LexCost::new(0.0, 12.5)));
        // Stagnation: improvement < 0.1% over the window eventually.
        assert!(!sr.record(LexCost::new(0.0, 12.49)));
        assert!(!sr.record(LexCost::new(0.0, 12.49)));
        assert!(sr.record(LexCost::new(0.0, 12.49)));
    }

    #[test]
    fn stop_rule_uses_lexicographic_improvement() {
        let mut sr = StopRule::new(1, 0.001);
        assert!(!sr.record(LexCost::new(200.0, 1.0)));
        // Lambda halved: 50% improvement, keep going.
        assert!(!sr.record(LexCost::new(100.0, 1.0)));
        // No movement: stop.
        assert!(sr.record(LexCost::new(100.0, 1.0)));
    }

    #[test]
    fn archive_keeps_best_and_dedups() {
        let net = triangle();
        let mut rng = StdRng::seed_from_u64(9);
        let mut arch = Archive::new(2);
        let w1 = random_symmetric_setting(&net, 20, &mut rng);
        let w2 = random_symmetric_setting(&net, 20, &mut rng);
        let w3 = random_symmetric_setting(&net, 20, &mut rng);
        arch.offer(&w1, LexCost::new(0.0, 30.0));
        arch.offer(&w1, LexCost::new(0.0, 30.0)); // dup ignored
        assert_eq!(arch.len(), 1);
        arch.offer(&w2, LexCost::new(0.0, 10.0));
        arch.offer(&w3, LexCost::new(0.0, 20.0)); // evicts w1 (worst)
        assert_eq!(arch.len(), 2);
        assert_eq!(arch.best().unwrap().1.phi, 10.0);
        assert!(arch.entries().iter().all(|(_, c)| c.phi < 30.0));
    }

    #[test]
    fn stop_rule_history_is_bounded_to_its_window() {
        let mut sr = StopRule::new(3, 1e-9);
        for i in 0..1000 {
            // Keep improving so the rule never fires.
            assert!(!sr.record(LexCost::new(0.0, 1e9 / (i + 1) as f64)));
            assert!(
                sr.history.len() <= sr.window + 1,
                "history grew to {} at step {i}",
                sr.history.len()
            );
        }
    }

    /// The fingerprint screen must dedup exactly like the historical full
    /// weight-vector scan.
    #[test]
    fn archive_fingerprint_dedup_matches_exact_scan() {
        /// The pre-fingerprint archive, verbatim.
        struct RefArchive {
            entries: Vec<(WeightSetting, LexCost)>,
            cap: usize,
        }
        impl RefArchive {
            fn offer(&mut self, w: &WeightSetting, cost: LexCost) {
                if self.entries.iter().any(|(e, _)| e == w) {
                    return;
                }
                let pos = self
                    .entries
                    .iter()
                    .position(|(_, c)| cost.better_than(c))
                    .unwrap_or(self.entries.len());
                if pos >= self.cap {
                    return;
                }
                self.entries.insert(pos, (w.clone(), cost));
                self.entries.truncate(self.cap);
            }
        }

        let net = triangle();
        let mut rng = StdRng::seed_from_u64(77);
        let mut fast = Archive::new(4);
        let mut slow = RefArchive {
            entries: Vec::new(),
            cap: 4,
        };
        // A mix of fresh settings, exact duplicates, and re-offers of
        // retained entries under different costs.
        let mut seen: Vec<WeightSetting> = Vec::new();
        for i in 0..200 {
            let w = if i % 3 == 0 && !seen.is_empty() {
                seen[i % seen.len()].clone()
            } else {
                let w = random_symmetric_setting(&net, 20, &mut rng);
                seen.push(w.clone());
                w
            };
            let cost = LexCost::new(0.0, (i * 7919 % 101) as f64);
            fast.offer(&w, cost);
            slow.offer(&w, cost);
            assert_eq!(
                fast.entries(),
                slow.entries.as_slice(),
                "diverged at offer {i}"
            );
        }
    }

    #[test]
    fn archive_sample_is_deterministic_per_seed() {
        let net = triangle();
        let mut rng = StdRng::seed_from_u64(9);
        let mut arch = Archive::new(4);
        for i in 0..4 {
            let w = random_symmetric_setting(&net, 20, &mut rng);
            arch.offer(&w, LexCost::new(0.0, i as f64));
        }
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(
            arch.sample(&mut r1).unwrap().1,
            arch.sample(&mut r2).unwrap().1
        );
    }
}
