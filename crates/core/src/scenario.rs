//! The `ScenarioSet` abstraction: one trait for every failure model.
//!
//! The paper's conclusion sketches probabilistic, multi-failure and SRLG
//! robustness as *variations of one robust-optimization framework*. This
//! module is that framework's seam: a [`ScenarioSet`] enumerates weighted
//! [`Scenario`] values with **stable indices**, declares how the Phase-1
//! criticality signal applies to it, and plugs into the generic Phase-2
//! machinery ([`crate::phase2::run`], [`crate::pipeline::RobustOptimizer`]).
//!
//! Implementations shipped with the workspace:
//!
//! | set | scenarios | weights | selection |
//! |---|---|---|---|
//! | [`SingleLink`] (= [`FailureUniverse`]) | survivable single-link failures | uniform | criticality (Phase 1c) |
//! | [`Probabilistic`] | survivable single-link failures | failure probabilities | probability-scaled criticality |
//! | [`Srlg`] | single links ∪ survivable SRLG group failures | uniform | criticality on the single-link prefix, all groups kept |
//! | [`DoubleLink`] | survivable double-link failures | uniform | none (full sweep) |
//!
//! Every set performs **survivability pre-filtering** at construction:
//! scenarios that partition the network carry no optimization signal (no
//! routing can mitigate a partition) and are excluded, mirroring the
//! bridge exclusion of the single-link universe.
//!
//! Custom failure models (regional outages, maintenance windows, k-link
//! cascades) implement the same trait and ride the same optimizer.

use dtr_routing::Scenario;

use crate::universe::FailureUniverse;

pub use crate::ext::multi_failure::DoubleLink;
pub use crate::ext::probabilistic::Probabilistic;
pub use crate::ext::srlg::Srlg;

/// The canonical single-link scenario set of the paper (§III): every
/// survivable single physical-link failure, equally weighted, selected by
/// the Phase-1c criticality machinery. It *is* the failure universe.
pub type SingleLink = FailureUniverse;

/// A weighted ensemble of failure scenarios with stable indices.
///
/// Indices `0..len()` are stable for the lifetime of the set: samples,
/// criticality estimates, critical-set selections and reports all refer
/// to scenarios by index, so an implementation must never reorder them.
pub trait ScenarioSet {
    /// The single-link failure universe backing Phase-1 sampling. Sample
    /// harvesting emulates single-link failures by weight perturbation
    /// (§IV-D1) regardless of which ensemble Phase 2 optimizes, so every
    /// set carries the universe of its network.
    fn universe(&self) -> &FailureUniverse;

    /// Number of scenarios in the set.
    fn len(&self) -> usize;

    /// `true` when the set holds no scenarios.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scenario at stable index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    fn scenario(&self, i: usize) -> Scenario;

    /// Weight (probability mass) of scenario `i` in the compound
    /// objective. Uniform sets return 1 for every index.
    fn weight(&self, _i: usize) -> f64 {
        1.0
    }

    /// `true` when the objective is a weighted sum (any `weight() != 1`).
    /// Uniform sets keep the paper's plain Eq. (4) sum.
    fn weighted(&self) -> bool {
        false
    }

    /// Per-failure-index multipliers applied to the single-link
    /// criticality before Phase-1c selection (aligned with
    /// `universe().failable`). `None` = unscaled. The probabilistic model
    /// returns its failure probabilities here, so rarely-failing links
    /// are harder to justify a critical-set slot for.
    fn criticality_scale(&self) -> Option<&[f64]> {
        None
    }

    /// Whether criticality-based critical-set selection applies. Sets
    /// without a per-single-link structure (e.g. double-link ensembles)
    /// return `false`, and Phase 2 sweeps the whole set.
    fn supports_selection(&self) -> bool {
        true
    }

    /// Map the criticality-selected single-link failure indices to the
    /// scenario indices Phase 2 optimizes over. Sets that track the
    /// universe 1:1 return them unchanged; composite sets append their
    /// extra scenarios (e.g. every SRLG group).
    fn critical_scenarios(&self, critical_failures: &[usize]) -> Vec<usize> {
        critical_failures.to_vec()
    }

    /// All scenario indices: `0..len()`.
    fn all_indices(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }

    /// Materialized scenarios for a set of indices, in the given order.
    fn scenarios_for(&self, indices: &[usize]) -> Vec<Scenario> {
        indices.iter().map(|&i| self.scenario(i)).collect()
    }

    /// All scenarios, in index order.
    fn scenarios(&self) -> Vec<Scenario> {
        (0..self.len()).map(|i| self.scenario(i)).collect()
    }

    /// Weights for a set of indices, in the given order.
    fn weights_for(&self, indices: &[usize]) -> Vec<f64> {
        indices.iter().map(|&i| self.weight(i)).collect()
    }
}

/// A borrowed scenario slice (+ optional per-scenario weights) as a
/// [`ScenarioSet`] — the adapter that lets arbitrary scenario lists ride
/// the set-native machinery (sharded [`crate::parallel::evaluate_set`],
/// bounded sweeps, [`crate::phase2::run`]) without materializing a
/// bespoke set type. Scenario index = slice position. Criticality
/// selection does not apply (there is no per-single-link structure), and
/// the backing universe is empty: slices are handed to Phase 2 directly,
/// never to Phase-1 sampling.
#[derive(Clone, Debug)]
pub struct SliceSet<'a> {
    scenarios: &'a [Scenario],
    weights: Option<&'a [f64]>,
    universe: FailureUniverse,
}

impl<'a> SliceSet<'a> {
    /// Wrap a scenario slice; `weights`, if given, must match it in
    /// length and hold finite non-negative probability masses.
    ///
    /// # Panics
    /// Panics on length mismatch or invalid weights.
    pub fn new(scenarios: &'a [Scenario], weights: Option<&'a [f64]>) -> Self {
        if let Some(sw) = weights {
            assert_eq!(
                sw.len(),
                scenarios.len(),
                "one weight per critical scenario"
            );
            assert!(
                sw.iter().all(|&p| p >= 0.0 && p.is_finite()),
                "weights must be finite and non-negative"
            );
        }
        SliceSet {
            scenarios,
            weights,
            universe: FailureUniverse::empty(),
        }
    }
}

impl ScenarioSet for SliceSet<'_> {
    fn universe(&self) -> &FailureUniverse {
        &self.universe
    }

    fn len(&self) -> usize {
        self.scenarios.len()
    }

    fn scenario(&self, i: usize) -> Scenario {
        self.scenarios[i]
    }

    fn weight(&self, i: usize) -> f64 {
        self.weights.map_or(1.0, |sw| sw[i])
    }

    fn weighted(&self) -> bool {
        // Mirrors the historical slice entry points: a supplied weight
        // vector selects the weighted fold even if every mass is 1.0
        // (multiplying by 1.0 is bit-exact, so the two folds agree).
        self.weights.is_some()
    }

    fn supports_selection(&self) -> bool {
        false
    }
}

/// `FailureUniverse` is the canonical [`ScenarioSet`]: one scenario per
/// survivable single-link failure, uniform weights, scenario index =
/// failure index, criticality selection straight through.
impl ScenarioSet for FailureUniverse {
    fn universe(&self) -> &FailureUniverse {
        self
    }

    fn len(&self) -> usize {
        FailureUniverse::len(self)
    }

    fn scenario(&self, i: usize) -> Scenario {
        FailureUniverse::scenario(self, i)
    }
}

/// Blanket impl so `&S` works wherever `S: ScenarioSet` is expected.
impl<S: ScenarioSet + ?Sized> ScenarioSet for &S {
    fn universe(&self) -> &FailureUniverse {
        (**self).universe()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn scenario(&self, i: usize) -> Scenario {
        (**self).scenario(i)
    }
    fn weight(&self, i: usize) -> f64 {
        (**self).weight(i)
    }
    fn weighted(&self) -> bool {
        (**self).weighted()
    }
    fn criticality_scale(&self) -> Option<&[f64]> {
        (**self).criticality_scale()
    }
    fn supports_selection(&self) -> bool {
        (**self).supports_selection()
    }
    fn critical_scenarios(&self, critical_failures: &[usize]) -> Vec<usize> {
        (**self).critical_scenarios(critical_failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_net::{Network, NetworkBuilder, Point};

    fn ring(n: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / n as f64;
                b.add_node(Point::new(a.cos(), a.sin()))
            })
            .collect();
        for i in 0..n {
            b.add_duplex_link(ids[i], ids[(i + 1) % n], 1e6, 1e-3)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn universe_is_the_canonical_single_link_set() {
        let net = ring(5);
        let set = SingleLink::of(&net);
        assert_eq!(ScenarioSet::len(&set), 5);
        assert!(!set.weighted());
        assert!(set.supports_selection());
        for i in 0..ScenarioSet::len(&set) {
            assert_eq!(
                ScenarioSet::scenario(&set, i),
                Scenario::Link(set.failable[i])
            );
            assert_eq!(set.weight(i), 1.0);
        }
        assert_eq!(set.critical_scenarios(&[0, 2]), vec![0, 2]);
        assert_eq!(set.all_indices(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn slice_set_adapts_a_scenario_slice() {
        let net = ring(5);
        let scenarios: Vec<Scenario> = net
            .duplex_representatives()
            .into_iter()
            .map(Scenario::Link)
            .collect();
        let set = SliceSet::new(&scenarios, None);
        assert_eq!(set.len(), scenarios.len());
        assert!(!set.weighted());
        assert!(!set.supports_selection());
        assert!(set.universe().is_empty());
        for (i, &sc) in scenarios.iter().enumerate() {
            assert_eq!(set.scenario(i), sc);
            assert_eq!(set.weight(i), 1.0);
        }

        // A supplied weight vector selects the weighted fold (even with
        // unit masses — multiplying by 1.0 is bit-exact).
        let weights = vec![0.25; scenarios.len()];
        let weighted = SliceSet::new(&scenarios, Some(&weights));
        assert!(weighted.weighted());
        assert_eq!(weighted.weight(2), 0.25);
    }

    #[test]
    #[should_panic(expected = "one weight per critical scenario")]
    fn slice_set_rejects_mismatched_weights() {
        let net = ring(4);
        let scenarios: Vec<Scenario> = net
            .duplex_representatives()
            .into_iter()
            .map(Scenario::Link)
            .collect();
        let _ = SliceSet::new(&scenarios, Some(&[1.0]));
    }

    #[test]
    fn reference_delegation_matches_value() {
        let net = ring(4);
        let set = SingleLink::of(&net);
        let r = &set;
        assert_eq!(ScenarioSet::len(&r), ScenarioSet::len(&set));
        assert_eq!(r.scenarios(), set.scenarios());
        assert_eq!(r.weights_for(&[0, 1]), vec![1.0, 1.0]);
    }
}
