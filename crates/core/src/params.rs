//! Heuristic parameters (paper §IV-D1 and §V-A3).

/// Portfolio/replica search configuration (see the parallel-search
/// determinism contract in `DETERMINISM.md`).
///
/// With `replicas > 1` the robust phase runs that many independent
/// search chains from distinct derived seeds, exchanging archive elites
/// at fixed rendezvous points every `rendezvous_period` sweeps. The
/// merge is replica-index-ordered, so the final best setting, costs and
/// per-replica traces are bit-for-bit reproducible for a given
/// `(seed, replicas, rendezvous_period)` at **any** thread count.
/// `replicas == 1` is exactly the classic single-chain search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PortfolioParams {
    /// Independent replica chains (1 = classic single-chain search).
    pub replicas: usize,
    /// Sweeps each replica runs between elite-exchange rendezvous.
    pub rendezvous_period: usize,
}

impl PortfolioParams {
    /// Single-chain default: no portfolio, bit-identical to the
    /// pre-portfolio search.
    pub fn single() -> Self {
        PortfolioParams {
            replicas: 1,
            rendezvous_period: 8,
        }
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.replicas >= 1, "portfolio needs at least one replica");
        assert!(
            self.rendezvous_period >= 1,
            "rendezvous period must be at least one sweep"
        );
    }
}

/// Derive the master RNG seed of portfolio replica `r` from the run
/// seed (SplitMix64 finalizer over `seed + r·golden-gamma`; replica 0
/// of a multi-replica portfolio keeps its own derived stream too, so
/// no replica shares the single-chain stream by accident).
///
/// Part of the parallel-search determinism contract (`DETERMINISM.md`):
/// the derivation depends only on `(seed, r)`, never on thread count or
/// scheduling.
pub fn replica_seed(seed: u64, r: usize) -> u64 {
    let mut z = seed.wrapping_add((r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Every knob of the two-phase heuristic. `paper_default()` reproduces the
/// values the paper evaluates with; `quick()` is a CI-sized preset used by
/// tests and fast benches (documented in EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Maximum IGP weight; weights live in `[1, wmax]`.
    pub wmax: u32,
    /// Failure-emulation band: a perturbation emulates a link failure when
    /// both class weights land in `[q·wmax, wmax]` (paper: 0.7).
    pub q: f64,
    /// Sample-acceptance slack for the delay class: a pre-perturbation
    /// setting is acceptable if its `Λ` exceeds the current best by at most
    /// `z·B1` (paper: z = 0.5).
    pub z: f64,
    /// Throughput degradation budget χ: Phase 2 may degrade the normal-
    /// conditions `Φ` by up to this fraction (Eq. 6; paper: 0.2). Also the
    /// sample-acceptance slack for `Φ`.
    pub chi: f64,
    /// Left-tail fraction for criticality: mean of the lowest such share
    /// of samples (paper fn 9: 10 %).
    pub left_tail_fraction: f64,
    /// Average new samples per link between criticality-rank re-checks
    /// (paper: τ = 30).
    pub tau: usize,
    /// Rank-change convergence threshold `e` on both `S_Λ` and `S_Φ`
    /// (paper: 2).
    pub e: f64,
    /// Stop when relative cost reduction over the trailing window of
    /// diversifications falls below this (paper: c = 0.1 % = 0.001).
    pub c: f64,
    /// Trailing diversification window for the Phase-1 stop rule (paper:
    /// P1 = 20).
    pub p1: usize,
    /// Trailing diversification window for the Phase-2 stop rule (paper:
    /// P2 = 10).
    pub p2: usize,
    /// Iterations without improvement before Phase 1 restarts from a fresh
    /// random setting (paper: 100).
    pub div_interval_1: usize,
    /// Same for Phase 2, which starts near known-good settings (paper: 30).
    pub div_interval_2: usize,
    /// Target critical-set size as a fraction of the failure universe
    /// (paper default 0.15; Table I sweeps 0.05–0.25).
    pub critical_fraction: f64,
    /// Hard cap on Phase-1b sampling rounds (safety valve; the paper
    /// assumes convergence, a cap keeps degenerate instances terminating).
    pub max_phase1b_rounds: usize,
    /// Archive size: how many acceptable settings Phase 1 keeps as Phase-2
    /// starting points.
    pub archive_size: usize,
    /// Worker threads for failure-cost sums and speculative move batches
    /// (1 = serial). Results are identical for any value; this only
    /// changes wall-clock.
    pub threads: usize,
    /// Speculation window `K`: how many candidate moves of a sweep are
    /// pre-drawn and evaluated ahead of the replay cursor (1 = the plain
    /// serial loop). The trajectory is bit-for-bit identical for every
    /// value — speculation past an accepted move is discarded and
    /// recomputed (see [`crate::search::speculative_sweep`]).
    pub speculation: usize,
    /// Enable the incumbent-bounded early-cutoff failure sweeps of the
    /// robust phase. The cutoff is a float-exact proof of rejection
    /// (see [`crate::parallel::sum_set_costs_bounded`]), so accepted
    /// moves, their costs, and the full accept/reject sequence are
    /// identical with it on or off; only losing sweeps get cheaper.
    pub cutoff: bool,
    /// Include the load-aware congestion Φ component in the per-scenario
    /// floors of the bounded sweeps (`Evaluator::phi_floor`); off, the
    /// floors fall back to the propagation-only Λ bound. Only read when
    /// `cutoff` is on. Like the cutoff itself, the Φ floors are a
    /// float-exact rejection proof: results and traces are identical
    /// either way, only losing sweeps cut earlier.
    pub phi_floors: bool,
    /// Record the per-proposal accept/reject trace into the phase
    /// outputs ([`crate::search::MoveOutcome`]). Off by default: the
    /// trace grows with the move count and exists for the equivalence
    /// suite and diagnostics.
    pub record_trace: bool,
    /// Smallest pending speculative batch worth fanning out eagerly
    /// ahead of the replay cursor when `threads > 1` (see
    /// [`crate::search::EAGER_MIN_BATCH`], the measured default — the
    /// break-even holds from the 90 µs paper-scale evals up to the
    /// millisecond evals of the 500+-node tiers). Purely a wall-clock
    /// knob: the trajectory is bit-identical for every value.
    pub eager_min_batch: usize,
    /// Portfolio/replica search for the robust phase (Phase 2):
    /// independent chains from derived seeds with index-ordered elite
    /// exchange. `PortfolioParams::single()` = classic search.
    pub portfolio: PortfolioParams,
    /// Residency budget in bytes for the delta-state scenario cache of
    /// the Phase-2 cutoff sweeps (`dtr_cost::ScenarioCache`). Entries
    /// hold per-link load vectors and SLA pair triples, so at large node
    /// counts an unbounded cache grows roughly as `scenarios × links`;
    /// scenarios past the budget fall back to the plain repair-seeded
    /// path, which returns the same bits — the search trajectory is
    /// identical for every budget, only wall-clock changes.
    /// `usize::MAX` = unbounded (the 50-node default never binds).
    pub cache_budget_bytes: usize,
    /// Hard safety cap on sweeps per phase — a termination backstop far
    /// above what the `c%` rule needs; never binding in practice.
    pub max_iterations: usize,
    /// Wall-clock deadline for the robust phase in milliseconds
    /// (`None` = run to convergence). Checked only at sweep (single
    /// chain) or rendezvous (portfolio) boundaries, so the search
    /// returns the best-so-far with
    /// [`Terminated::Deadline`](crate::search::Terminated) and never a
    /// half-applied accept. The deadline decides only *when* to stop,
    /// never which move is accepted: every prefix of the trajectory is
    /// the same as an undeadlined run's (see "The checkpoint contract"
    /// in `DETERMINISM.md`).
    pub deadline_ms: Option<u64>,
    /// Checkpoint cadence for the robust phase, in boundaries (sweeps
    /// for a single chain, rendezvous for a portfolio). `0` = never
    /// checkpoint. Only read by the controlled entry points that were
    /// given a checkpoint sink; the snapshot is encoded and stored at
    /// the boundary, outside every sweep kernel, and has zero effect on
    /// the trajectory.
    pub checkpoint_every: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl Params {
    /// The paper's published parameter set (§IV-D1, §V-A3).
    pub fn paper_default(seed: u64) -> Self {
        Params {
            wmax: 20,
            q: 0.7,
            z: 0.5,
            chi: 0.2,
            left_tail_fraction: 0.10,
            tau: 30,
            e: 2.0,
            c: 0.001,
            p1: 20,
            p2: 10,
            div_interval_1: 100,
            div_interval_2: 30,
            critical_fraction: 0.15,
            max_phase1b_rounds: 50,
            archive_size: 12,
            threads: 1,
            speculation: 8,
            cutoff: true,
            phi_floors: true,
            record_trace: false,
            eager_min_batch: crate::search::EAGER_MIN_BATCH,
            portfolio: PortfolioParams::single(),
            cache_budget_bytes: usize::MAX,
            max_iterations: 100_000,
            deadline_ms: None,
            checkpoint_every: 0,
            seed,
        }
    }

    /// CI-scale preset: same algorithm, drastically fewer iterations.
    /// Intended for unit/integration tests and smoke benches on networks
    /// of ≤ ~16 nodes.
    pub fn quick(seed: u64) -> Self {
        Params {
            tau: 5,
            p1: 2,
            p2: 1,
            div_interval_1: 12,
            div_interval_2: 6,
            max_phase1b_rounds: 6,
            archive_size: 6,
            max_iterations: 400,
            ..Params::paper_default(seed)
        }
    }

    /// Mid-scale preset: enough search to show the paper's qualitative
    /// effects on 15–30-node networks in seconds-to-minutes, used by the
    /// experiment harness at `Scale::Quick`.
    pub fn reduced(seed: u64) -> Self {
        Params {
            tau: 10,
            p1: 4,
            p2: 2,
            div_interval_1: 30,
            div_interval_2: 12,
            max_phase1b_rounds: 12,
            ..Params::paper_default(seed)
        }
    }

    /// Validate invariants (called by the pipeline).
    pub fn validate(&self) {
        assert!(self.wmax >= 2, "wmax must allow at least two levels");
        assert!((0.0..1.0).contains(&self.q) && self.q > 0.0, "q in (0,1)");
        assert!(self.z >= 0.0 && self.chi >= 0.0);
        assert!(
            self.left_tail_fraction > 0.0 && self.left_tail_fraction <= 0.5,
            "left tail must be a small lower quantile"
        );
        assert!(self.tau >= 1 && self.e >= 0.0 && self.c >= 0.0);
        assert!(self.p1 >= 1 && self.p2 >= 1);
        assert!(self.div_interval_1 >= 1 && self.div_interval_2 >= 1);
        assert!(
            self.critical_fraction > 0.0 && self.critical_fraction <= 1.0,
            "critical fraction in (0,1]"
        );
        assert!(self.archive_size >= 1);
        assert!(self.threads >= 1);
        assert!(self.speculation >= 1, "speculation window K >= 1");
        assert!(self.eager_min_batch >= 1, "eager batch threshold >= 1");
        self.portfolio.validate();
        assert!(self.max_iterations >= 1);
        if let Some(ms) = self.deadline_ms {
            assert!(ms >= 1, "deadline must be at least one millisecond");
        }
        // Any cache_budget_bytes is valid: a budget below one entry just
        // means a fully non-resident cache (plain-path evaluations).
        // Any checkpoint_every is valid: 0 simply disables checkpoints.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_publication() {
        let p = Params::paper_default(0);
        assert_eq!(p.wmax, 20);
        assert_eq!(p.q, 0.7);
        assert_eq!(p.z, 0.5);
        assert_eq!(p.chi, 0.2);
        assert_eq!(p.left_tail_fraction, 0.10);
        assert_eq!(p.tau, 30);
        assert_eq!(p.e, 2.0);
        assert_eq!(p.c, 0.001);
        assert_eq!(p.p1, 20);
        assert_eq!(p.p2, 10);
        assert_eq!(p.div_interval_1, 100);
        assert_eq!(p.div_interval_2, 30);
        assert_eq!(p.critical_fraction, 0.15);
        p.validate();
    }

    #[test]
    fn presets_validate() {
        Params::quick(1).validate();
        Params::reduced(2).validate();
    }

    #[test]
    #[should_panic(expected = "critical fraction")]
    fn zero_critical_fraction_rejected() {
        Params {
            critical_fraction: 0.0,
            ..Params::paper_default(0)
        }
        .validate();
    }
}
