//! Phase 1b — targeted sample generation until rank convergence.
//!
//! Phase 1a's samples are a by-product of the optimization walk: a link
//! only gets one when a random proposal happens to land in the failure-
//! emulation band. If the criticality *ranking* has not stabilized by the
//! end of Phase 1a (rank-change index above `e`), Phase 1b manufactures
//! samples directly (§IV-D1): take an acceptable setting from the archive,
//! force one failable link's weight pair into `[⌈q·wmax⌉, wmax]²`, evaluate,
//! record. Each round adds `τ` samples per link (poorest-sampled links
//! first within a round), then re-checks convergence.
//!
//! Manufactured samples are embarrassingly parallel — no acceptance, no
//! state mutation between evaluations — so they are the ideal case for
//! the speculative batching of the search stack: candidates are
//! pre-drawn in RNG order `params.speculation` at a time, evaluated
//! concurrently on `params.threads` pooled workspaces, and recorded
//! serially in draw order. Recorded samples are bit-for-bit (and in the
//! same order as) the serial loop's for every batch size and thread
//! count.

use dtr_cost::Evaluator;
use dtr_routing::{Scenario, WeightSetting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::criticality::Criticality;
use crate::params::Params;
use crate::phase1::Phase1Output;
use crate::search::{duplex_weights, failure_emulating_pair, set_duplex_weights};
use crate::universe::FailureUniverse;

/// Phase-1b accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Phase1bStats {
    /// Sampling rounds executed (0 if Phase 1a had already converged).
    pub rounds: usize,
    /// Evaluations spent on manufactured samples.
    pub evaluations: usize,
    /// Whether the ranking converged by the end.
    pub converged: bool,
}

/// Run Phase 1b in place on the Phase-1 output. No-op if already
/// converged or if nothing can fail.
pub fn run(
    ev: &Evaluator<'_>,
    universe: &FailureUniverse,
    params: &Params,
    phase1: &mut Phase1Output,
) -> Phase1bStats {
    let mut stats = Phase1bStats {
        converged: phase1.converged,
        ..Default::default()
    };
    if phase1.converged || universe.is_empty() {
        return stats;
    }
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x517c_c1b7_2722_0a95);
    let net = ev.net();

    while !stats.converged && stats.rounds < params.max_phase1b_rounds {
        stats.rounds += 1;

        // τ samples per link this round, poorest links first so coverage
        // stays balanced (the estimate quality is gated by the weakest
        // link's sample count).
        let mut order: Vec<usize> = (0..universe.len()).collect();
        order.sort_by_key(|&i| phase1.store.count(i));
        let batch_size = params.speculation.max(1);
        let mut cands: Vec<(usize, WeightSetting)> = Vec::with_capacity(batch_size);
        for _ in 0..params.tau {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch_size) {
                // Pre-draw the whole batch in RNG order, then evaluate it
                // concurrently and record in draw order.
                cands.clear();
                for &fi in chunk {
                    let rep = universe.failable[fi];
                    let (base, _) = phase1
                        .archive
                        .sample(&mut rng)
                        .expect("phase 1 always archives its best setting");
                    let mut w = base.clone();
                    let (wd, wt) = failure_emulating_pair(params.wmax, params.q, &mut rng);
                    set_duplex_weights(&mut w, net, rep, wd, wt);
                    debug_assert!(w.emulates_failure(rep, params.q));
                    debug_assert_ne!(duplex_weights(&w, rep), (0, 0));
                    cands.push((fi, w));
                }
                let costs = crate::parallel::parallel_map(&cands, params.threads, |(_, w)| {
                    ev.cost(w, Scenario::Normal)
                });
                for ((fi, _), cost) in cands.iter().zip(costs) {
                    stats.evaluations += 1;
                    phase1.store.record(*fi, cost.lambda, cost.phi);
                }
            }
        }

        let crit = Criticality::estimate(&phase1.store, params.left_tail_fraction);
        if let Some(change) = phase1
            .tracker
            .update(&crit.ranking_lambda(), &crit.ranking_phi())
        {
            stats.converged = change.converged(params.e);
        }
    }
    phase1.converged = stats.converged;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;
    use dtr_cost::CostParams;
    use dtr_net::{Network, NetworkBuilder, Point};
    use dtr_traffic::{gravity, ClassMatrices};

    fn testbed() -> (Network, ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64, (i % 2) as f64)))
            .collect();
        for i in 0..6 {
            b.add_duplex_link(n[i], n[(i + 1) % 6], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2e6,
            ..gravity::GravityConfig::paper_default(6, 1)
        });
        (net, tm)
    }

    #[test]
    fn tops_up_samples_until_convergence_or_cap() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(2);
        let mut p1 = phase1::run(&ev, &universe, &params);
        let before = p1.store.total();
        p1.converged = false; // force Phase 1b to run
        let stats = run(&ev, &universe, &params, &mut p1);
        assert!(stats.rounds >= 1);
        assert!(p1.store.total() > before);
        // Every round adds exactly tau samples per failable link.
        assert_eq!(
            p1.store.total() - before,
            stats.rounds * params.tau * universe.len()
        );
        assert_eq!(stats.evaluations, p1.store.total() - before);
    }

    #[test]
    fn noop_when_already_converged() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(2);
        let mut p1 = phase1::run(&ev, &universe, &params);
        p1.converged = true;
        let before = p1.store.total();
        let stats = run(&ev, &universe, &params, &mut p1);
        assert_eq!(stats.rounds, 0);
        assert_eq!(p1.store.total(), before);
        assert!(stats.converged);
    }

    #[test]
    fn sample_balance_improves() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(4);
        let mut p1 = phase1::run(&ev, &universe, &params);
        p1.converged = false;
        run(&ev, &universe, &params, &mut p1);
        // After 1b, every failable link has at least tau samples.
        assert!(p1.store.min_count() >= params.tau);
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(6);
        let mk = || {
            let mut p1 = phase1::run(&ev, &universe, &params);
            p1.converged = false;
            let st = run(&ev, &universe, &params, &mut p1);
            (st, p1.store.total())
        };
        assert_eq!(mk(), mk());
    }
}
