//! Per-link failure-cost sample store (Phase 1a/1b harvest).
//!
//! For each failable link the store accumulates `(Λ, Φ)` cost samples
//! observed under failure-emulating weight perturbations of that link,
//! conditioned on the pre-perturbation setting being "acceptable"
//! (§IV-D1). These samples estimate the conditional distributions of
//! Fig. 2(a), from which criticality is derived.

/// Sample store indexed by failure index (see
/// [`crate::FailureUniverse`]).
#[derive(Clone, Debug, Default)]
pub struct SampleStore {
    lambda: Vec<Vec<f64>>,
    phi: Vec<Vec<f64>>,
}

/// Mean and left-tail mean of one link's samples for one cost component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TailStats {
    /// Sample mean (`Λ̂` / `Φ̂` in the paper).
    pub mean: f64,
    /// Mean of the lowest `tail_fraction` of samples (`Λ̃` / `Φ̃`).
    pub tail_mean: f64,
}

impl TailStats {
    /// The criticality contribution `ρ = mean − tail_mean` (Eqs. 8–9).
    /// Non-negative by construction (the tail mean cannot exceed the mean).
    pub fn rho(&self) -> f64 {
        (self.mean - self.tail_mean).max(0.0)
    }
}

impl SampleStore {
    /// Empty store for `num_links` failable links.
    pub fn new(num_links: usize) -> Self {
        SampleStore {
            lambda: vec![Vec::new(); num_links],
            phi: vec![Vec::new(); num_links],
        }
    }

    /// Number of failable links covered.
    pub fn num_links(&self) -> usize {
        self.lambda.len()
    }

    /// Record one failure-emulating observation for failure index `i`.
    pub fn record(&mut self, i: usize, lambda: f64, phi: f64) {
        debug_assert!(lambda.is_finite() && phi.is_finite(), "finite costs only");
        self.lambda[i].push(lambda);
        self.phi[i].push(phi);
    }

    /// Samples collected for failure index `i`.
    pub fn count(&self, i: usize) -> usize {
        self.lambda[i].len()
    }

    /// Total samples across all links.
    pub fn total(&self) -> usize {
        self.lambda.iter().map(Vec::len).sum()
    }

    /// Smallest per-link sample count (drives Phase-1b balancing).
    pub fn min_count(&self) -> usize {
        self.lambda.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Index of the link with the fewest samples (ties → smallest index).
    pub fn poorest_link(&self) -> Option<usize> {
        (0..self.num_links()).min_by_key(|&i| self.count(i))
    }

    /// Mean / left-tail-mean of the `Λ` samples of link `i`; `None` if the
    /// link has no samples yet.
    pub fn lambda_stats(&self, i: usize, tail_fraction: f64) -> Option<TailStats> {
        stats_of(&self.lambda[i], tail_fraction)
    }

    /// Mean / left-tail-mean of the `Φ` samples of link `i`.
    pub fn phi_stats(&self, i: usize, tail_fraction: f64) -> Option<TailStats> {
        stats_of(&self.phi[i], tail_fraction)
    }
}

fn stats_of(samples: &[f64], tail_fraction: f64) -> Option<TailStats> {
    debug_assert!((0.0..=0.5).contains(&tail_fraction) && tail_fraction > 0.0);
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let k = ((n as f64 * tail_fraction).ceil() as usize).clamp(1, n);
    let mut sorted = samples.to_vec();
    // total_cmp: a total key keeps the permutation (and the float-add
    // sequence of the tail mean below) deterministic (dtr-analysis:
    // det-partial-sort).
    sorted.sort_unstable_by(f64::total_cmp);
    let tail_mean = sorted[..k].iter().sum::<f64>() / k as f64;
    Some(TailStats { mean, tail_mean })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_has_no_stats() {
        let s = SampleStore::new(3);
        assert_eq!(s.total(), 0);
        assert_eq!(s.count(0), 0);
        assert!(s.lambda_stats(0, 0.1).is_none());
        assert_eq!(s.min_count(), 0);
    }

    #[test]
    fn record_and_count() {
        let mut s = SampleStore::new(2);
        s.record(0, 1.0, 10.0);
        s.record(0, 2.0, 20.0);
        s.record(1, 5.0, 50.0);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.count(1), 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.min_count(), 1);
        assert_eq!(s.poorest_link(), Some(1));
    }

    #[test]
    fn tail_stats_hand_check() {
        // 10 samples 1..=10; 10% tail = lowest 1 sample.
        let mut s = SampleStore::new(1);
        for v in 1..=10 {
            s.record(0, v as f64, 0.0);
        }
        let st = s.lambda_stats(0, 0.10).unwrap();
        assert!((st.mean - 5.5).abs() < 1e-12);
        assert!((st.tail_mean - 1.0).abs() < 1e-12);
        assert!((st.rho() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn tail_covers_k_smallest() {
        // 20% tail of 10 samples = lowest 2.
        let mut s = SampleStore::new(1);
        for v in [5.0, 1.0, 9.0, 2.0, 7.0, 8.0, 3.0, 6.0, 4.0, 10.0] {
            s.record(0, v, 0.0);
        }
        let st = s.lambda_stats(0, 0.20).unwrap();
        assert!((st.tail_mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn narrow_distribution_has_small_rho() {
        let mut s = SampleStore::new(2);
        // Link 0: tight distribution. Link 1: wide.
        for _ in 0..50 {
            s.record(0, 100.0, 1.0);
        }
        for i in 0..50 {
            s.record(1, if i < 5 { 0.0 } else { 200.0 }, 1.0);
        }
        let rho0 = s.lambda_stats(0, 0.1).unwrap().rho();
        let rho1 = s.lambda_stats(1, 0.1).unwrap().rho();
        assert!(rho0 < 1e-12);
        assert!(rho1 > 100.0); // mean 180, tail 0
    }

    #[test]
    fn single_sample_rho_is_zero() {
        let mut s = SampleStore::new(1);
        s.record(0, 42.0, 7.0);
        let st = s.lambda_stats(0, 0.1).unwrap();
        assert_eq!(st.mean, st.tail_mean);
        assert_eq!(st.rho(), 0.0);
    }
}
