//! Full search — the brute-force baseline (`Ec = E`, §IV-E).
//!
//! Identical to Phase 2 but evaluating **every** scenario of the set per
//! candidate move. Used as the accuracy yardstick for Table I (βfull) and
//! as the reference in the timing comparison of §IV-E2. Generic over
//! [`ScenarioSet`]: the full sweep of a probabilistic or SRLG ensemble is
//! as meaningful a yardstick as the paper's single-link one.
//!
//! The full sweep is exactly where the scenario-batched
//! `Evaluator::evaluate_all` engine pays off most: one no-failure
//! baseline per candidate amortizes over *all* `|E|` scenarios, each of
//! which re-routes only the destinations its failed link actually
//! carries.

use dtr_cost::Evaluator;

use crate::params::Params;
use crate::phase1::Phase1Output;
use crate::phase2::{self, Phase2Output};
use crate::scenario::ScenarioSet;

/// Run the robust search against the complete scenario set.
pub fn full_search<S: ScenarioSet + Sync + ?Sized>(
    ev: &Evaluator<'_>,
    set: &S,
    params: &Params,
    phase1: &Phase1Output,
) -> Phase2Output {
    phase2::run(ev, set, &set.all_indices(), params, phase1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DoubleLink;
    use crate::universe::FailureUniverse;
    use crate::{parallel, phase1};
    use dtr_cost::CostParams;
    use dtr_net::{NetworkBuilder, Point};
    use dtr_traffic::gravity;

    fn testbed() -> (dtr_net::Network, dtr_traffic::ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..5)
            .map(|i| b.add_node(Point::new(i as f64, 0.0)))
            .collect();
        for i in 0..5 {
            b.add_duplex_link(n[i], n[(i + 1) % 5], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[2], 1e6, 2e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2e6,
            ..gravity::GravityConfig::paper_default(5, 3)
        });
        (net, tm)
    }

    #[test]
    fn full_search_covers_all_failures() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(17);
        let p1 = phase1::run(&ev, &universe, &params);
        let out = full_search(&ev, &universe, &params, &p1);
        // Kfail reported over the complete universe.
        let recheck = parallel::sum_failure_costs(&ev, &out.best, &universe.scenarios(), 1);
        assert_eq!(recheck, out.best_kfail);
    }

    #[test]
    fn full_search_generalizes_to_other_sets() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let set = DoubleLink::sampled(&net, 6, 1);
        let params = Params::quick(4);
        let p1 = phase1::run(&ev, set.universe(), &params);
        let out = full_search(&ev, &set, &params, &p1);
        let recheck = parallel::sum_failure_costs(&ev, &out.best, &set.scenarios(), 1);
        assert_eq!(recheck, out.best_kfail);
    }
}
