//! Single-Topology Routing (STR) baseline — the "one-size-fits-all"
//! routing the paper's introduction contrasts DTR against.
//!
//! Traditional IGP routing gives every link **one** weight; both traffic
//! classes ride the same shortest paths. DTR's flexibility benefit
//! (§I, and the authors' earlier CoNEXT 2007 paper \[13\]) is precisely
//! that delay-sensitive traffic can follow low-propagation-delay paths
//! while throughput-sensitive traffic spreads over uncongested ones.
//! This module runs the *same* Phase-1 local search constrained to
//! `W^D_l = W^T_l` on every link, so the DTR-vs-STR gap is attributable
//! to the extra degree of freedom and not to search-budget differences.

use dtr_cost::{Evaluator, LexCost};
use dtr_routing::{Scenario, WeightSetting};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::params::Params;
use crate::search::{SearchStats, StopRule};
use crate::universe::FailureUniverse;

/// Result of the single-topology search.
#[derive(Clone, Debug)]
pub struct StrOutput {
    /// Best tied weight setting (`W^D == W^T` everywhere).
    pub best: WeightSetting,
    pub best_cost: LexCost,
    pub stats: SearchStats,
}

/// Apply one tied weight to both classes and both directions of the
/// physical link represented by `rep`.
fn set_tied(w: &mut WeightSetting, net: &dtr_net::Network, rep: dtr_net::LinkId, value: u32) {
    use dtr_routing::Class;
    for class in Class::ALL {
        w.set(class, rep, value);
        if let Some(r) = net.reverse_link(rep) {
            w.set(class, r, value);
        }
    }
}

/// A random *tied* weight setting.
fn random_tied(net: &dtr_net::Network, wmax: u32, rng: &mut StdRng) -> WeightSetting {
    let mut w = WeightSetting::uniform(net.num_links(), wmax);
    for rep in net.duplex_representatives() {
        set_tied(&mut w, net, rep, rng.gen_range(1..=wmax));
    }
    w
}

/// `true` if the setting is tied (single-topology) on every link.
pub fn is_tied(w: &WeightSetting) -> bool {
    use dtr_routing::Class;
    (0..w.num_links()).all(|i| {
        let l = dtr_net::LinkId::new(i);
        w.get(Class::Delay, l) == w.get(Class::Throughput, l)
    })
}

/// Phase-1-style local search over single-topology (tied) weights,
/// minimizing the same normal-conditions lexicographic cost. Uses the
/// same diversification / stopping machinery as the DTR search.
pub fn optimize_single_topology(
    ev: &Evaluator<'_>,
    universe: &FailureUniverse,
    params: &Params,
) -> StrOutput {
    params.validate();
    let net = ev.net();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5851_f42d_4c95_7f2d);

    let mut stats = SearchStats::default();
    let mut stop = StopRule::new(params.p1, params.c);

    let mut current = random_tied(net, params.wmax, &mut rng);
    let mut current_cost = ev.cost(&current, Scenario::Normal);
    stats.evaluations += 1;
    let mut best = current.clone();
    let mut best_cost = current_cost;

    let mut reps = universe.all_duplex.clone();
    let mut stale = 0usize;

    while stats.iterations < params.max_iterations {
        stats.iterations += 1;
        reps.shuffle(&mut rng);
        let mut improved = false;
        for &rep in &reps {
            let old = current.get(dtr_routing::Class::Delay, rep);
            let new = rng.gen_range(1..=params.wmax);
            if new == old {
                continue;
            }
            set_tied(&mut current, net, rep, new);
            let cand = ev.cost(&current, Scenario::Normal);
            stats.evaluations += 1;
            if cand.better_than(&current_cost) {
                current_cost = cand;
                improved = true;
                if cand.better_than(&best_cost) {
                    best = current.clone();
                    best_cost = cand;
                }
            } else {
                set_tied(&mut current, net, rep, old);
            }
        }
        stale = if improved { 0 } else { stale + 1 };
        if stale >= params.div_interval_1 {
            stats.diversifications += 1;
            stale = 0;
            if stop.record(best_cost) {
                break;
            }
            current = random_tied(net, params.wmax, &mut rng);
            current_cost = ev.cost(&current, Scenario::Normal);
            stats.evaluations += 1;
        }
    }

    debug_assert!(is_tied(&best));
    StrOutput {
        best,
        best_cost,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;
    use dtr_cost::CostParams;
    use dtr_net::{NetworkBuilder, Point};
    use dtr_traffic::gravity;

    fn testbed() -> (dtr_net::Network, dtr_traffic::ClassMatrices) {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..7)
            .map(|i| b.add_node(Point::new(i as f64, (i % 2) as f64)))
            .collect();
        for i in 0..7 {
            b.add_duplex_link(n[i], n[(i + 1) % 7], 1e6, 2e-3).unwrap();
        }
        b.add_duplex_link(n[0], n[3], 1e6, 8e-3).unwrap();
        b.add_duplex_link(n[1], n[5], 1e6, 8e-3).unwrap();
        let net = b.build().unwrap();
        let tm = gravity::generate(&gravity::GravityConfig {
            total_volume: 2.5e6,
            ..gravity::GravityConfig::paper_default(7, 3)
        });
        (net, tm)
    }

    #[test]
    fn str_solution_is_tied_and_locally_sane() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let out = optimize_single_topology(&ev, &universe, &Params::quick(3));
        assert!(is_tied(&out.best));
        assert_eq!(out.best_cost, ev.cost(&out.best, Scenario::Normal));
    }

    #[test]
    fn dtr_search_dominates_str_search() {
        // The flexibility claim: with the same budget, the DTR search can
        // only do better (its feasible set strictly contains all tied
        // settings). Heuristics introduce noise, so assert with a margin.
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let params = Params::quick(5);
        let dtr = phase1::run(&ev, &universe, &params);
        let single = optimize_single_topology(&ev, &universe, &params);
        // Lexicographic: DTR's lambda never worse; phi allowed 10% noise
        // when lambdas tie.
        assert!(
            dtr.best_cost.lambda <= single.best_cost.lambda + 1e-6,
            "DTR {} vs STR {}",
            dtr.best_cost,
            single.best_cost
        );
        if (dtr.best_cost.lambda - single.best_cost.lambda).abs() < 1e-6 {
            assert!(
                dtr.best_cost.phi <= single.best_cost.phi * 1.10,
                "DTR {} vs STR {}",
                dtr.best_cost,
                single.best_cost
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, tm) = testbed();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let universe = FailureUniverse::of(&net);
        let a = optimize_single_topology(&ev, &universe, &Params::quick(9));
        let b = optimize_single_topology(&ev, &universe, &Params::quick(9));
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn is_tied_detects_untied() {
        let (net, _) = testbed();
        let mut w = WeightSetting::uniform(net.num_links(), 20);
        assert!(is_tied(&w));
        w.set(dtr_routing::Class::Delay, dtr_net::LinkId::new(0), 5);
        assert!(!is_tied(&w));
    }
}
