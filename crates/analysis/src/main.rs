//! CLI for the determinism & hot-path static-analysis pass.
//!
//! Usage: `cargo run -p dtr-analysis -- --check [--root <workspace>]`
//!
//! Exits 0 when the tree is clean (all findings allowlisted, no stale
//! allowlist or hot-path registry entries); prints findings as
//! `path:line: [lint-id] message` and exits 1 otherwise.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dtr_analysis::{analyze_tree, Config};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut check = false;
    let mut verbose = false;
    let mut root = PathBuf::from(".");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--verbose" => verbose = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("dtr-analysis: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("dtr-analysis: unknown argument `{other}` (try --check)");
                return ExitCode::FAILURE;
            }
        }
    }
    if !check {
        eprintln!("dtr-analysis: nothing to do (pass --check)");
        return ExitCode::FAILURE;
    }
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "dtr-analysis: {} is not a workspace root (no Cargo.toml); use --root",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let config = match Config::load(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dtr-analysis: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match analyze_tree(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dtr-analysis: {e}");
            return ExitCode::FAILURE;
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    for e in &report.stale_allowlist {
        println!(
            "crates/analysis/allowlist.txt:{}: [stale-allowlist] entry `{}: {}: {}` \
             no longer matches any finding — remove it",
            e.defined_at, e.file, e.lint, e.snippet
        );
    }
    for h in &report.stale_hot_paths {
        println!(
            "crates/analysis/hot_paths.toml: [stale-hot-path] `{}` not found in {} — \
             update the registry",
            h.function, h.file
        );
    }
    if verbose {
        for f in &report.suppressed {
            eprintln!("allowlisted: {f}");
        }
    }
    eprintln!(
        "dtr-analysis: {} files scanned, {} finding(s), {} allowlisted, \
         {} stale allowlist entr(ies), {} stale hot-path entr(ies)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.stale_allowlist.len(),
        report.stale_hot_paths.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
