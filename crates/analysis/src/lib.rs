//! # dtr-analysis — determinism & hot-path static-analysis pass
//!
//! Every performance claim in this workspace rests on a bit-for-bit
//! determinism contract (parallel == serial, cached == uncached,
//! repair == full-route) and a zero-steady-state-allocation guarantee.
//! Both are enforced *dynamically* by the equivalence suites and the
//! counting allocator; this crate is the *static* counterpart: a
//! dependency-free, token-level scanner over `crates/*/src` and `src/`
//! that rejects the source patterns which can silently break those
//! contracts before any test seed happens to catch them.
//!
//! See `DETERMINISM.md` at the workspace root for the invariant
//! contract, how to run the pass locally, and how to extend the
//! hot-path registry and the allowlist.
//!
//! ## Lint families
//!
//! * **Determinism** — `det-hash-iter` (ordered iteration over
//!   `HashMap`/`HashSet` outside test code), `det-partial-sort`
//!   (`sort_by` on `partial_cmp` without a total tie-break key),
//!   `det-float-fold` (float `sum`/`fold` fed by a hash-collection
//!   iterator).
//! * **Hot-path allocation** — `hot-alloc`: the registry
//!   `crates/analysis/hot_paths.toml` lists functions the counting
//!   allocator already proves allocation-free; their bodies must stay
//!   textually free of `Vec::new`, `vec!`, `collect`, `to_vec`,
//!   `.clone()`, `format!`, `String::`, `to_string`, `to_owned` and
//!   `Box::new`.
//! * **Policy** — `policy-unsafe` (`#![forbid(unsafe_code)]` in every
//!   crate root), `policy-time` (`std::time`/`Instant` outside the
//!   bench crate), `policy-thread` (`thread::spawn`/`thread::scope`
//!   outside the two `parallel` modules).
//!
//! The scanner is hand-rolled (the build environment is offline, so no
//! `syn`): it understands line/block comments (nested), string / raw
//! string / char literals, and `#[cfg(test)]` regions, and blanks them
//! before matching, so patterns inside strings, docs or test code never
//! fire. Findings print as `path:line: [lint-id] message`; vetted
//! exceptions live in `crates/analysis/allowlist.txt` (every entry must
//! carry a justification comment and a line snippet — no blanket
//! file-level suppressions — and entries that stop matching fail the
//! pass as stale).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One analyzer hit, reported as `path:line: [lint-id] message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable lint identifier (`det-hash-iter`, ...).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Raw source text of the offending line (for allowlist matching).
    pub line_text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// All lint ids the pass can emit (allowlist entries must use one).
pub const LINT_IDS: &[&str] = &[
    "det-hash-iter",
    "det-partial-sort",
    "det-float-fold",
    "hot-alloc",
    "policy-unsafe",
    "policy-time",
    "policy-thread",
];

/// One registered allocation-free function (`hot_paths.toml` entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotPath {
    /// Workspace-relative file holding the function.
    pub file: String,
    /// Bare function name (matched as `fn <name>` outside test code).
    pub function: String,
}

/// One vetted exception (`allowlist.txt` entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative file the exception applies to.
    pub file: String,
    /// Lint id being suppressed.
    pub lint: String,
    /// Substring of the offending source line (never empty: a snippet is
    /// what keeps an entry from being a blanket file-level suppression).
    pub snippet: String,
    /// 1-based line in `allowlist.txt`, for stale-entry reporting.
    pub defined_at: usize,
}

/// Parsed configuration: hot-path registry + allowlist.
#[derive(Clone, Debug, Default)]
pub struct Config {
    pub hot_paths: Vec<HotPath>,
    pub allowlist: Vec<AllowEntry>,
}

/// Outcome of an [`analyze_tree`] run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings not covered by the allowlist, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry.
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that suppressed nothing (fail the pass).
    pub stale_allowlist: Vec<AllowEntry>,
    /// Registry entries whose function no longer exists (fail the pass).
    pub stale_hot_paths: Vec<HotPath>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the pass should exit 0.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
            && self.stale_allowlist.is_empty()
            && self.stale_hot_paths.is_empty()
    }
}

/// Errors loading configuration or walking the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ConfigError {}

// ---------------------------------------------------------------------
// Source scanning: comment/string blanking and #[cfg(test)] regions.
// ---------------------------------------------------------------------

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Blank comments and string/char-literal *contents* (and the literal
/// delimiters themselves) with spaces, preserving byte offsets and
/// newlines, so later token matching can never fire inside them.
///
/// Handles `//` line comments, nested `/* */` block comments, `"..."`
/// with escapes, raw strings `r"..."` / `r#"..."#` (any `#` depth),
/// byte/char literals, and lifetimes (`'a` is *not* a char literal).
pub fn clean_source(src: &str) -> Vec<u8> {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for v in &mut out[from..to] {
            if *v != b'\n' {
                *v = b' ';
            }
        }
    };
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |p| i + p);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b'
                if {
                    // Raw (byte) string: r"..." / r#"..."# / br"..."
                    let mut j = i + 1;
                    if b[i] == b'b' && j < b.len() && b[j] == b'r' {
                        j += 1;
                    } else if b[i] == b'b' {
                        j = usize::MAX; // b"..." handled by the '"' arm
                    }
                    j != usize::MAX
                        && (i == 0 || !is_ident_char(b[i - 1]))
                        && j < b.len()
                        && (b[j] == b'"' || b[j] == b'#')
                } =>
            {
                let start = i;
                let mut j = i + 1;
                if b[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    // Scan for `"` followed by `hashes` hash marks.
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    blank(&mut out, start, j);
                    i = j;
                } else {
                    i += 1; // `r#ident` raw identifier or bare `r`/`b`
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i.min(b.len()));
            }
            b'\'' => {
                // Char literal vs lifetime: a char literal closes with a
                // `'` after one (possibly escaped) character.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    let end = (j + 1).min(b.len());
                    blank(&mut out, i, end);
                    i = end;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1; // lifetime
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Byte ranges covered by `#[cfg(test)]` items (attribute through the
/// end of the annotated item, including `mod tests { ... }` bodies).
pub fn test_regions(clean: &[u8]) -> Vec<(usize, usize)> {
    let text = clean;
    let needle = b"#[cfg(test)]";
    let mut regions = Vec::new();
    let mut i = 0;
    while let Some(p) = find_from(text, needle, i) {
        let start = p;
        let mut j = p + needle.len();
        // Skip whitespace and any further attributes before the item.
        loop {
            while j < text.len() && (text[j] as char).is_whitespace() {
                j += 1;
            }
            if j < text.len() && text[j] == b'#' {
                // Skip the bracketed attribute.
                while j < text.len() && text[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        // The item ends at the first `;` at depth 0 (e.g. `use` under
        // cfg) or at the brace matching its first `{`.
        let mut end = text.len();
        let mut k = j;
        while k < text.len() {
            match text[k] {
                b';' => {
                    end = k + 1;
                    break;
                }
                b'{' => {
                    end = match_brace(text, k);
                    break;
                }
                _ => k += 1,
            }
        }
        regions.push((start, end));
        i = end.max(p + 1);
    }
    regions
}

/// Position just past the brace matching `text[open]` (`text[open]`
/// must be `{`); `text.len()` if unbalanced.
fn match_brace(text: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    text.len()
}

fn find_from(text: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= text.len() || needle.is_empty() {
        return None;
    }
    text[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Find `needle` as a whole word (ident-boundary on both sides).
fn find_word(text: &[u8], needle: &str, from: usize) -> Option<usize> {
    let nb = needle.as_bytes();
    let mut i = from;
    while let Some(p) = find_from(text, nb, i) {
        let before_ok = p == 0 || !is_ident_char(text[p - 1]);
        let after = p + nb.len();
        let after_ok = after >= text.len() || !is_ident_char(text[after]);
        if before_ok && after_ok {
            return Some(p);
        }
        i = p + 1;
    }
    None
}

fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos.min(src.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

fn line_text(src: &str, pos: usize) -> String {
    let b = src.as_bytes();
    let pos = pos.min(b.len());
    let start = b[..pos]
        .iter()
        .rposition(|&c| c == b'\n')
        .map_or(0, |p| p + 1);
    let end = b[pos..]
        .iter()
        .position(|&c| c == b'\n')
        .map_or(b.len(), |p| pos + p);
    src[start..end].to_string()
}

fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(s, e)| pos >= s && pos < e)
}

fn skip_ws(text: &[u8], mut i: usize) -> usize {
    while i < text.len() && (text[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

fn read_ident(text: &[u8], mut i: usize) -> (usize, String) {
    let start = i;
    while i < text.len() && is_ident_char(text[i]) {
        i += 1;
    }
    (i, String::from_utf8_lossy(&text[start..i]).into_owned())
}

// ---------------------------------------------------------------------
// Per-file analysis.
// ---------------------------------------------------------------------

/// The role a file plays for the policy lints, derived from its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileRole {
    /// `lib.rs` / `main.rs` / `src/bin/*.rs`: must carry
    /// `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// Bench crate: wall-clock measurement is its purpose.
    pub time_allowed: bool,
    /// One of the two `parallel` modules: the only sanctioned homes of
    /// scoped thread fan-out.
    pub threads_allowed: bool,
}

/// Derive the [`FileRole`] of a workspace-relative path.
pub fn role_of(rel: &str) -> FileRole {
    let file_name = rel.rsplit('/').next().unwrap_or(rel);
    let crate_root = file_name == "lib.rs" && rel.ends_with("src/lib.rs")
        || file_name == "main.rs" && rel.ends_with("src/main.rs")
        || rel.contains("/src/bin/");
    FileRole {
        crate_root,
        time_allowed: rel.starts_with("crates/bench/"),
        threads_allowed: rel == "crates/core/src/parallel.rs"
            || rel == "crates/mtr/src/parallel.rs",
    }
}

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

const HOT_ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "vec!",
    "collect",
    "to_vec",
    ".clone()",
    "format!",
    "String::",
    "to_string",
    "to_owned",
    "Box::new",
];

/// Analyze one file; `rel` is its workspace-relative path. `hot_fns`
/// are the registry functions expected in this file; each one found
/// (outside test code) is recorded in `hot_seen` by registry index.
pub fn analyze_file(
    rel: &str,
    src: &str,
    hot_fns: &[(usize, &str)],
    hot_seen: &mut [bool],
) -> Vec<Finding> {
    let clean = clean_source(src);
    let regions = test_regions(&clean);
    let role = role_of(rel);
    let mut out = Vec::new();
    let mut push = |pos: usize, lint: &'static str, message: String| {
        out.push(Finding {
            file: rel.to_string(),
            line: line_of(src, pos),
            lint,
            message,
            line_text: line_text(src, pos).trim().to_string(),
        });
    };

    // --- policy-unsafe: crate roots must forbid unsafe code. ---
    if role.crate_root && !src.contains("#![forbid(unsafe_code)]") {
        push(
            0,
            "policy-unsafe",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    // --- determinism: hash-collection iteration + float folds. ---
    let hash_vars = hash_collection_vars(&clean);
    for (var, kind) in &hash_vars {
        let mut i = 0;
        while let Some(p) = find_word(&clean, var, i) {
            i = p + var.len();
            if in_regions(&regions, p) {
                continue;
            }
            // `for x in var` / `for x in &var` / `&mut var`.
            let mut before = p;
            while before > 0
                && ((clean[before - 1] as char).is_whitespace()
                    || clean[before - 1] == b'&'
                    || clean[before - 1] == b'*')
            {
                before -= 1;
            }
            let for_loop = before >= 2
                && &clean[before - 2..before] == b"in"
                && (before == 2 || !is_ident_char(clean[before - 3]))
                // `for x in mut_var` — make sure this `in` belongs to a
                // `for`, not e.g. a doc word (comments are blanked, so
                // any bare `in` here is the keyword).
                ;
            // `var.method()` with an ordered-iteration method.
            let after = skip_ws(&clean, i);
            let mut method = String::new();
            let mut chain_end = after;
            if after < clean.len() && clean[after] == b'.' {
                let (e, m) = read_ident(&clean, skip_ws(&clean, after + 1));
                method = m;
                chain_end = e;
            }
            let iter_call = HASH_ITER_METHODS.contains(&method.as_str());
            if !for_loop && !iter_call {
                continue;
            }
            let how = if for_loop {
                "`for` loop".to_string()
            } else {
                format!("`.{method}()`")
            };
            push(
                p,
                "det-hash-iter",
                format!(
                    "iteration over {kind} `{var}` ({how}) outside test code: \
                     hash order is nondeterministic across processes; use \
                     `BTreeMap`/sorted keys or add a justified allowlist entry"
                ),
            );
            // Unordered float reduction fed by the same chain?
            let stmt_end = clean[chain_end..]
                .iter()
                .position(|&c| c == b';' || c == b'{')
                .map_or(clean.len(), |q| chain_end + q);
            let chain = &clean[chain_end..stmt_end];
            if find_word(chain, "sum", 0).is_some() || find_word(chain, "fold", 0).is_some() {
                push(
                    p,
                    "det-float-fold",
                    format!(
                        "float reduction (`sum`/`fold`) fed by the {kind} `{var}` \
                         iterator: the accumulation order is nondeterministic"
                    ),
                );
            }
        }
    }

    // --- det-partial-sort: sort_by on partial_cmp without tie-break. ---
    for sort_fn in ["sort_by", "sort_unstable_by"] {
        let mut i = 0;
        while let Some(p) = find_word(&clean, sort_fn, i) {
            i = p + sort_fn.len();
            if in_regions(&regions, p) {
                continue;
            }
            let open = skip_ws(&clean, i);
            if open >= clean.len() || clean[open] != b'(' {
                continue;
            }
            let close = match_paren(&clean, open);
            let body = &clean[open..close];
            let has_partial = find_word(body, "partial_cmp", 0).is_some();
            let has_total =
                find_word(body, "total_cmp", 0).is_some() || find_from(body, b".then", 0).is_some();
            if has_partial && !has_total {
                push(
                    p,
                    "det-partial-sort",
                    format!(
                        "`{sort_fn}` comparator uses `partial_cmp` without a total \
                         tie-break key: ties keep input order (stable) or become \
                         unspecified (unstable); use `total_cmp` and/or `.then(..)` \
                         with an index key"
                    ),
                );
            }
            i = close;
        }
    }

    // --- hot-alloc: registered functions stay allocation-free. ---
    for &(idx, name) in hot_fns {
        let mut i = 0;
        while let Some(p) = find_word(&clean, "fn", i) {
            i = p + 2;
            let after = skip_ws(&clean, i);
            let (e, ident) = read_ident(&clean, after);
            if ident != name {
                continue;
            }
            if in_regions(&regions, p) {
                continue;
            }
            let Some(open) = clean[e..].iter().position(|&c| c == b'{').map(|q| e + q) else {
                continue;
            };
            let close = match_brace(&clean, open);
            hot_seen[idx] = true;
            for pat in HOT_ALLOC_PATTERNS {
                let mut j = open;
                let ident_like = pat.bytes().all(is_ident_char);
                loop {
                    let hit = if ident_like {
                        find_word(&clean[..close], pat, j)
                    } else {
                        find_from(&clean[..close], pat.as_bytes(), j)
                    };
                    let Some(h) = hit else { break };
                    j = h + pat.len();
                    push(
                        h,
                        "hot-alloc",
                        format!(
                            "`{pat}` inside hot-path function `{name}` (registered \
                             allocation-free in crates/analysis/hot_paths.toml)"
                        ),
                    );
                }
            }
            i = close;
        }
    }

    // --- policy-time / policy-thread. ---
    if !role.time_allowed {
        for pat in ["std::time", "Instant"] {
            let mut i = 0;
            while let Some(p) = find_word(&clean, pat, i) {
                i = p + pat.len();
                if in_regions(&regions, p)
                    || (pat == "Instant" && covered_by(&clean, p, "std::time"))
                {
                    continue; // `std::time::Instant` reports once
                }
                push(
                    p,
                    "policy-time",
                    format!(
                        "`{pat}` outside the bench crate: wall-clock must never \
                         feed optimization logic (allowlist reporting-only uses)"
                    ),
                );
            }
        }
    }
    if !role.threads_allowed {
        for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
            let mut i = 0;
            while let Some(p) = find_from(&clean, pat.as_bytes(), i) {
                i = p + pat.len();
                if in_regions(&regions, p) {
                    continue;
                }
                push(
                    p,
                    "policy-thread",
                    format!(
                        "`{pat}` outside the sanctioned parallel modules \
                         (crates/core/src/parallel.rs, crates/mtr/src/parallel.rs)"
                    ),
                );
            }
        }
    }

    out
}

/// `true` if `pos` falls inside an occurrence of `outer` (used to
/// collapse `std::time::Instant` into a single finding).
fn covered_by(clean: &[u8], pos: usize, outer: &str) -> bool {
    let start = pos.saturating_sub(outer.len() + 2);
    find_from(&clean[..pos.min(clean.len())], outer.as_bytes(), start).is_some()
}

/// Position just past the paren matching `text[open]`.
fn match_paren(text: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    text.len()
}

/// Identifiers bound to `HashMap`/`HashSet` in this file: `let` bindings
/// whose initializer or type names a hash collection, and struct fields
/// or typed parameters declared `name: HashMap<..>`.
fn hash_collection_vars(clean: &[u8]) -> Vec<(String, &'static str)> {
    let mut vars: BTreeMap<String, &'static str> = BTreeMap::new();
    for (ty, kind) in [("HashMap", "HashMap"), ("HashSet", "HashSet")] {
        let mut i = 0;
        while let Some(p) = find_word(clean, ty, i) {
            i = p + ty.len();
            // Statement start: after the previous `;`, `{` or `}`.
            let stmt = clean[..p]
                .iter()
                .rposition(|&c| c == b';' || c == b'{' || c == b'}')
                .map_or(0, |q| q + 1);
            let seg = &clean[stmt..p];
            if find_word(seg, "use", 0).is_some() {
                continue; // import, not a binding
            }
            if let Some(l) = find_word(seg, "let", 0) {
                let mut j = skip_ws(seg, l + 3);
                let (e, first) = read_ident(seg, j);
                if first == "mut" {
                    j = skip_ws(seg, e);
                } else {
                    j = l + 3;
                    j = skip_ws(seg, j);
                }
                let (_, name) = read_ident(seg, j);
                if !name.is_empty() {
                    vars.insert(name, kind);
                }
                continue;
            }
            // Field / typed-param form: `name : ... HashMap` with a `:`
            // directly between the ident and the type.
            if let Some(colon) = seg.iter().rposition(|&c| c == b':') {
                // Reject `::` paths (`std::collections::HashMap`).
                if colon > 0 && seg[colon - 1] == b':' {
                    continue;
                }
                let mut k = colon;
                while k > 0 && (seg[k - 1] as char).is_whitespace() {
                    k -= 1;
                }
                let start = {
                    let mut s = k;
                    while s > 0 && is_ident_char(seg[s - 1]) {
                        s -= 1;
                    }
                    s
                };
                if start < k {
                    let name = String::from_utf8_lossy(&seg[start..k]).into_owned();
                    vars.insert(name, kind);
                }
            }
        }
    }
    vars.into_iter().collect()
}

// ---------------------------------------------------------------------
// Configuration parsing (hand-rolled: the build env is offline).
// ---------------------------------------------------------------------

/// Parse the `hot_paths.toml` registry: a sequence of `[[hot_path]]`
/// tables with string-valued `file` and `function` keys (a strict
/// subset of TOML; anything else is an error).
pub fn parse_hot_paths(text: &str) -> Result<Vec<HotPath>, ConfigError> {
    let mut out: Vec<HotPath> = Vec::new();
    let mut current: Option<(Option<String>, Option<String>)> = None;
    let finish = |cur: &mut Option<(Option<String>, Option<String>)>,
                  out: &mut Vec<HotPath>,
                  lno: usize|
     -> Result<(), ConfigError> {
        if let Some((f, func)) = cur.take() {
            match (f, func) {
                (Some(file), Some(function)) => out.push(HotPath { file, function }),
                _ => {
                    return Err(ConfigError(format!(
                        "hot_paths.toml:{lno}: [[hot_path]] needs both `file` and `function`"
                    )))
                }
            }
        }
        Ok(())
    };
    for (lno, raw) in text.lines().enumerate() {
        let lno = lno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[hot_path]]" {
            finish(&mut current, &mut out, lno)?;
            current = Some((None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError(format!(
                "hot_paths.toml:{lno}: unrecognized line `{raw}`"
            )));
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .map(str::to_string)
        else {
            return Err(ConfigError(format!(
                "hot_paths.toml:{lno}: `{key}` must be a quoted string"
            )));
        };
        let Some(entry) = current.as_mut() else {
            return Err(ConfigError(format!(
                "hot_paths.toml:{lno}: key outside a [[hot_path]] table"
            )));
        };
        match key {
            "file" => entry.0 = Some(value),
            "function" => entry.1 = Some(value),
            _ => {
                return Err(ConfigError(format!(
                    "hot_paths.toml:{lno}: unknown key `{key}`"
                )))
            }
        }
    }
    finish(&mut current, &mut out, text.lines().count())?;
    Ok(out)
}

/// Parse `allowlist.txt`. Entries are `file: lint-id: line-snippet`;
/// every entry (or contiguous entry group) must be immediately preceded
/// by a `#` justification comment, the lint id must exist, and the
/// snippet must be non-empty (no blanket file-level suppressions).
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, ConfigError> {
    let mut out = Vec::new();
    let mut prev_commented = false;
    for (lno, raw) in text.lines().enumerate() {
        let lno = lno + 1;
        let line = raw.trim();
        if line.is_empty() {
            prev_commented = false;
            continue;
        }
        if line.starts_with('#') {
            prev_commented = true;
            continue;
        }
        let Some((file, rest)) = line.split_once(": ") else {
            return Err(ConfigError(format!(
                "allowlist.txt:{lno}: expected `file: lint-id: snippet`, got `{raw}`"
            )));
        };
        let Some((lint, snippet)) = rest.split_once(": ") else {
            return Err(ConfigError(format!(
                "allowlist.txt:{lno}: expected `file: lint-id: snippet`, got `{raw}`"
            )));
        };
        let (file, lint, snippet) = (file.trim(), lint.trim(), snippet.trim());
        if !LINT_IDS.contains(&lint) {
            return Err(ConfigError(format!(
                "allowlist.txt:{lno}: unknown lint id `{lint}`"
            )));
        }
        if snippet.is_empty() {
            return Err(ConfigError(format!(
                "allowlist.txt:{lno}: empty snippet — blanket file-level \
                 suppressions are not allowed"
            )));
        }
        if !prev_commented {
            return Err(ConfigError(format!(
                "allowlist.txt:{lno}: entry is missing a `#` justification \
                 comment on the line(s) above"
            )));
        }
        out.push(AllowEntry {
            file: file.to_string(),
            lint: lint.to_string(),
            snippet: snippet.to_string(),
            defined_at: lno,
        });
    }
    Ok(out)
}

impl Config {
    /// Load the registry and allowlist from their canonical locations
    /// under `root` (`crates/analysis/{hot_paths.toml,allowlist.txt}`).
    /// Missing files are treated as empty.
    pub fn load(root: &Path) -> Result<Config, ConfigError> {
        let read = |p: PathBuf| -> Result<String, ConfigError> {
            if p.exists() {
                fs::read_to_string(&p)
                    .map_err(|e| ConfigError(format!("cannot read {}: {e}", p.display())))
            } else {
                Ok(String::new())
            }
        };
        Ok(Config {
            hot_paths: parse_hot_paths(&read(root.join("crates/analysis/hot_paths.toml"))?)?,
            allowlist: parse_allowlist(&read(root.join("crates/analysis/allowlist.txt"))?)?,
        })
    }
}

// ---------------------------------------------------------------------
// Tree walking and the full pass.
// ---------------------------------------------------------------------

/// Workspace-relative paths of every `.rs` file under `src/` and
/// `crates/*/src/`, sorted (deterministic output order).
pub fn source_files(root: &Path) -> Result<Vec<String>, ConfigError> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", crates_dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for m in members {
            roots.push(m.join("src"));
        }
    }
    for dir in roots {
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    let mut rels: Vec<String> = out
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ConfigError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| ConfigError(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Run the full pass over the workspace at `root` with `config`.
pub fn analyze_tree(root: &Path, config: &Config) -> Result<Report, ConfigError> {
    let files = source_files(root)?;
    let mut hot_seen = vec![false; config.hot_paths.len()];
    let mut all: Vec<Finding> = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))
            .map_err(|e| ConfigError(format!("cannot read {rel}: {e}")))?;
        let hot_fns: Vec<(usize, &str)> = config
            .hot_paths
            .iter()
            .enumerate()
            .filter(|(_, h)| h.file == *rel)
            .map(|(i, h)| (i, h.function.as_str()))
            .collect();
        all.extend(analyze_file(rel, &src, &hot_fns, &mut hot_seen));
    }
    all.sort_by(|a, b| {
        (&a.file, a.line, a.lint)
            .cmp(&(&b.file, b.line, b.lint))
            .then_with(|| a.message.cmp(&b.message))
    });

    let mut used = vec![0usize; config.allowlist.len()];
    let (mut findings, mut suppressed) = (Vec::new(), Vec::new());
    for f in all {
        let hit = config.allowlist.iter().enumerate().find(|(_, e)| {
            e.file == f.file && e.lint == f.lint && f.line_text.contains(&e.snippet)
        });
        match hit {
            Some((i, _)) => {
                used[i] += 1;
                suppressed.push(f);
            }
            None => findings.push(f),
        }
    }
    let stale_allowlist = config
        .allowlist
        .iter()
        .zip(&used)
        .filter(|(_, &u)| u == 0)
        .map(|(e, _)| e.clone())
        .collect();
    let stale_hot_paths = config
        .hot_paths
        .iter()
        .zip(&hot_seen)
        .filter(|(_, &s)| !s)
        .map(|(h, _)| h.clone())
        .collect();
    Ok(Report {
        findings,
        suppressed,
        stale_allowlist,
        stale_hot_paths,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaning_blanks_comments_strings_and_chars() {
        let src = r##"let a = "HashMap in a string"; // HashMap in a comment
/* HashMap /* nested */ still comment */ let c = 'x';
let r = r#"raw HashMap"#; let lt: &'static str = "s";"##;
        let clean = clean_source(src);
        assert!(find_word(&clean, "HashMap", 0).is_none());
        assert!(
            find_word(&clean, "static", 0).is_some(),
            "lifetime survives"
        );
        assert_eq!(clean.len(), src.len(), "offsets preserved");
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_items() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn x() {}\n}\nfn tail() {}\n";
        let clean = clean_source(src);
        let r = test_regions(&clean);
        assert_eq!(r.len(), 1);
        let inside = src.find("fn x").unwrap();
        let after = src.find("fn tail").unwrap();
        assert!(in_regions(&r, inside));
        assert!(!in_regions(&r, after));
    }

    #[test]
    fn hash_iteration_flagged_outside_tests_only() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, u32>) -> u32 {\n\
                       let mut s = 0;\n\
                       for (_, v) in &m { s += v; }\n\
                       s\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g(m: super::HashMap<u32, u32>) { for _ in m.keys() {} }\n\
                   }\n";
        let f = analyze_file("crates/x/src/a.rs", src, &[], &mut []);
        let hash: Vec<_> = f.iter().filter(|f| f.lint == "det-hash-iter").collect();
        assert_eq!(hash.len(), 1, "{f:?}");
        assert_eq!(hash[0].line, 4);
    }

    #[test]
    fn lookup_only_hash_use_is_clean() {
        let src = "use std::collections::HashMap;\n\
                   struct S { index: HashMap<u32, u32> }\n\
                   impl S { fn get(&self, k: u32) -> Option<u32> { self.index.get(&k).copied() } }\n";
        let f = analyze_file("crates/x/src/a.rs", src, &[], &mut []);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_fold_fired_by_hash_fed_sum() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n";
        let f = analyze_file("crates/x/src/a.rs", src, &[], &mut []);
        assert!(f.iter().any(|f| f.lint == "det-float-fold"), "{f:?}");
        assert!(f.iter().any(|f| f.lint == "det-hash-iter"));
    }

    #[test]
    fn partial_sort_requires_total_key() {
        let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let good = "fn f(v: &mut Vec<f64>) { v.sort_unstable_by(f64::total_cmp); }\n\
                    fn g(v: &mut Vec<(f64, u32)>) {\n\
                        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));\n\
                    }\n";
        assert_eq!(
            analyze_file("crates/x/src/a.rs", bad, &[], &mut [])
                .iter()
                .filter(|f| f.lint == "det-partial-sort")
                .count(),
            1
        );
        assert!(analyze_file("crates/x/src/a.rs", good, &[], &mut []).is_empty());
    }

    #[test]
    fn hot_alloc_scans_only_registered_bodies() {
        let src = "fn cold() { let _v: Vec<u32> = (0..3).collect(); }\n\
                   fn hot_kernel(dst: &mut [u32]) {\n\
                       let v = dst.to_vec();\n\
                       dst[0] = v[0];\n\
                   }\n";
        let mut seen = vec![false];
        let f = analyze_file("crates/x/src/a.rs", src, &[(0, "hot_kernel")], &mut seen);
        assert!(seen[0]);
        assert_eq!(
            f.iter().filter(|f| f.lint == "hot-alloc").count(),
            1,
            "{f:?}"
        );
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn policy_lints_respect_roles() {
        let src = "#![forbid(unsafe_code)]\n\
                   use std::time::Instant;\n\
                   fn f() { std::thread::spawn(|| ()); }\n";
        let in_core = analyze_file("crates/x/src/lib.rs", src, &[], &mut []);
        assert_eq!(
            in_core.iter().filter(|f| f.lint == "policy-time").count(),
            1,
            "std::time::Instant reports once: {in_core:?}"
        );
        assert_eq!(
            in_core.iter().filter(|f| f.lint == "policy-thread").count(),
            1
        );
        let in_bench = analyze_file("crates/bench/src/lib.rs", src, &[], &mut []);
        assert!(in_bench.iter().all(|f| f.lint != "policy-time"));
        let in_par = analyze_file("crates/core/src/parallel.rs", src, &[], &mut []);
        assert!(in_par.iter().all(|f| f.lint != "policy-thread"));
    }

    #[test]
    fn missing_forbid_unsafe_flagged_on_crate_roots_only() {
        let src = "pub fn f() {}\n";
        let root = analyze_file("crates/x/src/lib.rs", src, &[], &mut []);
        assert_eq!(root.iter().filter(|f| f.lint == "policy-unsafe").count(), 1);
        let module = analyze_file("crates/x/src/m.rs", src, &[], &mut []);
        assert!(module.is_empty());
        let bin = analyze_file("crates/x/src/bin/tool.rs", src, &[], &mut []);
        assert_eq!(bin.iter().filter(|f| f.lint == "policy-unsafe").count(), 1);
    }

    #[test]
    fn hot_paths_toml_round_trip_and_errors() {
        let ok = "# registry\n[[hot_path]]\nfile = \"a.rs\"\nfunction = \"f\"\n\n\
                  [[hot_path]]\nfile = \"b.rs\"\nfunction = \"g\"\n";
        let hp = parse_hot_paths(ok).unwrap();
        assert_eq!(hp.len(), 2);
        assert_eq!(hp[1].function, "g");
        assert!(parse_hot_paths("[[hot_path]]\nfile = \"a.rs\"\n").is_err());
        assert!(parse_hot_paths("file = \"a.rs\"\n").is_err());
        assert!(parse_hot_paths("[[hot_path]]\nfile = unquoted\n").is_err());
    }

    #[test]
    fn allowlist_requires_comment_snippet_and_known_lint() {
        let ok = "# timing is reporting-only\ncrates/x/src/a.rs: policy-time: Instant::now\n";
        assert_eq!(parse_allowlist(ok).unwrap().len(), 1);
        assert!(parse_allowlist("crates/x/src/a.rs: policy-time: Instant::now\n").is_err());
        assert!(parse_allowlist("# c\ncrates/x/src/a.rs: no-such-lint: x\n").is_err());
        assert!(parse_allowlist("# c\ncrates/x/src/a.rs: policy-time: \n").is_err());
    }
}
