//! det-float-fold fixture: a float reduction fed directly by a hash
//! iterator must fire (alongside the underlying det-hash-iter).

use std::collections::HashMap;

pub fn total(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>()
}
