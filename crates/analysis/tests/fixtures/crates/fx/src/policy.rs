//! policy fixture: wall-clock and thread spawns outside their
//! sanctioned homes must fire.

pub fn timed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn fanout() {
    std::thread::spawn(|| {}).join().unwrap();
}
