//! hot-alloc fixture: allocation inside the registered kernel must
//! fire; the same pattern in an unregistered function must not.

pub fn hot_kernel(dst: &mut [u32], src: &[u32]) {
    let staged = src.to_vec();
    for (d, s) in dst.iter_mut().zip(&staged) {
        *d = *s;
    }
}

pub fn cold_helper(src: &[u32]) -> Vec<u32> {
    src.to_vec()
}
