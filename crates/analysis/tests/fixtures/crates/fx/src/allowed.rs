//! Allowlist fixture: the timing line below is vetted in the fixture
//! allowlist and must land in `suppressed`, not `findings`.

pub fn report_duration() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
