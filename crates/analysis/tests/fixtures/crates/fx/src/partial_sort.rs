//! det-partial-sort fixture: a partial_cmp comparator without a total
//! tie-break key must fire; total_cmp / .then forms must not.

pub fn rank(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
}

pub fn rank_total(v: &mut [f64]) {
    v.sort_unstable_by(f64::total_cmp);
}

pub fn rank_tiebreak(v: &mut [(f64, u32)]) {
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
}
