//! det-hash-iter fixture: ordered iteration over a hash map outside
//! test code must fire; lookups and test-region iteration must not.

use std::collections::HashMap;

pub fn sum_values(m: &HashMap<u32, u32>) -> u32 {
    let mut s = 0;
    for (_, v) in m {
        s += v;
    }
    s
}

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn iteration_in_tests_is_fine() {
        let m: HashMap<u32, u32> = HashMap::new();
        for _ in m.keys() {}
    }
}
