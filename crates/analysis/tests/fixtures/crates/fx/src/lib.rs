//! Fixture crate root: deliberately missing the forbid(unsafe_code)
//! attribute so policy-unsafe fires here (line 1).

pub mod allowed;
pub mod float_fold;
pub mod hash_iter;
pub mod hot_alloc;
pub mod partial_sort;
pub mod policy;
