//! Integration proof of the static pass, on two trees:
//!
//! * `tests/fixtures/` — a miniature workspace with exactly one known-bad
//!   site per lint family, plus a test-region and an allowlisted line
//!   that must both be skipped; each lint must fire at its site and
//!   nowhere else.
//! * the real workspace — must be clean (the same invariant CI gates
//!   with `cargo run -p dtr-analysis -- --check`).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use dtr_analysis::{analyze_tree, AllowEntry, Config, HotPath, Report};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_report() -> Report {
    let root = fixture_root();
    let config = Config::load(&root).expect("fixture config parses");
    analyze_tree(&root, &config).expect("fixture tree analyzes")
}

#[test]
fn every_lint_family_fires_exactly_at_its_fixture_site() {
    let report = fixture_report();
    let got: Vec<(&str, usize, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.lint))
        .collect();
    // One known-bad site per lint family, and nothing else — in the
    // pass's deterministic (file, line, lint) output order.
    let want = vec![
        ("crates/fx/src/float_fold.rs", 7, "det-float-fold"),
        ("crates/fx/src/float_fold.rs", 7, "det-hash-iter"),
        ("crates/fx/src/hash_iter.rs", 8, "det-hash-iter"),
        ("crates/fx/src/hot_alloc.rs", 5, "hot-alloc"),
        ("crates/fx/src/lib.rs", 1, "policy-unsafe"),
        ("crates/fx/src/partial_sort.rs", 5, "det-partial-sort"),
        ("crates/fx/src/policy.rs", 5, "policy-time"),
        ("crates/fx/src/policy.rs", 10, "policy-thread"),
    ];
    assert_eq!(got, want, "findings: {:#?}", report.findings);
}

#[test]
fn test_regions_and_allowlisted_lines_are_skipped() {
    let report = fixture_report();
    // hash_iter.rs iterates a HashMap inside its #[cfg(test)] mod
    // (lines 18..): no finding may land there.
    assert!(
        report
            .findings
            .iter()
            .all(|f| !(f.file.ends_with("hash_iter.rs") && f.line >= 18)),
        "test-region finding leaked: {:#?}",
        report.findings
    );
    // allowed.rs's vetted timing line lands in `suppressed`, not
    // `findings`, and is the only suppression the fixture needs.
    assert!(report
        .findings
        .iter()
        .all(|f| !f.file.ends_with("allowed.rs")));
    let sup: Vec<(&str, usize, &str)> = report
        .suppressed
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.lint))
        .collect();
    assert_eq!(sup, vec![("crates/fx/src/allowed.rs", 5, "policy-time")]);
    // The fixture config is fully exercised: nothing stale.
    assert!(
        report.stale_allowlist.is_empty(),
        "{:?}",
        report.stale_allowlist
    );
    assert!(
        report.stale_hot_paths.is_empty(),
        "{:?}",
        report.stale_hot_paths
    );
}

#[test]
fn stale_config_entries_fail_the_pass() {
    let root = fixture_root();
    let mut config = Config::load(&root).expect("fixture config parses");
    config.allowlist.push(AllowEntry {
        file: "crates/fx/src/policy.rs".into(),
        lint: "policy-thread".into(),
        snippet: "no such line".into(),
        defined_at: 99,
    });
    config.hot_paths.push(HotPath {
        file: "crates/fx/src/hot_alloc.rs".into(),
        function: "vanished_kernel".into(),
    });
    let report = analyze_tree(&root, &config).expect("fixture tree analyzes");
    assert_eq!(
        report.stale_allowlist.len(),
        1,
        "{:?}",
        report.stale_allowlist
    );
    assert_eq!(report.stale_allowlist[0].defined_at, 99);
    assert_eq!(
        report.stale_hot_paths.len(),
        1,
        "{:?}",
        report.stale_hot_paths
    );
    assert_eq!(report.stale_hot_paths[0].function, "vanished_kernel");
    assert!(!report.is_clean());
}

#[test]
fn real_workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = Config::load(&root).expect("workspace config parses");
    let report = analyze_tree(&root, &config).expect("workspace analyzes");
    assert!(report.files_scanned > 50, "walker missed the tree");
    assert!(
        report.is_clean(),
        "findings: {:#?}\nstale allowlist: {:?}\nstale hot paths: {:?}",
        report.findings,
        report.stale_allowlist,
        report.stale_hot_paths
    );
}
