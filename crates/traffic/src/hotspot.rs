//! Hot-spot traffic-surge model (§V-F).
//!
//! "The impact of sporadic incidents is captured by using a hot-spot model
//! that allows traffic surges to (upload) or from (download) a small set of
//! (server) nodes": select a few servers, assign client nodes to them, and
//! scale the client↔server demands by factors `ν, µ > 1` (the paper draws
//! both uniformly from \[2, 6\], i.e. 100–500 % surges).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::classes::ClassMatrices;

/// Surge direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Clients push to servers: demands `client -> server` are scaled.
    Upload,
    /// Clients pull from servers: demands `server -> client` are scaled.
    Download,
}

/// Hot-spot model parameters (paper values in §V-F: 10 % servers, 50 %
/// clients, factors uniform in \[2, 6\]).
#[derive(Clone, Copy, Debug)]
pub struct HotspotConfig {
    /// Fraction of nodes acting as servers (rounded up, at least 1).
    pub server_fraction: f64,
    /// Fraction of nodes acting as clients (rounded up, at least 1).
    pub client_fraction: f64,
    /// Scale factors drawn uniformly from `[factor_min, factor_max]`,
    /// independently per (client, server) pair and per class (the paper's
    /// ν for delay-sensitive, µ for throughput-sensitive traffic).
    pub factor_min: f64,
    pub factor_max: f64,
    pub direction: Direction,
    pub seed: u64,
}

impl HotspotConfig {
    /// Paper-default configuration (§V-F).
    pub fn paper_default(direction: Direction, seed: u64) -> Self {
        HotspotConfig {
            server_fraction: 0.10,
            client_fraction: 0.50,
            factor_min: 2.0,
            factor_max: 6.0,
            direction,
            seed,
        }
    }
}

/// Apply the hot-spot model, returning the perturbed matrices and the
/// chosen `(clients, servers)` node sets (useful for reporting).
///
/// Servers and clients are disjoint node sets; each client is assigned to
/// one uniformly random server, and only that client–server pair surges —
/// matching "assigning a number of 'clients' to each one of them".
pub fn apply(base: &ClassMatrices, cfg: &HotspotConfig) -> (ClassMatrices, Vec<usize>, Vec<usize>) {
    assert!(
        cfg.factor_min >= 1.0 && cfg.factor_max >= cfg.factor_min,
        "surge factors must be >= 1 and ordered"
    );
    assert!(
        cfg.server_fraction > 0.0 && cfg.client_fraction > 0.0,
        "fractions must be positive"
    );
    let n = base.num_nodes();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let num_servers = ((n as f64 * cfg.server_fraction).ceil() as usize).clamp(1, n - 1);
    let num_clients = ((n as f64 * cfg.client_fraction).ceil() as usize).min(n - num_servers);

    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(&mut rng);
    let servers: Vec<usize> = ids[..num_servers].to_vec();
    let clients: Vec<usize> = ids[num_servers..num_servers + num_clients].to_vec();

    let mut out = base.clone();
    for &c in &clients {
        let s = servers[rng.gen_range(0..servers.len())];
        let nu = rng.gen_range(cfg.factor_min..=cfg.factor_max); // delay class
        let mu = rng.gen_range(cfg.factor_min..=cfg.factor_max); // throughput
        let (from, to) = match cfg.direction {
            Direction::Upload => (c, s),
            Direction::Download => (s, c),
        };
        let d = out.delay.demand(from, to);
        out.delay.set(from, to, d * nu);
        let t = out.throughput.demand(from, to);
        out.throughput.set(from, to, t * mu);
    }
    (out, clients, servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gravity::{generate, GravityConfig};

    fn base() -> ClassMatrices {
        generate(&GravityConfig {
            total_volume: 1e6,
            ..GravityConfig::paper_default(20, 4)
        })
    }

    #[test]
    fn surge_only_increases_selected_pairs() {
        let b = base();
        let cfg = HotspotConfig::paper_default(Direction::Download, 11);
        let (p, clients, servers) = apply(&b, &cfg);
        assert_eq!(servers.len(), 2); // ceil(20 * 0.1)
        assert_eq!(clients.len(), 10);
        // No demand decreased, and total increased.
        for ((s, t, vb), (_, _, vp)) in b.delay.pairs().zip(p.delay.pairs()) {
            assert!(vp >= vb - 1e-12, "({s},{t}) decreased");
        }
        assert!(p.total() > b.total());
    }

    #[test]
    fn surge_factors_within_bounds() {
        let b = base();
        let cfg = HotspotConfig::paper_default(Direction::Upload, 5);
        let (p, _, _) = apply(&b, &cfg);
        for ((_, _, vb), (_, _, vp)) in b.delay.pairs().zip(p.delay.pairs()) {
            let ratio = vp / vb;
            assert!(
                (1.0 - 1e-12..=6.0 + 1e-12).contains(&ratio),
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn upload_and_download_differ() {
        let b = base();
        let up = apply(&b, &HotspotConfig::paper_default(Direction::Upload, 7)).0;
        let down = apply(&b, &HotspotConfig::paper_default(Direction::Download, 7)).0;
        assert!(up.delay.max_abs_diff(&down.delay) > 0.0);
    }

    #[test]
    fn clients_and_servers_are_disjoint() {
        let b = base();
        let (_, clients, servers) = apply(&b, &HotspotConfig::paper_default(Direction::Upload, 1));
        for c in &clients {
            assert!(!servers.contains(c));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let b = base();
        let cfg = HotspotConfig::paper_default(Direction::Download, 21);
        assert_eq!(apply(&b, &cfg).0, apply(&b, &cfg).0);
    }
}
