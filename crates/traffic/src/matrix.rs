//! Dense traffic matrix.

/// A dense `n × n` demand matrix; entry `(s, t)` is the offered traffic
/// volume from node `s` to node `t` in bits/s. The diagonal is always zero.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    demand: Vec<f64>, // row-major, len n*n
}

impl TrafficMatrix {
    /// All-zero matrix for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        TrafficMatrix {
            n,
            demand: vec![0.0; n * n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `t` (node indices).
    ///
    /// # Panics
    /// Panics if `s` or `t` is out of range.
    #[inline]
    pub fn demand(&self, s: usize, t: usize) -> f64 {
        assert!(s < self.n && t < self.n, "node index out of range");
        self.demand[s * self.n + t]
    }

    /// Set the demand from `s` to `t`. Setting the diagonal or a negative /
    /// non-finite volume panics — demands are physical quantities.
    pub fn set(&mut self, s: usize, t: usize, volume: f64) {
        assert!(s < self.n && t < self.n, "node index out of range");
        assert!(s != t, "diagonal demands are not allowed");
        assert!(
            volume.is_finite() && volume >= 0.0,
            "demand must be finite and non-negative, got {volume}"
        );
        self.demand[s * self.n + t] = volume;
    }

    /// Iterator over `(s, t, volume)` for all strictly positive demands.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |t| {
                let v = self.demand[s * self.n + t];
                (v > 0.0).then_some((s, t, v))
            })
        })
    }

    /// Number of SD pairs with positive demand.
    pub fn num_pairs(&self) -> usize {
        self.demand.iter().filter(|&&v| v > 0.0).count()
    }

    /// Sum of all demands (bits/s).
    pub fn total(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Multiply every demand by `factor` (≥ 0).
    pub fn scale(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        for v in &mut self.demand {
            *v *= factor;
        }
    }

    /// Zero out all traffic sourced or sunk at node `v` — the paper's node
    /// failure semantics ("the removal of all the traffic it originates",
    /// §V-F; symmetric removal of terminating traffic keeps the scenario
    /// well-posed, since a dead router neither sends nor receives).
    pub fn remove_node_traffic(&mut self, v: usize) {
        assert!(v < self.n, "node index out of range");
        for t in 0..self.n {
            self.demand[v * self.n + t] = 0.0;
            self.demand[t * self.n + v] = 0.0;
        }
    }

    /// Element-wise maximum deviation from `other`, as a fraction of
    /// `self`'s total volume — a cheap similarity metric used in tests.
    pub fn max_abs_diff(&self, other: &TrafficMatrix) -> f64 {
        assert_eq!(self.n, other.n, "matrix sizes differ");
        self.demand
            .iter()
            .zip(&other.demand)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_pairs() {
        let m = TrafficMatrix::zeros(4);
        assert_eq!(m.num_pairs(), 0);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.pairs().count(), 0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 5.0);
        m.set(2, 0, 7.0);
        assert_eq!(m.demand(0, 1), 5.0);
        assert_eq!(m.demand(2, 0), 7.0);
        assert_eq!(m.demand(1, 0), 0.0);
        assert_eq!(m.num_pairs(), 2);
        assert_eq!(m.total(), 12.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        TrafficMatrix::zeros(3).set(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_panics() {
        TrafficMatrix::zeros(3).set(0, 1, -1.0);
    }

    #[test]
    fn scale_multiplies_total() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 2.0);
        m.set(1, 2, 4.0);
        m.scale(2.5);
        assert_eq!(m.total(), 15.0);
    }

    #[test]
    fn remove_node_traffic_clears_row_and_column() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 0, 2.0);
        m.set(1, 2, 3.0);
        m.set(2, 1, 4.0);
        m.set(0, 2, 5.0);
        m.remove_node_traffic(1);
        assert_eq!(m.total(), 5.0);
        assert_eq!(m.demand(0, 2), 5.0);
        assert_eq!(m.num_pairs(), 1);
    }

    #[test]
    fn pairs_iterates_in_row_major_order() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(1, 0, 1.0);
        m.set(0, 2, 2.0);
        let got: Vec<_> = m.pairs().collect();
        assert_eq!(got, vec![(0, 2, 2.0), (1, 0, 1.0)]);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let mut a = TrafficMatrix::zeros(2);
        a.set(0, 1, 10.0);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(0, 1, 12.5);
        assert_eq!(a.max_abs_diff(&b), 2.5);
    }
}
