//! Summary statistics over traffic matrices (used by experiment reports).

use crate::matrix::TrafficMatrix;

/// Basic descriptive statistics of the positive demands of a matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixStats {
    /// Number of SD pairs with positive demand.
    pub pairs: usize,
    /// Sum of demands (bits/s).
    pub total: f64,
    /// Mean positive demand.
    pub mean: f64,
    /// Largest demand.
    pub max: f64,
    /// Smallest positive demand.
    pub min: f64,
}

/// Compute [`MatrixStats`]; `None` for an all-zero matrix.
pub fn stats(m: &TrafficMatrix) -> Option<MatrixStats> {
    let mut pairs = 0usize;
    let mut total = 0.0;
    let mut max = 0.0f64;
    let mut min = f64::INFINITY;
    for (_, _, v) in m.pairs() {
        pairs += 1;
        total += v;
        max = max.max(v);
        min = min.min(v);
    }
    if pairs == 0 {
        return None;
    }
    Some(MatrixStats {
        pairs,
        total,
        mean: total / pairs as f64,
        max,
        min,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_stats() {
        assert_eq!(stats(&TrafficMatrix::zeros(4)), None);
    }

    #[test]
    fn stats_match_hand_computation() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(0, 1, 2.0);
        m.set(1, 2, 6.0);
        m.set(2, 0, 4.0);
        let s = stats(&m).unwrap();
        assert_eq!(s.pairs, 3);
        assert_eq!(s.total, 12.0);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.min, 2.0);
    }
}
