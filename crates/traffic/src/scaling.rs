//! Scaling matrices to a utilization operating point.
//!
//! The paper describes every scenario by its *realized* link utilization
//! ("average link utilization is 0.43", "maximum link utilization of 0.74
//! and 0.9", …). Given a fixed routing, link loads are linear in the
//! traffic matrix, so hitting a utilization target is a single
//! multiplicative rescale — no search needed. The caller supplies the
//! utilization measurement as a closure, keeping this crate independent of
//! the routing engine.

use crate::classes::ClassMatrices;

/// Scale `matrices` (both classes, same factor) so that
/// `measure(matrices)` — any utilization functional that is linear in the
/// matrix, e.g. average or maximum link utilization under a fixed routing —
/// equals `target`. Returns the factor applied.
///
/// # Panics
/// Panics if the measured utilization of the input is not strictly
/// positive and finite (a zero matrix cannot be scaled to a target), or if
/// `target` is not strictly positive.
pub fn scale_to_utilization(
    matrices: &mut ClassMatrices,
    target: f64,
    measure: impl Fn(&ClassMatrices) -> f64,
) -> f64 {
    assert!(target > 0.0 && target.is_finite(), "bad target {target}");
    let current = measure(matrices);
    assert!(
        current > 0.0 && current.is_finite(),
        "cannot scale: measured utilization is {current}"
    );
    let factor = target / current;
    matrices.scale(factor);
    factor
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy "utilization": total volume divided by a fixed capacity — linear
    /// in the matrix like a real link-load functional.
    fn toy_util(m: &ClassMatrices) -> f64 {
        m.total() / 1000.0
    }

    fn sample() -> ClassMatrices {
        let mut m = ClassMatrices::zeros(3);
        m.delay.set(0, 1, 30.0);
        m.throughput.set(1, 2, 70.0);
        m
    }

    #[test]
    fn hits_target_exactly_for_linear_measures() {
        let mut m = sample();
        let factor = scale_to_utilization(&mut m, 0.43, toy_util);
        assert!((toy_util(&m) - 0.43).abs() < 1e-12);
        assert!((factor - 4.3).abs() < 1e-12);
    }

    #[test]
    fn preserves_class_mix() {
        let mut m = sample();
        let share = m.delay_share();
        scale_to_utilization(&mut m, 0.9, toy_util);
        assert!((m.delay_share() - share).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot scale")]
    fn zero_matrix_panics() {
        let mut m = ClassMatrices::zeros(3);
        scale_to_utilization(&mut m, 0.5, toy_util);
    }

    #[test]
    #[should_panic(expected = "bad target")]
    fn zero_target_panics() {
        let mut m = sample();
        scale_to_utilization(&mut m, 0.0, toy_util);
    }
}
