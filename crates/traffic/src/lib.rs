//! # dtr-traffic — two-class traffic matrices
//!
//! The paper's network supports two traffic classes (§III): delay-sensitive
//! (matrix `R_D = [r_D(s,t)]`) and throughput-sensitive (`R_T`). This crate
//! provides:
//!
//! * [`TrafficMatrix`] — dense `|V|×|V|` demand matrix in bits/s.
//! * [`ClassMatrices`] — the `(R_D, R_T)` pair handled as one unit.
//! * [`gravity`] — generation following the gravity-style model of the
//!   paper's reference \[13\], with every SD pair carrying delay-sensitive
//!   traffic and the delay class making up a configurable share (paper
//!   default 30 %) of total volume (§V-A2).
//! * [`scaling`] — scaling matrices to hit a target link-utilization
//!   operating point (the paper quotes its scenarios by realized
//!   utilization: 0.43 average, 0.74 / 0.8 / 0.9 maximum).
//! * [`fluctuation`] — the Gaussian uncertainty model of §V-F
//!   (`r̃ = r + N(0, ε·r)`, measurement-error emulation).
//! * [`hotspot`] — the upload/download hot-spot surge model of §V-F.
//!
//! All generators are deterministic in an explicit `u64` seed.

#![forbid(unsafe_code)]

mod classes;
pub mod fluctuation;
pub mod gravity;
pub mod hotspot;
mod matrix;
pub mod scaling;
pub mod stats;

pub use classes::ClassMatrices;
pub use matrix::TrafficMatrix;

/// Fraction of total traffic volume that is delay-sensitive in the paper's
/// evaluation (§V-A2: "the total volume of delay-sensitive traffic is 30%
/// of the total network traffic volume").
pub const DEFAULT_DELAY_SHARE: f64 = 0.30;
