//! Gaussian traffic-uncertainty model (§V-F).
//!
//! The paper emulates measurement errors and random fluctuations with
//! `r̃(s,t) = r(s,t) + N(0, ε·r(s,t))` per class, citing evidence that a
//! Gaussian model fits traffic-matrix estimation errors (\[6\], \[18\]).
//! With ε = 0.2, "actual traffic intensities can fluctuate by ±40% around
//! the estimated mean value with a likelihood of about 95%" (±2σ).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::classes::ClassMatrices;
use crate::gravity::sample_standard_normal;
use crate::matrix::TrafficMatrix;

/// Apply the Gaussian fluctuation model to one matrix: every positive entry
/// `r` becomes `max(0, r + N(0, ε·r))`. Entries that were zero stay zero
/// (no traffic appears between pairs that exchange none).
pub fn perturb_matrix(base: &TrafficMatrix, epsilon: f64, rng: &mut StdRng) -> TrafficMatrix {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let mut out = TrafficMatrix::zeros(base.num_nodes());
    for (s, t, r) in base.pairs() {
        let noisy = r + epsilon * r * sample_standard_normal(rng);
        out.set(s, t, noisy.max(0.0));
    }
    out
}

/// Apply the fluctuation model to both classes with independent noise,
/// yielding one "actual traffic" instance `(R̃_D, R̃_T)` from the estimated
/// base matrices. §V-F generates 100 such instances per experiment.
pub fn perturb(base: &ClassMatrices, epsilon: f64, seed: u64) -> ClassMatrices {
    let mut rng = StdRng::seed_from_u64(seed);
    ClassMatrices {
        delay: perturb_matrix(&base.delay, epsilon, &mut rng),
        throughput: perturb_matrix(&base.throughput, epsilon, &mut rng),
    }
}

/// Generate `count` independent perturbed instances, seeds derived from
/// `base_seed` (seed, seed+1, …) for reproducibility of the whole batch.
pub fn instances(
    base: &ClassMatrices,
    epsilon: f64,
    count: usize,
    base_seed: u64,
) -> Vec<ClassMatrices> {
    (0..count)
        .map(|i| perturb(base, epsilon, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gravity::{generate, GravityConfig};

    fn base() -> ClassMatrices {
        generate(&GravityConfig {
            total_volume: 1e6,
            ..GravityConfig::paper_default(10, 7)
        })
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let b = base();
        let p = perturb(&b, 0.0, 1);
        assert_eq!(b, p);
    }

    #[test]
    fn fluctuations_have_expected_magnitude() {
        let b = base();
        let p = perturb(&b, 0.2, 42);
        // Mean relative deviation over all pairs ≈ E|N(0, 0.2 r)|/r =
        // 0.2·sqrt(2/π) ≈ 0.16; allow a generous band.
        let mut rel = Vec::new();
        for ((_, _, rb), (_, _, rp)) in b.delay.pairs().zip(p.delay.pairs()) {
            rel.push((rp - rb).abs() / rb);
        }
        let mean_rel = rel.iter().sum::<f64>() / rel.len() as f64;
        assert!(
            (0.08..0.30).contains(&mean_rel),
            "mean relative deviation {mean_rel}"
        );
    }

    #[test]
    fn no_negative_demands() {
        let b = base();
        // Huge epsilon forces many negative draws; all must clamp to 0.
        let p = perturb(&b, 5.0, 3);
        assert!(p.delay.pairs().all(|(_, _, v)| v >= 0.0));
        assert!(p.throughput.pairs().all(|(_, _, v)| v >= 0.0));
    }

    #[test]
    fn zeros_stay_zero() {
        let mut m = ClassMatrices::zeros(4);
        m.delay.set(0, 1, 100.0);
        let p = perturb(&m, 0.2, 9);
        assert_eq!(p.delay.num_pairs(), 1);
        assert_eq!(p.throughput.num_pairs(), 0);
    }

    #[test]
    fn instances_are_distinct_and_reproducible() {
        let b = base();
        let batch1 = instances(&b, 0.2, 5, 100);
        let batch2 = instances(&b, 0.2, 5, 100);
        assert_eq!(batch1.len(), 5);
        for (a, c) in batch1.iter().zip(&batch2) {
            assert_eq!(a, c); // reproducible
        }
        assert_ne!(batch1[0], batch1[1]); // distinct draws
    }
}
