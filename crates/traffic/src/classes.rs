//! The two-class matrix pair.

use crate::matrix::TrafficMatrix;

/// The paper's two traffic matrices handled as one unit: `R_D`
/// (delay-sensitive) and `R_T` (throughput-sensitive), §III.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassMatrices {
    /// Delay-sensitive demands `R_D` (bits/s).
    pub delay: TrafficMatrix,
    /// Throughput-sensitive demands `R_T` (bits/s).
    pub throughput: TrafficMatrix,
}

impl ClassMatrices {
    /// Zero matrices for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        ClassMatrices {
            delay: TrafficMatrix::zeros(n),
            throughput: TrafficMatrix::zeros(n),
        }
    }

    /// Number of nodes (identical for both classes by construction).
    pub fn num_nodes(&self) -> usize {
        debug_assert_eq!(self.delay.num_nodes(), self.throughput.num_nodes());
        self.delay.num_nodes()
    }

    /// Combined offered volume of both classes (bits/s).
    pub fn total(&self) -> f64 {
        self.delay.total() + self.throughput.total()
    }

    /// Realized delay-sensitive share of total volume (0 when empty).
    pub fn delay_share(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.delay.total() / total
        }
    }

    /// Scale both classes by the same factor — preserves the class mix,
    /// which is how the paper moves between load operating points.
    pub fn scale(&mut self, factor: f64) {
        self.delay.scale(factor);
        self.throughput.scale(factor);
    }

    /// Remove all traffic sourced/sunk at `v` in both classes (node-failure
    /// semantics, §V-F).
    pub fn remove_node_traffic(&mut self, v: usize) {
        self.delay.remove_node_traffic(v);
        self.throughput.remove_node_traffic(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClassMatrices {
        let mut m = ClassMatrices::zeros(3);
        m.delay.set(0, 1, 3.0);
        m.throughput.set(0, 1, 7.0);
        m.throughput.set(1, 2, 10.0);
        m
    }

    #[test]
    fn totals_and_share() {
        let m = sample();
        assert_eq!(m.total(), 20.0);
        assert!((m.delay_share() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_share_is_zero() {
        assert_eq!(ClassMatrices::zeros(2).delay_share(), 0.0);
    }

    #[test]
    fn scale_preserves_share() {
        let mut m = sample();
        let before = m.delay_share();
        m.scale(3.0);
        assert!((m.delay_share() - before).abs() < 1e-12);
        assert_eq!(m.total(), 60.0);
    }

    #[test]
    fn node_removal_hits_both_classes() {
        let mut m = sample();
        m.remove_node_traffic(1);
        assert_eq!(m.delay.total(), 0.0);
        assert_eq!(m.throughput.total(), 0.0);
    }
}
