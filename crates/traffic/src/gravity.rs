//! Gravity-model traffic generation.
//!
//! The paper generates its matrices "using the models as in \[13\]"
//! (§V-A2), i.e. the authors' earlier CoNEXT 2007 DTR paper, which uses a
//! gravity-style model: each node gets a random activity level and the
//! demand between two nodes is proportional to the product of their
//! activity levels, with multiplicative noise. Two properties from §V-A2
//! are preserved exactly:
//!
//! * every SD pair generates delay-sensitive traffic (so the SLA is
//!   evaluated over all `|V|(|V|−1)` pairs), and
//! * the delay class carries a configurable share (default 30 %) of the
//!   total offered volume.
//!
//! Node activity levels are lognormal — the standard heavy-tailed choice
//! for synthetic gravity matrices (the paper's reference \[18\]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::classes::ClassMatrices;
use crate::matrix::TrafficMatrix;
use crate::DEFAULT_DELAY_SHARE;

/// Parameters of the gravity generator.
#[derive(Clone, Copy, Debug)]
pub struct GravityConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target total offered volume (both classes, bits/s). The generated
    /// matrices sum exactly to this, before any later scaling.
    pub total_volume: f64,
    /// Fraction of volume in the delay class (paper default 0.30).
    pub delay_share: f64,
    /// σ of the underlying normal for lognormal node activity. 0 gives a
    /// uniform gravity matrix; the default 0.5 gives mild heterogeneity.
    pub sigma: f64,
    /// Multiplicative noise half-range: each entry is scaled by
    /// `U[1-noise, 1+noise]`. Default 0.4.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GravityConfig {
    /// Paper-default configuration for `nodes` nodes: 30 % delay share,
    /// mild lognormal heterogeneity, unit total volume (scale afterwards
    /// with [`crate::scaling`]).
    pub fn paper_default(nodes: usize, seed: u64) -> Self {
        GravityConfig {
            nodes,
            total_volume: 1.0,
            delay_share: DEFAULT_DELAY_SHARE,
            sigma: 0.5,
            noise: 0.4,
            seed,
        }
    }
}

/// Standard normal via Box–Muller (the `rand` crate alone has no normal
/// distribution; pulling in `rand_distr` for one function is not worth it).
pub(crate) fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate the two-class matrices.
///
/// Both classes share the same gravity structure but draw independent noise
/// (delay-sensitive VoIP-like flows and bulk transfers are not perfectly
/// correlated); each class is then normalized to its share of
/// `total_volume`.
///
/// # Panics
/// Panics if `nodes < 2`, `delay_share ∉ [0,1]`, or `total_volume < 0`.
pub fn generate(cfg: &GravityConfig) -> ClassMatrices {
    assert!(cfg.nodes >= 2, "need at least 2 nodes");
    assert!(
        (0.0..=1.0).contains(&cfg.delay_share),
        "delay share must be in [0,1]"
    );
    assert!(
        cfg.total_volume >= 0.0 && cfg.total_volume.is_finite(),
        "total volume must be finite and non-negative"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;

    // Lognormal node activity levels (mass).
    let mass: Vec<f64> = (0..n)
        .map(|_| (cfg.sigma * sample_standard_normal(&mut rng)).exp())
        .collect();

    let raw = |rng: &mut StdRng| {
        let mut m = TrafficMatrix::zeros(n);
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                let noise = 1.0 + cfg.noise * (2.0 * rng.gen::<f64>() - 1.0);
                // Gravity: product of masses, strictly positive so every SD
                // pair carries traffic (required for the SLA census).
                m.set(s, t, (mass[s] * mass[t] * noise).max(f64::MIN_POSITIVE));
            }
        }
        m
    };

    let mut delay = raw(&mut rng);
    let mut throughput = raw(&mut rng);

    let d_total = delay.total();
    let t_total = throughput.total();
    if d_total > 0.0 {
        delay.scale(cfg.total_volume * cfg.delay_share / d_total);
    }
    if t_total > 0.0 {
        throughput.scale(cfg.total_volume * (1.0 - cfg.delay_share) / t_total);
    }

    ClassMatrices { delay, throughput }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_total_volume_and_share() {
        let cfg = GravityConfig {
            total_volume: 1e9,
            ..GravityConfig::paper_default(10, 3)
        };
        let m = generate(&cfg);
        assert!((m.total() - 1e9).abs() < 1.0);
        assert!((m.delay_share() - 0.30).abs() < 1e-9);
    }

    #[test]
    fn every_sd_pair_has_delay_traffic() {
        let m = generate(&GravityConfig::paper_default(8, 1));
        assert_eq!(m.delay.num_pairs(), 8 * 7);
        assert_eq!(m.throughput.num_pairs(), 8 * 7);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GravityConfig::paper_default(12, 99);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn seeds_change_the_matrix() {
        let a = generate(&GravityConfig::paper_default(12, 1));
        let b = generate(&GravityConfig::paper_default(12, 2));
        assert!(a.delay.max_abs_diff(&b.delay) > 0.0);
    }

    #[test]
    fn heterogeneity_grows_with_sigma() {
        let flat = generate(&GravityConfig {
            sigma: 0.0,
            noise: 0.0,
            ..GravityConfig::paper_default(20, 5)
        });
        let skewed = generate(&GravityConfig {
            sigma: 1.5,
            noise: 0.0,
            ..GravityConfig::paper_default(20, 5)
        });
        let spread = |m: &TrafficMatrix| {
            let vals: Vec<f64> = m.pairs().map(|(_, _, v)| v).collect();
            let max = vals.iter().cloned().fold(0.0, f64::max);
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            max / min
        };
        assert!(spread(&flat.delay) < 1.0 + 1e-9);
        assert!(spread(&skewed.delay) > 2.0);
    }

    #[test]
    fn zero_delay_share_supported() {
        let m = generate(&GravityConfig {
            delay_share: 0.0,
            ..GravityConfig::paper_default(5, 0)
        });
        assert_eq!(m.delay_share(), 0.0);
        assert!(m.throughput.total() > 0.0);
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
