//! Generator configuration.

/// Which synthesized topology family to generate (paper §V-A1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopoKind {
    /// RandTopo: random graph of given average node degree.
    Rand,
    /// NearTopo: nodes connect to their closest neighbours.
    Near,
    /// PLTopo: power-law (Barabási–Albert) topology.
    PowerLaw,
    /// WaxmanTopo: spatial random graph with exponential distance decay
    /// (extension; locality between NearTopo and RandTopo).
    Waxman,
    /// WSTopo: Watts–Strogatz small-world ring-lattice rewiring
    /// (extension).
    WattsStrogatz,
    /// ERTopo: Erdős–Rényi `G(n, m)` with connectivity repair
    /// (extension).
    ErdosRenyi,
    /// CommunityTopo: community-structured / hierarchical topology
    /// (extension).
    Community,
}

impl std::fmt::Display for TopoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoKind::Rand => write!(f, "RandTopo"),
            TopoKind::Near => write!(f, "NearTopo"),
            TopoKind::PowerLaw => write!(f, "PLTopo"),
            TopoKind::Waxman => write!(f, "WaxmanTopo"),
            TopoKind::WattsStrogatz => write!(f, "WSTopo"),
            TopoKind::ErdosRenyi => write!(f, "ERTopo"),
            TopoKind::Community => write!(f, "CommunityTopo"),
        }
    }
}

/// Size and seed of a synthesized topology.
///
/// The paper quotes topologies as `[#nodes, #directed links]`; here
/// `duplex_links` is half the directed count (every synthesized link is
/// duplex). E.g. the paper's RandTopo `[30, 180]` is
/// `SynthConfig { nodes: 30, duplex_links: 90, .. }`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of physical (duplex) links; directed `|E|` is twice this.
    pub duplex_links: usize,
    /// RNG seed; same seed ⇒ same topology.
    pub seed: u64,
}

impl SynthConfig {
    /// Config from the paper's `[nodes, directed_links]` notation.
    ///
    /// # Panics
    /// Panics if `directed_links` is odd (synthesized links are duplex).
    pub fn from_paper_notation(nodes: usize, directed_links: usize, seed: u64) -> Self {
        assert!(
            directed_links.is_multiple_of(2),
            "paper notation counts directed links; must be even"
        );
        SynthConfig {
            nodes,
            duplex_links: directed_links / 2,
            seed,
        }
    }

    /// Config for `nodes` nodes at a given *mean duplex degree* (the paper's
    /// "average node degree"): `duplex_links = nodes * degree / 2`.
    pub fn with_mean_degree(nodes: usize, degree: f64, seed: u64) -> Self {
        SynthConfig {
            nodes,
            duplex_links: ((nodes as f64 * degree) / 2.0).round() as usize,
            seed,
        }
    }

    /// Directed link count (`2 × duplex_links`).
    pub fn directed_links(&self) -> usize {
        self.duplex_links * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_notation_round_trip() {
        let cfg = SynthConfig::from_paper_notation(30, 180, 1);
        assert_eq!(cfg.duplex_links, 90);
        assert_eq!(cfg.directed_links(), 180);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn paper_notation_rejects_odd() {
        SynthConfig::from_paper_notation(30, 181, 1);
    }

    #[test]
    fn mean_degree_matches_paper_sizes() {
        // Paper §V-C: 30 nodes at mean degree 6 -> [30, 180].
        let cfg = SynthConfig::with_mean_degree(30, 6.0, 0);
        assert_eq!(cfg.directed_links(), 180);
        // degree 5, 100 nodes -> 250 duplex = 500 directed.
        let cfg = SynthConfig::with_mean_degree(100, 5.0, 0);
        assert_eq!(cfg.duplex_links, 250);
    }

    #[test]
    fn kind_display() {
        assert_eq!(TopoKind::Rand.to_string(), "RandTopo");
        assert_eq!(TopoKind::Near.to_string(), "NearTopo");
        assert_eq!(TopoKind::PowerLaw.to_string(), "PLTopo");
        assert_eq!(TopoKind::WattsStrogatz.to_string(), "WSTopo");
        assert_eq!(TopoKind::ErdosRenyi.to_string(), "ERTopo");
        assert_eq!(TopoKind::Community.to_string(), "CommunityTopo");
    }
}
