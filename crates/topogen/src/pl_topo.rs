//! **PLTopo** — power-law topology via Barabási–Albert preferential
//! attachment (§V-A1, the paper's reference \[3\]).
//!
//! Growth: start from a small connected seed, then attach each new node to
//! `m` distinct existing nodes chosen with probability proportional to
//! their current degree. Afterwards the link count is adjusted to the exact
//! target: extra links are added between degree-weighted random pairs,
//! surplus links are removed (never disconnecting the graph), preserving
//! the heavy-tailed degree profile.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashSet};

use crate::blueprint::Blueprint;
use crate::config::SynthConfig;
use crate::support::{pair_key, unit_square_points, DisjointSet};
use crate::{validate_config, GenError};

/// Generate a PLTopo blueprint with exactly `cfg.duplex_links` links.
pub fn generate(cfg: &SynthConfig) -> Result<Blueprint, GenError> {
    validate_config(cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let points = unit_square_points(n, &mut rng);

    // Attachment count per new node, from the link budget.
    let m_attach = ((cfg.duplex_links as f64) / (n as f64)).round().max(1.0) as usize;
    let m0 = (m_attach + 1).min(n); // seed size

    // `chosen` answers membership only; `links` carries the RNG-driven
    // insertion order so no HashSet iteration order can leak into the
    // blueprint (dtr-analysis: det-hash-iter).
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(cfg.duplex_links);
    let mut links: Vec<(usize, usize)> = Vec::with_capacity(cfg.duplex_links);
    let mut degree = vec![0usize; n];
    // `targets` holds one entry per incident link end, so sampling a
    // uniform element implements degree-proportional selection.
    let mut targets: Vec<usize> = Vec::with_capacity(cfg.duplex_links * 2);

    let add = |a: usize,
               b: usize,
               chosen: &mut HashSet<(usize, usize)>,
               links: &mut Vec<(usize, usize)>,
               degree: &mut Vec<usize>,
               targets: &mut Vec<usize>|
     -> bool {
        if a == b || !chosen.insert(pair_key(a, b)) {
            return false;
        }
        links.push(pair_key(a, b));
        degree[a] += 1;
        degree[b] += 1;
        targets.push(a);
        targets.push(b);
        true
    };

    // Seed: path over the first m0 nodes (connected, low degree).
    for i in 1..m0 {
        add(i - 1, i, &mut chosen, &mut links, &mut degree, &mut targets);
    }

    // Preferential attachment for the remaining nodes.
    for v in m0..n {
        // BTreeSet: dedups like a hash set but iterates in ascending
        // order, so the insertion into the RNG-driven state below is
        // deterministic (this replaces a collect-then-sort of a HashSet).
        let mut picked = BTreeSet::new();
        let want = m_attach.min(v); // cannot attach to more nodes than exist
        let mut guard = 0;
        while picked.len() < want {
            guard += 1;
            let u = if guard > 50 * (want + 1) {
                // Degenerate RNG streak; fall back to uniform choice.
                rng.gen_range(0..v)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if u != v {
                picked.insert(u);
            }
        }
        for u in picked {
            add(v, u, &mut chosen, &mut links, &mut degree, &mut targets);
        }
    }

    // Exact-count adjustment: add degree-weighted extra links...
    let mut guard = 0usize;
    while chosen.len() < cfg.duplex_links {
        guard += 1;
        let a = if guard > 100 * cfg.duplex_links {
            rng.gen_range(0..n) // dense endgame: uniform fill
        } else {
            targets[rng.gen_range(0..targets.len())]
        };
        let b = rng.gen_range(0..n);
        add(a, b, &mut chosen, &mut links, &mut degree, &mut targets);
    }
    // ...or remove surplus links while preserving connectivity.
    let duplex = if links.len() > cfg.duplex_links {
        // Sorted first so the shuffle consumes the same RNG stream the
        // old sorted-HashSet-collect implementation did.
        links.sort_unstable();
        links.shuffle(&mut rng);
        let mut keep: Vec<(usize, usize)> = Vec::with_capacity(cfg.duplex_links);
        let mut spare: Vec<(usize, usize)> = Vec::new();
        let mut ds = DisjointSet::new(n);
        // Keep a spanning skeleton first.
        for &(a, b) in &links {
            if ds.union(a, b) {
                keep.push((a, b));
            } else {
                spare.push((a, b));
            }
        }
        // Fill back up to the target with surplus links.
        for &(a, b) in &spare {
            if keep.len() >= cfg.duplex_links {
                break;
            }
            keep.push((a, b));
        }
        keep
    } else {
        links
    };
    Ok(Blueprint::from_euclidean(points, duplex))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrees(bp: &Blueprint, n: usize) -> Vec<usize> {
        let mut d = vec![0usize; n];
        for &(a, b) in &bp.duplex {
            d[a] += 1;
            d[b] += 1;
        }
        d
    }

    #[test]
    fn paper_size_30_162() {
        // Paper's PLTopo is [30 nodes, 162 directed links] = 81 duplex.
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 81,
            seed: 17,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 81);
        assert!(bp.build(500e6).is_ok());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Power-law signature: max degree far above the mean.
        let cfg = SynthConfig {
            nodes: 60,
            duplex_links: 150,
            seed: 23,
        };
        let bp = generate(&cfg).unwrap();
        let d = degrees(&bp, 60);
        let mean = d.iter().sum::<usize>() as f64 / 60.0;
        let max = *d.iter().max().unwrap() as f64;
        assert!(
            max > 2.5 * mean,
            "expected hub nodes: max degree {max}, mean {mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 81,
            seed: 1,
        };
        assert_eq!(
            generate(&cfg).unwrap().duplex,
            generate(&cfg).unwrap().duplex
        );
    }

    #[test]
    fn small_and_dense_configs_work() {
        for (n, m, seed) in [(5usize, 4usize, 0u64), (5, 10, 1), (12, 40, 2)] {
            let bp = generate(&SynthConfig {
                nodes: n,
                duplex_links: m,
                seed,
            })
            .unwrap();
            assert_eq!(bp.num_duplex(), m);
            assert!(bp.build(1e9).is_ok(), "n={n} m={m}");
        }
    }
}
