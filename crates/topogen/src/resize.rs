//! Capacity resizing of congested links.
//!
//! §V-B of the paper re-runs the NearTopo experiment after "increasing the
//! capacity of those congested links so as to bring down their utilization
//! below 90% under normal conditions". This module implements that
//! operation as a pure function: given a network and the per-link loads of
//! some routing, produce a new network where every link whose utilization
//! exceeds the threshold gets just enough extra capacity.

use dtr_net::{NetError, Network, NetworkBuilder};

/// Return a copy of `net` where every link with `load/capacity >
/// max_utilization` has its capacity raised to `load / max_utilization`.
/// `loads` is indexed by directed link id (bits/s, as produced by the
/// routing engine). Links at or below the threshold keep their capacity.
///
/// Both directions of a duplex link are resized independently, mirroring
/// how real upgrades add asymmetric capacity only where needed.
pub fn resize_congested_links(
    net: &Network,
    loads: &[f64],
    max_utilization: f64,
) -> Result<Network, NetError> {
    assert_eq!(loads.len(), net.num_links(), "one load per directed link");
    assert!(
        max_utilization > 0.0 && max_utilization <= 1.0,
        "utilization threshold must be in (0, 1]"
    );
    let mut b = NetworkBuilder::new();
    for v in net.nodes() {
        b.add_node(net.position(v));
    }
    for l in net.links() {
        let link = net.link(l);
        let util = loads[l.index()] / link.capacity;
        let capacity = if util > max_utilization {
            loads[l.index()] / max_utilization
        } else {
            link.capacity
        };
        b.add_link(link.src, link.dst, capacity, link.prop_delay)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_net::{LinkId, NetworkBuilder, Point};

    fn two_node_net() -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_duplex_link(a, c, 100.0, 1e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn congested_link_gets_resized() {
        let net = two_node_net();
        // Link 0 at 95% utilization, link 1 at 10%.
        let loads = vec![95.0, 10.0];
        let resized = resize_congested_links(&net, &loads, 0.9).unwrap();
        let c0 = resized.link(LinkId::new(0)).capacity;
        let c1 = resized.link(LinkId::new(1)).capacity;
        assert!((c0 - 95.0 / 0.9).abs() < 1e-9, "c0 = {c0}");
        assert_eq!(c1, 100.0);
        // New utilization exactly at the threshold.
        assert!((loads[0] / c0 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn uncongested_network_is_unchanged() {
        let net = two_node_net();
        let resized = resize_congested_links(&net, &[10.0, 20.0], 0.9).unwrap();
        for l in net.links() {
            assert_eq!(resized.link(l).capacity, net.link(l).capacity);
        }
    }

    #[test]
    #[should_panic(expected = "one load per directed link")]
    fn wrong_load_length_panics() {
        let net = two_node_net();
        let _ = resize_congested_links(&net, &[1.0], 0.9);
    }

    #[test]
    fn topology_is_preserved() {
        let net = two_node_net();
        let resized = resize_congested_links(&net, &[500.0, 500.0], 0.5).unwrap();
        assert_eq!(resized.num_nodes(), net.num_nodes());
        assert_eq!(resized.num_links(), net.num_links());
        for l in net.links() {
            assert_eq!(resized.link(l).src, net.link(l).src);
            assert_eq!(resized.link(l).dst, net.link(l).dst);
            assert_eq!(resized.link(l).prop_delay, net.link(l).prop_delay);
        }
    }
}
