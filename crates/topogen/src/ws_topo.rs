//! **WSTopo** — Watts–Strogatz small-world rewiring (extension family).
//!
//! Construction: nodes uniform in the unit square but *linked by ring
//! order*, not geometry — a circulant lattice connects each node to its
//! nearest ring neighbours at increasing offsets until the exact duplex
//! budget is spent, then every non-ring lattice chord is rewired to a
//! uniformly random endpoint with probability β. The offset-1 ring is
//! never rewired, so the graph stays connected for every β ∈ [0, 1];
//! β = 0 reproduces the pure lattice, β = 1 approaches a random graph
//! with the lattice's exact degree budget.
//!
//! Determinism: single `StdRng` stream seeded from `cfg.seed`; candidate
//! lists are insertion-ordered `Vec`s with a `HashSet` used for
//! membership only (dtr-analysis: det-hash-iter), and
//! [`Blueprint::from_euclidean`] canonicalizes the final pair list.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::blueprint::Blueprint;
use crate::config::SynthConfig;
use crate::support::{pair_key, unit_square_points};
use crate::{validate_config, GenError};

/// Default rewiring probability β — the small-world sweet spot where
/// path lengths have collapsed but clustering remains.
pub const DEFAULT_BETA: f64 = 0.1;

/// Generate a WSTopo blueprint with exactly `cfg.duplex_links` links and
/// rewiring probability `beta`.
///
/// Requires `duplex_links >= nodes` (the base ring) and `beta ∈ [0, 1]`.
pub fn generate_with_beta(cfg: &SynthConfig, beta: f64) -> Result<Blueprint, GenError> {
    validate_config(cfg)?;
    assert!((0.0..=1.0).contains(&beta), "beta in [0, 1]");
    let n = cfg.nodes;
    let m = cfg.duplex_links;
    if m < n {
        // The unrewired offset-1 ring needs n links; a spanning tree
        // (n-1) is not enough for this family.
        return Err(GenError::TooFewLinks {
            nodes: n,
            duplex_links: m,
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let points = unit_square_points(n, &mut rng);

    // Circulant lattice: offsets 1, 2, … each add the n chords
    // (i, i+d mod n) in node order until the budget is spent. `chosen`
    // answers membership only; `links` carries construction order
    // (dtr-analysis: det-hash-iter).
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(m);
    let mut links: Vec<(usize, usize)> = Vec::with_capacity(m);
    let mut ring_links = 0usize; // prefix of `links` that is the offset-1 ring
    'fill: for d in 1..=n / 2 {
        for i in 0..n {
            if links.len() == m {
                break 'fill;
            }
            let k = pair_key(i, (i + d) % n);
            if chosen.insert(k) {
                links.push(k);
                if d == 1 {
                    ring_links += 1;
                }
            }
        }
    }
    debug_assert_eq!(links.len(), m, "validate_config bounds m by n(n-1)/2");

    // Rewire every non-ring chord with probability beta: the chord's
    // higher endpoint is replaced by a uniform random node, keeping the
    // graph simple. Rejection-sample a few times, then keep the chord —
    // only matters near-complete, where rewiring is a no-op anyway.
    for link in links.iter_mut().skip(ring_links) {
        if rng.gen::<f64>() >= beta {
            continue;
        }
        let (a, _) = *link;
        for _ in 0..16 {
            let c = rng.gen_range(0..n);
            if c == a {
                continue;
            }
            let k = pair_key(a, c);
            if !chosen.contains(&k) {
                chosen.remove(link);
                chosen.insert(k);
                *link = k;
                break;
            }
        }
    }

    Ok(Blueprint::from_euclidean(points, links))
}

/// Generate a WSTopo blueprint at the default β ([`DEFAULT_BETA`]).
pub fn generate(cfg: &SynthConfig) -> Result<Blueprint, GenError> {
    generate_with_beta(cfg, DEFAULT_BETA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_link_count_and_connected() {
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 90,
            seed: 42,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 90);
        let net = bp.build(500e6).unwrap();
        assert_eq!(net.num_links(), 180);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            nodes: 24,
            duplex_links: 60,
            seed: 9,
        };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.duplex, b.duplex);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn beta_zero_is_the_pure_lattice() {
        let cfg = SynthConfig {
            nodes: 12,
            duplex_links: 24,
            seed: 3,
        };
        let bp = generate_with_beta(&cfg, 0.0).unwrap();
        // Offsets 1 and 2 exactly: every chord spans ring distance <= 2.
        for &(a, b) in &bp.duplex {
            let d = (b - a).min(12 - (b - a));
            assert!(d <= 2, "chord ({a},{b}) spans ring distance {d}");
        }
    }

    #[test]
    fn full_rewiring_stays_connected_and_exact() {
        let cfg = SynthConfig {
            nodes: 20,
            duplex_links: 50,
            seed: 17,
        };
        let bp = generate_with_beta(&cfg, 1.0).unwrap();
        assert_eq!(bp.num_duplex(), 50);
        assert!(bp.build(1e9).is_ok());
    }

    #[test]
    fn rejects_sub_ring_budgets() {
        // n-1 links pass the generic validation but not the ring bound.
        let cfg = SynthConfig {
            nodes: 10,
            duplex_links: 9,
            seed: 0,
        };
        assert!(matches!(generate(&cfg), Err(GenError::TooFewLinks { .. })));
    }

    #[test]
    fn dense_case_near_complete() {
        let cfg = SynthConfig {
            nodes: 8,
            duplex_links: 27,
            seed: 5,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 27);
        assert!(bp.build(1e9).is_ok());
    }
}
