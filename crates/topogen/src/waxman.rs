//! **WaxmanTopo** — the Waxman random graph (extension).
//!
//! The classic spatial random-graph model of internetwork research
//! (Waxman 1988): link probability decays exponentially with Euclidean
//! distance, `P(u,v) ∝ exp(−d(u,v) / (α·L))` where `L` is the largest
//! pairwise distance and `α` controls the decay. Small `α` favors short
//! links (NearTopo-like locality); large `α` approaches RandTopo.
//!
//! This sits between the paper's NearTopo and RandTopo on the
//! path-diversity axis, making it a useful probe for the paper's central
//! claim that robust-optimization benefits scale with path diversity
//! (§V-B). To keep the repo's exact-link-count convention, the Waxman
//! probabilities are used as *sampling weights*: a spanning tree drawn by
//! weighted attachment guarantees connectivity, then the remaining budget
//! is filled by weighted sampling without replacement.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::blueprint::Blueprint;
use crate::config::SynthConfig;
use crate::support::{pair_key, unit_square_points};
use crate::{validate_config, GenError};

/// Default distance-decay parameter α (a mid-range locality bias).
pub const DEFAULT_ALPHA: f64 = 0.25;

/// Generate a Waxman blueprint with the default α.
pub fn generate(cfg: &SynthConfig) -> Result<Blueprint, GenError> {
    generate_with_alpha(cfg, DEFAULT_ALPHA)
}

/// Generate a Waxman blueprint with an explicit distance-decay `alpha`.
///
/// # Panics
/// Panics if `alpha` is not positive and finite.
pub fn generate_with_alpha(cfg: &SynthConfig, alpha: f64) -> Result<Blueprint, GenError> {
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
    validate_config(cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let points = unit_square_points(n, &mut rng);

    // Largest pairwise distance L normalizes the decay.
    let mut l_max = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            l_max = l_max.max(points[i].distance(&points[j]));
        }
    }
    let l_max = l_max.max(f64::MIN_POSITIVE);
    let weight =
        |a: usize, b: usize| -> f64 { (-points[a].distance(&points[b]) / (alpha * l_max)).exp() };

    // `chosen` answers membership only; `links` carries the RNG-driven
    // insertion order so no HashSet iteration order can leak into the
    // blueprint (dtr-analysis: det-hash-iter).
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(cfg.duplex_links);
    let mut links: Vec<(usize, usize)> = Vec::with_capacity(cfg.duplex_links);

    // Spanning tree by weighted attachment: each node joins an attached
    // node sampled proportionally to the Waxman weight.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let newcomer = order[i];
        let total: f64 = order[..i].iter().map(|&j| weight(newcomer, j)).sum();
        let mut draw = rng.gen::<f64>() * total;
        let mut parent = order[0];
        for &j in &order[..i] {
            draw -= weight(newcomer, j);
            parent = j;
            if draw <= 0.0 {
                break;
            }
        }
        let k = pair_key(newcomer, parent);
        if chosen.insert(k) {
            links.push(k);
        }
    }

    // Remaining budget: weighted sampling without replacement over the
    // unused pairs.
    let mut rest: Vec<(usize, usize)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if !chosen.contains(&(a, b)) {
                rest.push((a, b));
            }
        }
    }
    while chosen.len() < cfg.duplex_links {
        let total: f64 = rest.iter().map(|&(a, b)| weight(a, b)).sum();
        let mut draw = rng.gen::<f64>() * total;
        let mut pick = rest.len() - 1;
        for (idx, &(a, b)) in rest.iter().enumerate() {
            draw -= weight(a, b);
            if draw <= 0.0 {
                pick = idx;
                break;
            }
        }
        let k = rest.swap_remove(pick);
        if chosen.insert(k) {
            links.push(k);
        }
    }

    Ok(Blueprint::from_euclidean(points, links))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> SynthConfig {
        SynthConfig {
            nodes: 25,
            duplex_links: 60,
            seed,
        }
    }

    #[test]
    fn exact_link_count_and_connected() {
        let bp = generate(&cfg(1)).unwrap();
        assert_eq!(bp.num_duplex(), 60);
        let net = bp.build(500e6).unwrap(); // build() checks connectivity
        assert_eq!(net.num_links(), 120);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&cfg(9)).unwrap();
        let b = generate(&cfg(9)).unwrap();
        assert_eq!(a.duplex, b.duplex);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&cfg(1)).unwrap();
        let b = generate(&cfg(2)).unwrap();
        assert_ne!(a.duplex, b.duplex);
    }

    #[test]
    fn small_alpha_prefers_short_links() {
        // Mean link length under strong locality must undercut the mean
        // under near-uniform selection, on the same point set.
        let local = generate_with_alpha(&cfg(5), 0.05).unwrap();
        let global = generate_with_alpha(&cfg(5), 50.0).unwrap();
        let mean_len = |bp: &Blueprint| -> f64 {
            bp.duplex
                .iter()
                .map(|&(a, b)| bp.points[a].distance(&bp.points[b]))
                .sum::<f64>()
                / bp.num_duplex() as f64
        };
        assert!(
            mean_len(&local) < mean_len(&global),
            "α=0.05 mean {} vs α=50 mean {}",
            mean_len(&local),
            mean_len(&global)
        );
    }

    #[test]
    fn rejects_impossible_budgets() {
        let too_few = SynthConfig {
            nodes: 10,
            duplex_links: 5,
            seed: 1,
        };
        assert!(matches!(
            generate(&too_few),
            Err(GenError::TooFewLinks { .. })
        ));
        let too_many = SynthConfig {
            nodes: 5,
            duplex_links: 11,
            seed: 1,
        };
        assert!(matches!(
            generate(&too_many),
            Err(GenError::TooManyLinks { .. })
        ));
    }

    #[test]
    fn full_mesh_budget_is_satisfiable() {
        let full = SynthConfig {
            nodes: 8,
            duplex_links: 28,
            seed: 3,
        };
        let bp = generate(&full).unwrap();
        assert_eq!(bp.num_duplex(), 28);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn bad_alpha_rejected() {
        let _ = generate_with_alpha(&cfg(1), 0.0);
    }
}
