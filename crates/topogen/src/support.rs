//! Shared internals for the synthesized-topology generators.

use dtr_net::Point;
use rand::Rng;

/// Uniform random points in the unit square (paper §V-A1: "nodes are
/// randomly distributed in a unit square").
pub(crate) fn unit_square_points(n: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Classic union-find with path halving; used by generators to guarantee
/// connectivity while hitting an exact link count.
pub(crate) struct DisjointSet {
    parent: Vec<usize>,
    components: usize,
}

impl DisjointSet {
    pub(crate) fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            components: n,
        }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Union the sets of `a` and `b`; returns `true` if they were separate.
    pub(crate) fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        self.components -= 1;
        true
    }

    pub(crate) fn num_components(&self) -> usize {
        self.components
    }
}

/// Key for a duplex pair with canonical ordering.
#[inline]
pub(crate) fn pair_key(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn points_are_in_unit_square() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = unit_square_points(100, &mut rng);
        assert_eq!(pts.len(), 100);
        assert!(pts
            .iter()
            .all(|p| (0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y)));
    }

    #[test]
    fn disjoint_set_tracks_components() {
        let mut ds = DisjointSet::new(4);
        assert_eq!(ds.num_components(), 4);
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0));
        assert!(ds.union(2, 3));
        assert_eq!(ds.num_components(), 2);
        assert!(ds.union(0, 3));
        assert_eq!(ds.num_components(), 1);
        assert_eq!(ds.find(0), ds.find(2));
    }

    #[test]
    fn pair_key_is_canonical() {
        assert_eq!(pair_key(5, 2), (2, 5));
        assert_eq!(pair_key(2, 5), (2, 5));
    }
}
