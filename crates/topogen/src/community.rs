//! **CommunityTopo** — community-structured / hierarchical topology
//! (extension family).
//!
//! Construction: `⌈√n⌉`-ish communities of near-equal size, each laid
//! out as a tight spatial cluster around a random center in the unit
//! square. A per-community random spanning tree plus a ring of
//! inter-community links forms the connected skeleton (exactly `n`
//! links); the remaining budget is filled with random pairs biased
//! [`INTRA_BIAS`]-strongly toward intra-community edges, giving the
//! dense-inside / sparse-between structure of hierarchical ISP
//! topologies. Node indices are contiguous per community
//! (`community_of = i * communities / n`-style blocks), so structure
//! tests can recover the partition without extra metadata.
//!
//! Determinism: single `StdRng` stream seeded from `cfg.seed`; candidate
//! lists are insertion-ordered `Vec`s with a `HashSet` used for
//! membership only (dtr-analysis: det-hash-iter), and
//! [`Blueprint::from_euclidean`] canonicalizes the final pair list.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::blueprint::Blueprint;
use crate::config::SynthConfig;
use crate::support::pair_key;
use crate::{validate_config, GenError};
use dtr_net::Point;

/// Probability that a fill edge is drawn inside a single community.
pub const INTRA_BIAS: f64 = 0.9;

/// Number of communities used for `n` nodes: `⌈√n⌉` clamped so every
/// community holds at least two nodes.
pub fn num_communities(nodes: usize) -> usize {
    ((nodes as f64).sqrt().ceil() as usize).clamp(2, nodes / 2)
}

/// The community block sizes for `n` nodes (near-equal, remainder spread
/// over the leading blocks); nodes are numbered contiguously per block.
fn block_sizes(nodes: usize, communities: usize) -> Vec<usize> {
    let base = nodes / communities;
    let extra = nodes % communities;
    (0..communities)
        .map(|ci| base + usize::from(ci < extra))
        .collect()
}

/// Generate a CommunityTopo blueprint with exactly `cfg.duplex_links`
/// links.
///
/// Requires `duplex_links >= nodes` (per-community trees + the
/// community ring) and at least 4 nodes (two communities of two).
pub fn generate(cfg: &SynthConfig) -> Result<Blueprint, GenError> {
    validate_config(cfg)?;
    let n = cfg.nodes;
    let m = cfg.duplex_links;
    if n < 4 {
        return Err(GenError::TooFewNodes(n));
    }
    if m < n {
        return Err(GenError::TooFewLinks {
            nodes: n,
            duplex_links: m,
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let c = num_communities(n);
    let sizes = block_sizes(n, c);
    let starts: Vec<usize> = sizes
        .iter()
        .scan(0usize, |acc, &s| {
            let start = *acc;
            *acc += s;
            Some(start)
        })
        .collect();

    // Tight spatial clusters: a random center per community, members
    // jittered around it (clamped to the unit square).
    let spread = 0.35 / (c as f64).sqrt();
    let mut points: Vec<Point> = Vec::with_capacity(n);
    for &size in sizes.iter().take(c) {
        let (cx, cy) = (rng.gen::<f64>(), rng.gen::<f64>());
        for _ in 0..size {
            let x = (cx + (rng.gen::<f64>() - 0.5) * 2.0 * spread).clamp(0.0, 1.0);
            let y = (cy + (rng.gen::<f64>() - 0.5) * 2.0 * spread).clamp(0.0, 1.0);
            points.push(Point::new(x, y));
        }
    }

    // `chosen` answers membership only; `links` carries the RNG-driven
    // insertion order (dtr-analysis: det-hash-iter).
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(m);
    let mut links: Vec<(usize, usize)> = Vec::with_capacity(m);
    let add = |chosen: &mut HashSet<(usize, usize)>,
               links: &mut Vec<(usize, usize)>,
               a: usize,
               b: usize|
     -> bool {
        let k = pair_key(a, b);
        if chosen.insert(k) {
            links.push(k);
            true
        } else {
            false
        }
    };

    // Skeleton: a random spanning tree inside every community (attach
    // each member to a random earlier member of its block) …
    for ci in 0..c {
        let (s, len) = (starts[ci], sizes[ci]);
        for i in 1..len {
            let parent = s + rng.gen_range(0..i);
            let fresh = add(&mut chosen, &mut links, s + i, parent);
            debug_assert!(fresh);
        }
    }
    // … plus a ring over the communities through random members.
    for ci in 0..c {
        let cj = (ci + 1) % c;
        let a = starts[ci] + rng.gen_range(0..sizes[ci]);
        let b = starts[cj] + rng.gen_range(0..sizes[cj]);
        // A duplicate is only possible when c == 2 closes the ring on
        // the same pair; retry through the fill loop below by skipping.
        add(&mut chosen, &mut links, a, b);
    }

    // Fill: biased INTRA_BIAS-strongly toward intra-community pairs;
    // the unbiased branch (and saturated communities falling through to
    // it) keeps the loop terminating for every feasible budget.
    while links.len() < m {
        let (a, b) = if rng.gen::<f64>() < INTRA_BIAS {
            let ci = rng.gen_range(0..c);
            let (s, len) = (starts[ci], sizes[ci]);
            (s + rng.gen_range(0..len), s + rng.gen_range(0..len))
        } else {
            (rng.gen_range(0..n), rng.gen_range(0..n))
        };
        if a != b {
            add(&mut chosen, &mut links, a, b);
        }
    }

    Ok(Blueprint::from_euclidean(points, links))
}

/// The community index of node `i` under this module's contiguous block
/// layout (test/analysis helper).
pub fn community_of(node: usize, nodes: usize) -> usize {
    let c = num_communities(nodes);
    let sizes = block_sizes(nodes, c);
    let mut acc = 0usize;
    for (ci, &s) in sizes.iter().enumerate() {
        acc += s;
        if node < acc {
            return ci;
        }
    }
    unreachable!("node index out of range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_link_count_and_connected() {
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 90,
            seed: 42,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 90);
        let net = bp.build(500e6).unwrap();
        assert_eq!(net.num_links(), 180);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            nodes: 40,
            duplex_links: 100,
            seed: 9,
        };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.duplex, b.duplex);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn intra_community_edges_dominate() {
        let cfg = SynthConfig {
            nodes: 60,
            duplex_links: 180,
            seed: 3,
        };
        let bp = generate(&cfg).unwrap();
        let intra = bp
            .duplex
            .iter()
            .filter(|&&(a, b)| community_of(a, 60) == community_of(b, 60))
            .count();
        // Under a uniform draw intra pairs are a ~1/c minority; the bias
        // plus the per-community trees must make them the majority.
        assert!(
            intra * 2 > bp.num_duplex(),
            "only {intra}/{} intra-community links",
            bp.num_duplex()
        );
    }

    #[test]
    fn community_partition_covers_all_nodes() {
        let n = 37;
        let c = num_communities(n);
        let mut counts = vec![0usize; c];
        for v in 0..n {
            counts[community_of(v, n)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), n);
        assert!(counts.iter().all(|&s| s >= 2));
    }

    #[test]
    fn rejects_sub_skeleton_budgets() {
        let cfg = SynthConfig {
            nodes: 10,
            duplex_links: 9,
            seed: 0,
        };
        assert!(matches!(generate(&cfg), Err(GenError::TooFewLinks { .. })));
    }

    #[test]
    fn dense_case_near_complete() {
        let cfg = SynthConfig {
            nodes: 8,
            duplex_links: 27,
            seed: 5,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 27);
        assert!(bp.build(1e9).is_ok());
    }
}
