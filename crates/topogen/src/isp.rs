//! Emulated North-American ISP backbone: 16 nodes, 70 directed links.
//!
//! The paper's "real" topology is a proprietary North-American ISP backbone
//! of 16 nodes and 70 links whose propagation delays come from geographical
//! distances (§V-A1). That topology is not public, so — per the
//! reproduction's substitution policy (DESIGN.md §7) — this module ships a
//! synthetic equivalent: 16 real North-American cities, 35 duplex links
//! forming a tier-1-style mesh (mean duplex degree 4.4, coast-to-coast
//! diameter ≈ 25 ms), propagation delays from great-circle distances with a
//! 1.3× fiber-routing factor at 200 000 km/s. Everything the paper's
//! evaluation exploits — node/link counts, delay range (≈ 2–18 ms),
//! meshiness — is matched.

use crate::blueprint::Blueprint;
use dtr_net::{NetError, Network, Point};

/// City name, latitude (deg), longitude (deg).
pub const CITIES: [(&str, f64, f64); 16] = [
    ("Seattle", 47.61, -122.33),
    ("Sunnyvale", 37.37, -122.04),
    ("LosAngeles", 34.05, -118.24),
    ("Phoenix", 33.45, -112.07),
    ("Denver", 39.74, -104.99),
    ("Dallas", 32.78, -96.80),
    ("Houston", 29.76, -95.36),
    ("KansasCity", 39.10, -94.58),
    ("Minneapolis", 44.98, -93.27),
    ("Chicago", 41.88, -87.63),
    ("Atlanta", 33.75, -84.39),
    ("Miami", 25.76, -80.19),
    ("WashingtonDC", 38.90, -77.04),
    ("NewYork", 40.71, -74.01),
    ("Boston", 42.36, -71.06),
    ("Toronto", 43.65, -79.38),
];

/// Duplex adjacency (indices into [`CITIES`]); 35 pairs = 70 directed links.
pub const ADJACENCY: [(usize, usize); 35] = [
    (0, 1),   // Seattle - Sunnyvale
    (0, 4),   // Seattle - Denver
    (0, 9),   // Seattle - Chicago
    (0, 8),   // Seattle - Minneapolis
    (1, 2),   // Sunnyvale - LosAngeles
    (1, 4),   // Sunnyvale - Denver
    (1, 3),   // Sunnyvale - Phoenix
    (2, 3),   // LosAngeles - Phoenix
    (2, 5),   // LosAngeles - Dallas
    (2, 6),   // LosAngeles - Houston
    (3, 4),   // Phoenix - Denver
    (3, 5),   // Phoenix - Dallas
    (4, 7),   // Denver - KansasCity
    (4, 8),   // Denver - Minneapolis
    (5, 6),   // Dallas - Houston
    (5, 7),   // Dallas - KansasCity
    (5, 10),  // Dallas - Atlanta
    (6, 10),  // Houston - Atlanta
    (6, 11),  // Houston - Miami
    (7, 9),   // KansasCity - Chicago
    (7, 8),   // KansasCity - Minneapolis
    (7, 10),  // KansasCity - Atlanta
    (8, 9),   // Minneapolis - Chicago
    (8, 15),  // Minneapolis - Toronto
    (9, 15),  // Chicago - Toronto
    (9, 13),  // Chicago - NewYork
    (9, 10),  // Chicago - Atlanta
    (9, 12),  // Chicago - WashingtonDC
    (10, 11), // Atlanta - Miami
    (10, 12), // Atlanta - WashingtonDC
    (11, 12), // Miami - WashingtonDC
    (12, 13), // WashingtonDC - NewYork
    (13, 14), // NewYork - Boston
    (13, 15), // NewYork - Toronto
    (14, 15), // Boston - Toronto
];

/// Speed of light in fiber, km/s.
const FIBER_KM_PER_S: f64 = 200_000.0;
/// Fiber paths are longer than great circles; standard planning factor.
const ROUTE_FACTOR: f64 = 1.3;
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Great-circle distance between two (lat, lon) pairs, km (haversine).
pub fn great_circle_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (la1, lo1) = (a.0.to_radians(), a.1.to_radians());
    let (la2, lo2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let h = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// One-way propagation delay (seconds) for a fiber link between two cities.
pub fn link_delay(a: (f64, f64), b: (f64, f64)) -> f64 {
    great_circle_km(a, b) * ROUTE_FACTOR / FIBER_KM_PER_S
}

/// The ISP backbone as a [`Blueprint`] (delays already in seconds; do *not*
/// rescale — geographic delays are the point of this topology).
pub fn blueprint() -> Blueprint {
    // Equirectangular projection for plotting; scaled to roughly a unit box.
    let mean_lat_cos =
        CITIES.iter().map(|c| c.1.to_radians().cos()).sum::<f64>() / CITIES.len() as f64;
    let points: Vec<Point> = CITIES
        .iter()
        .map(|&(_, lat, lon)| {
            Point::new(
                (lon + 122.33) / 51.27 * mean_lat_cos, // west edge at 0
                (lat - 25.76) / 21.85,                 // south edge at 0
            )
        })
        .collect();
    let duplex: Vec<(usize, usize)> = ADJACENCY.to_vec();
    let delays = duplex
        .iter()
        .map(|&(i, j)| link_delay((CITIES[i].1, CITIES[i].2), (CITIES[j].1, CITIES[j].2)))
        .collect();
    Blueprint {
        points,
        duplex,
        delays,
    }
}

/// The ISP backbone as a ready [`Network`] with uniform capacity.
pub fn network(capacity: f64) -> Result<Network, NetError> {
    blueprint().build(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_CAPACITY;

    #[test]
    fn paper_dimensions() {
        let net = network(DEFAULT_CAPACITY).unwrap();
        assert_eq!(net.num_nodes(), 16);
        assert_eq!(net.num_links(), 70);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn delays_in_paper_range() {
        // Paper: "link propagation delays ranged roughly from 5ms to 20ms".
        // Our geographic delays run ≈2–18 ms; assert the envelope.
        let bp = blueprint();
        let min = bp.delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bp.delays.iter().cloned().fold(0.0, f64::max);
        assert!(min > 1e-3, "min delay {min}");
        assert!(max < 20e-3, "max delay {max}");
    }

    #[test]
    fn diameter_near_theta() {
        // Coast-to-coast shortest-delay path should approximate the 25 ms
        // SLA bound the paper pairs this topology with.
        let net = network(DEFAULT_CAPACITY).unwrap();
        let d = net.delay_diameter().unwrap();
        assert!(
            (15e-3..=30e-3).contains(&d),
            "delay diameter {d} out of envelope"
        );
    }

    #[test]
    fn haversine_sanity() {
        // NYC <-> LA great-circle distance ≈ 3950 km.
        let nyc = (40.71, -74.01);
        let la = (34.05, -118.24);
        let d = great_circle_km(nyc, la);
        assert!((3900.0..4050.0).contains(&d), "distance {d}");
    }

    #[test]
    fn adjacency_has_no_duplicates_or_self_loops() {
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &ADJACENCY {
            assert_ne!(a, b);
            assert!(a < CITIES.len() && b < CITIES.len());
            assert!(seen.insert((a.min(b), a.max(b))), "dup {a}-{b}");
        }
    }

    #[test]
    fn degrees_match_backbone_profile() {
        let net = network(DEFAULT_CAPACITY).unwrap();
        // Mean duplex degree 70/16 = 4.375 as in the paper.
        assert!((net.mean_duplex_degree() - 4.375).abs() < 1e-9);
    }
}
