//! Deterministic lattice topologies: ring, grid, torus (extension).
//!
//! Regular structures with *known* path diversity, used to bracket the
//! paper's synthesized topologies in controlled experiments and tests:
//!
//! * a **ring** has exactly two node-disjoint paths between every pair —
//!   the minimum for single-failure survivability and the worst case for
//!   robust optimization's "explore alternate paths" mechanism;
//! * a **grid** has diversity growing with Manhattan distance;
//! * a **torus** (wraparound grid) is vertex-transitive with uniform
//!   degree 4 — a popular regular testbed.
//!
//! Every generator returns a [`Blueprint`] (delays = Euclidean distances,
//! scale with [`Blueprint::scaled_to_diameter`] as usual).

use dtr_net::Point;

use crate::blueprint::Blueprint;
use crate::GenError;

/// Ring of `n ≥ 3` nodes placed on a circle inscribed in the unit square.
pub fn ring(n: usize) -> Result<Blueprint, GenError> {
    if n < 3 {
        return Err(GenError::TooFewNodes(n));
    }
    let points: Vec<Point> = (0..n)
        .map(|i| {
            let a = i as f64 * std::f64::consts::TAU / n as f64;
            Point::new(0.5 + 0.5 * a.cos(), 0.5 + 0.5 * a.sin())
        })
        .collect();
    let duplex: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Ok(Blueprint::from_euclidean(points, duplex))
}

/// `rows × cols` grid. With `wrap = true` the grid closes into a torus
/// (wraparound links on both axes).
///
/// Constraints: at least 2 nodes; a wrapped axis needs length ≥ 3,
/// otherwise the wraparound link would duplicate an existing one.
pub fn grid(rows: usize, cols: usize, wrap: bool) -> Result<Blueprint, GenError> {
    let n = rows * cols;
    if n < 2 {
        return Err(GenError::TooFewNodes(n));
    }
    if wrap && ((rows > 1 && rows < 3) || (cols > 1 && cols < 3)) {
        // A 2-long wrapped axis folds onto an existing link.
        return Err(GenError::TooFewNodes(n));
    }
    let at = |r: usize, c: usize| -> usize { r * cols + c };
    let points: Vec<Point> = (0..rows)
        .flat_map(|r| {
            (0..cols).map(move |c| {
                Point::new(
                    if cols > 1 {
                        c as f64 / (cols - 1) as f64
                    } else {
                        0.5
                    },
                    if rows > 1 {
                        r as f64 / (rows - 1) as f64
                    } else {
                        0.5
                    },
                )
            })
        })
        .collect();

    let mut duplex = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                duplex.push((at(r, c), at(r, c + 1)));
            } else if wrap && cols > 2 {
                duplex.push((at(r, 0), at(r, c)));
            }
            if r + 1 < rows {
                duplex.push((at(r, c), at(r + 1, c)));
            } else if wrap && rows > 2 {
                duplex.push((at(0, c), at(r, c)));
            }
        }
    }
    Ok(Blueprint::from_euclidean(points, duplex))
}

/// Square torus shortcut: `grid(side, side, true)`.
pub fn torus(side: usize) -> Result<Blueprint, GenError> {
    grid(side, side, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_dimensions_and_connectivity() {
        let bp = ring(8).unwrap();
        assert_eq!(bp.points.len(), 8);
        assert_eq!(bp.num_duplex(), 8);
        let net = bp.build(500e6).unwrap();
        assert!(net.is_strongly_connected());
        // Every node has duplex degree exactly 2.
        for v in net.nodes() {
            assert_eq!(net.out_degree(v), 2);
        }
    }

    #[test]
    fn ring_links_are_uniform_length() {
        let bp = ring(12).unwrap();
        let lens: Vec<f64> = bp
            .duplex
            .iter()
            .map(|&(a, b)| bp.points[a].distance(&bp.points[b]))
            .collect();
        for l in &lens {
            assert!((l - lens[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_rejects_degenerate_sizes() {
        assert!(matches!(ring(2), Err(GenError::TooFewNodes(2))));
        assert!(matches!(ring(0), Err(GenError::TooFewNodes(0))));
    }

    #[test]
    fn open_grid_link_count() {
        // rows*(cols-1) + cols*(rows-1) links.
        let bp = grid(3, 4, false).unwrap();
        assert_eq!(bp.points.len(), 12);
        assert_eq!(bp.num_duplex(), 3 * 3 + 4 * 2);
        let net = bp.build(500e6).unwrap();
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn torus_is_degree_regular() {
        let bp = torus(4).unwrap();
        assert_eq!(bp.points.len(), 16);
        assert_eq!(bp.num_duplex(), 32); // 2 per node on a 4-regular torus
        let net = bp.build(500e6).unwrap();
        for v in net.nodes() {
            assert_eq!(net.out_degree(v), 4);
        }
    }

    #[test]
    fn path_grid_has_bridges_ring_grid_does_not() {
        // 1×5 open grid is a path: every link is a bridge.
        let path = grid(1, 5, false).unwrap().build(500e6).unwrap();
        assert!(dtr_net::bridges::survivable_duplex_failures(&path).is_empty());
        // 1×5 wrapped grid is a ring: no bridges.
        let ring5 = grid(1, 5, true).unwrap().build(500e6).unwrap();
        assert_eq!(
            dtr_net::bridges::survivable_duplex_failures(&ring5).len(),
            5
        );
    }

    #[test]
    fn wrap_rejects_two_long_axes() {
        assert!(grid(2, 5, true).is_err());
        assert!(grid(5, 2, true).is_err());
        assert!(grid(2, 5, false).is_ok());
    }

    #[test]
    fn single_node_grid_rejected() {
        assert!(matches!(grid(1, 1, false), Err(GenError::TooFewNodes(1))));
    }

    #[test]
    fn grid_positions_fill_unit_square() {
        let bp = grid(3, 3, false).unwrap();
        for p in &bp.points {
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
        // Corners are at the square's corners.
        assert_eq!(bp.points[0], Point::new(0.0, 0.0));
        assert_eq!(bp.points[8], Point::new(1.0, 1.0));
    }
}
