//! **NearTopo** — nodes connect to their closest neighbours (§V-A1).
//!
//! This is the paper's limited-path-diversity topology: geographically
//! local links only, so paths between far-apart nodes funnel through a
//! small set of "core" links (§V-B analyzes exactly this behaviour).
//!
//! Construction: a Euclidean minimum spanning tree guarantees connectivity
//! (MST edges are nearest-neighbour-ish by construction), then nodes add
//! links to their 1st, 2nd, … nearest remaining neighbours, round-robin in
//! increasing rank, until the target link count is reached.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

use crate::blueprint::Blueprint;
use crate::config::SynthConfig;
use crate::support::{pair_key, unit_square_points, DisjointSet};
use crate::{validate_config, GenError};

/// Generate a NearTopo blueprint with exactly `cfg.duplex_links` links.
pub fn generate(cfg: &SynthConfig) -> Result<Blueprint, GenError> {
    validate_config(cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let points = unit_square_points(n, &mut rng);

    // Per-node neighbour lists sorted by distance.
    let mut nearest: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        // Total key (distance, node id): equidistant neighbours rank by
        // ascending id — the order the previous stable sort produced.
        others.sort_unstable_by(|&a, &b| {
            points[i]
                .distance_sq(&points[a])
                .total_cmp(&points[i].distance_sq(&points[b]))
                .then(a.cmp(&b))
        });
        nearest.push(others);
    }

    // `chosen` answers membership only; `links` carries the insertion
    // order so no HashSet iteration order can leak into the blueprint
    // (dtr-analysis: det-hash-iter).
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(cfg.duplex_links);
    let mut links: Vec<(usize, usize)> = Vec::with_capacity(cfg.duplex_links);

    // Euclidean MST (Prim) for guaranteed connectivity with short links.
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = points[0].distance_sq(&points[j]);
        best_from[j] = 0;
    }
    let mut ds = DisjointSet::new(n);
    for _ in 1..n {
        let (next, _) = best_dist
            .iter()
            .enumerate()
            .filter(|&(j, _)| !in_tree[j])
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("tree incomplete implies a remaining node");
        in_tree[next] = true;
        let k = pair_key(next, best_from[next]);
        if chosen.insert(k) {
            links.push(k);
        }
        ds.union(next, best_from[next]);
        for j in 0..n {
            if !in_tree[j] {
                let d = points[next].distance_sq(&points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_from[j] = next;
                }
            }
        }
    }
    debug_assert_eq!(ds.num_components(), 1);

    // Round-robin nearest-neighbour fill: rank 0 = closest neighbour, etc.
    let mut node_order: Vec<usize> = (0..n).collect();
    #[allow(clippy::needless_range_loop)] // rank orders the neighbour lists
    'outer: for rank in 0..n - 1 {
        node_order.shuffle(&mut rng); // avoid id-order bias within a rank
        for &v in &node_order {
            if chosen.len() >= cfg.duplex_links {
                break 'outer;
            }
            let u = nearest[v][rank];
            let k = pair_key(v, u);
            if chosen.insert(k) {
                links.push(k);
            }
        }
    }

    Ok(Blueprint::from_euclidean(points, links))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_connected() {
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 90,
            seed: 11,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 90);
        assert!(bp.build(500e6).is_ok());
    }

    #[test]
    fn links_are_shorter_than_rand_topo() {
        // The defining property: NearTopo's mean link length is much
        // smaller than RandTopo's at the same size, because links are
        // local. (This is what limits path diversity in the paper.)
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 90,
            seed: 3,
        };
        let near = generate(&cfg).unwrap();
        let rand = crate::rand_topo::generate(&cfg).unwrap();
        let mean = |bp: &Blueprint| bp.delays.iter().sum::<f64>() / bp.delays.len() as f64;
        assert!(
            mean(&near) < 0.6 * mean(&rand),
            "near {} vs rand {}",
            mean(&near),
            mean(&rand)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            nodes: 25,
            duplex_links: 60,
            seed: 8,
        };
        assert_eq!(
            generate(&cfg).unwrap().duplex,
            generate(&cfg).unwrap().duplex
        );
    }

    #[test]
    fn tree_only_budget_still_connects() {
        let cfg = SynthConfig {
            nodes: 12,
            duplex_links: 11,
            seed: 2,
        };
        let bp = generate(&cfg).unwrap();
        // MST is exactly n-1 links; budget allows no more.
        assert_eq!(bp.num_duplex(), 11);
        assert!(bp.build(1e9).is_ok());
    }
}
