//! # dtr-topogen — topology generators
//!
//! Builds the four families of network topologies the paper evaluates on
//! (§V-A1):
//!
//! * [`rand_topo`] — **RandTopo**: random graph of a given average node
//!   degree, nodes uniform in the unit square.
//! * [`near_topo`] — **NearTopo**: nodes connect to their closest
//!   neighbours (limited path diversity in the core — the paper's outlier
//!   topology).
//! * [`pl_topo`] — **PLTopo**: power-law topology grown by
//!   Barabási–Albert preferential attachment (the paper's reference \[3\]).
//! * [`isp`] — a 16-node / 70-directed-link emulation of a North-American
//!   ISP backbone with geographically derived propagation delays.
//!
//! Plus extension families beyond the paper's four:
//!
//! * [`waxman`] — **WaxmanTopo**: spatial random graph with exponential
//!   distance decay (locality between NearTopo and RandTopo).
//! * [`ws_topo`] — **WSTopo**: Watts–Strogatz small-world rewiring of a
//!   circulant ring lattice (rewiring probability β, exact link budget,
//!   connectivity preserved by the unrewired ring).
//! * [`er_topo`] — **ERTopo**: Erdős–Rényi `G(n, m)` uniform draw with
//!   deterministic connectivity repair at an exact link count.
//! * [`community`] — **CommunityTopo**: community-structured /
//!   hierarchical topology (per-community trees + community ring +
//!   intra-biased fill), the large-tier workhorse of the scale benches.
//! * [`lattice`] — deterministic ring / grid / torus testbeds with known
//!   path diversity.
//! * [`geant`] — a 22-node / 68-directed-link GEANT-like pan-European
//!   backbone, a second geographic topology.
//!
//! All synthesized generators produce a [`Blueprint`] (points + duplex link
//! list + raw distances). A blueprint is then scaled so the network's
//! *propagation-delay diameter* matches the target SLA bound θ (the paper
//! scales delays "proportionally to ensure a reasonable match between the
//! target SLA bound θ and the network diameter", and fixes the maximum
//! end-to-end propagation delay to 25 ms in §V-E), and finally built into a
//! [`dtr_net::Network`] with uniform 500 Mb/s capacities (or custom ones).
//!
//! Determinism: every generator takes an explicit `u64` seed and uses
//! `rand::rngs::StdRng`, so a (seed, config) pair always produces the same
//! topology on every platform *and in every process*: hash collections are
//! used for membership only (candidate lists are insertion-ordered `Vec`s
//! or `BTreeSet`s — the dtr-analysis `det-hash-iter` contract), and
//! [`Blueprint::from_euclidean`] canonicalizes every pair list, so no
//! iteration-order or float-comparison ambiguity can leak into a
//! blueprint. See DETERMINISM.md § Generator determinism.
//!
//! ```
//! use dtr_topogen::{SynthConfig, rand_topo, DEFAULT_CAPACITY};
//!
//! let cfg = SynthConfig { nodes: 30, duplex_links: 90, seed: 7 };
//! let bp = rand_topo::generate(&cfg).unwrap();
//! let net = bp
//!     .scaled_to_diameter(25e-3)     // θ = 25 ms coast-to-coast
//!     .build(DEFAULT_CAPACITY)
//!     .unwrap();
//! assert_eq!(net.num_nodes(), 30);
//! assert_eq!(net.num_links(), 180); // directed
//! assert!(net.is_strongly_connected());
//! ```

#![forbid(unsafe_code)]

mod blueprint;
pub mod community;
mod config;
pub mod er_topo;
pub mod geant;
pub mod isp;
pub mod lattice;
pub mod near_topo;
pub mod pl_topo;
pub mod rand_topo;
mod resize;
mod support;
pub mod waxman;
pub mod ws_topo;

pub use blueprint::Blueprint;
pub use config::{SynthConfig, TopoKind};
pub use resize::resize_congested_links;

/// Uniform link capacity used throughout the paper's evaluation: 500 Mb/s.
pub const DEFAULT_CAPACITY: f64 = 500e6;

/// Default SLA bound θ = 25 ms (≈ U.S. coast-to-coast propagation delay),
/// also used as the target propagation-delay diameter for synthesized
/// topologies.
pub const DEFAULT_THETA: f64 = 25e-3;

/// Generate a synthesized topology of the given kind, scaled to the default
/// 25 ms delay diameter, with uniform default capacities. Convenience
/// wrapper used by the evaluation harness and examples.
pub fn synth(kind: TopoKind, cfg: &SynthConfig) -> Result<dtr_net::Network, GenError> {
    let bp = match kind {
        TopoKind::Rand => rand_topo::generate(cfg)?,
        TopoKind::Near => near_topo::generate(cfg)?,
        TopoKind::PowerLaw => pl_topo::generate(cfg)?,
        TopoKind::Waxman => waxman::generate(cfg)?,
        TopoKind::WattsStrogatz => ws_topo::generate(cfg)?,
        TopoKind::ErdosRenyi => er_topo::generate(cfg)?,
        TopoKind::Community => community::generate(cfg)?,
    };
    bp.scaled_to_diameter(DEFAULT_THETA)
        .build(DEFAULT_CAPACITY)
        .map_err(GenError::Net)
}

/// Errors raised by topology generation.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// Fewer duplex links requested than needed for connectivity (`n-1`).
    TooFewLinks { nodes: usize, duplex_links: usize },
    /// More duplex links requested than a simple graph admits
    /// (`n(n-1)/2`).
    TooManyLinks { nodes: usize, duplex_links: usize },
    /// Need at least 2 nodes.
    TooFewNodes(usize),
    /// Underlying network-construction failure (generator bug).
    Net(dtr_net::NetError),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::TooFewLinks {
                nodes,
                duplex_links,
            } => write!(
                f,
                "{duplex_links} duplex links cannot connect {nodes} nodes (need >= {})",
                nodes.saturating_sub(1)
            ),
            GenError::TooManyLinks {
                nodes,
                duplex_links,
            } => write!(
                f,
                "{duplex_links} duplex links exceed simple-graph maximum for {nodes} nodes"
            ),
            GenError::TooFewNodes(n) => write!(f, "need at least 2 nodes, got {n}"),
            GenError::Net(e) => write!(f, "network construction failed: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

pub(crate) fn validate_config(cfg: &SynthConfig) -> Result<(), GenError> {
    if cfg.nodes < 2 {
        return Err(GenError::TooFewNodes(cfg.nodes));
    }
    if cfg.duplex_links < cfg.nodes - 1 {
        return Err(GenError::TooFewLinks {
            nodes: cfg.nodes,
            duplex_links: cfg.duplex_links,
        });
    }
    if cfg.duplex_links > cfg.nodes * (cfg.nodes - 1) / 2 {
        return Err(GenError::TooManyLinks {
            nodes: cfg.nodes,
            duplex_links: cfg.duplex_links,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_dispatches_all_kinds() {
        for kind in [
            TopoKind::Rand,
            TopoKind::Near,
            TopoKind::PowerLaw,
            TopoKind::Waxman,
            TopoKind::WattsStrogatz,
            TopoKind::ErdosRenyi,
            TopoKind::Community,
        ] {
            let cfg = SynthConfig {
                nodes: 12,
                duplex_links: 24,
                seed: 3,
            };
            let net = synth(kind, &cfg).unwrap();
            assert_eq!(net.num_nodes(), 12);
            assert_eq!(net.num_links(), 48);
            assert!(net.is_strongly_connected());
        }
    }

    #[test]
    fn config_validation() {
        assert!(matches!(
            validate_config(&SynthConfig {
                nodes: 1,
                duplex_links: 0,
                seed: 0
            }),
            Err(GenError::TooFewNodes(1))
        ));
        assert!(matches!(
            validate_config(&SynthConfig {
                nodes: 10,
                duplex_links: 5,
                seed: 0
            }),
            Err(GenError::TooFewLinks { .. })
        ));
        assert!(matches!(
            validate_config(&SynthConfig {
                nodes: 5,
                duplex_links: 11,
                seed: 0
            }),
            Err(GenError::TooManyLinks { .. })
        ));
        assert!(validate_config(&SynthConfig {
            nodes: 5,
            duplex_links: 10,
            seed: 0
        })
        .is_ok());
    }

    #[test]
    fn gen_error_display() {
        let e = GenError::TooFewLinks {
            nodes: 10,
            duplex_links: 5,
        };
        assert!(e.to_string().contains("cannot connect"));
    }
}
