//! **RandTopo** — random graph of a given average node degree (§V-A1).
//!
//! Construction: nodes uniform in the unit square; a uniformly random
//! spanning tree guarantees connectivity, then the remaining link budget is
//! filled with uniformly random node pairs. The paper only specifies
//! "random graph of given average node degree" plus connectivity, which
//! this realizes with an exact link count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::blueprint::Blueprint;
use crate::config::SynthConfig;
use crate::support::{pair_key, unit_square_points};
use crate::{validate_config, GenError};

/// Generate a RandTopo blueprint with exactly `cfg.duplex_links` links.
pub fn generate(cfg: &SynthConfig) -> Result<Blueprint, GenError> {
    validate_config(cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let points = unit_square_points(n, &mut rng);

    // `chosen` answers membership only; `links` carries the RNG-driven
    // insertion order so no HashSet iteration order can leak into the
    // blueprint (dtr-analysis: det-hash-iter).
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(cfg.duplex_links);
    let mut links: Vec<(usize, usize)> = Vec::with_capacity(cfg.duplex_links);

    // Uniform random spanning tree via a random node permutation: attach
    // each node to a uniformly random already-attached node.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let k = pair_key(order[i], parent);
        if chosen.insert(k) {
            links.push(k);
        }
    }

    // Fill the remaining budget with uniform random pairs.
    while chosen.len() < cfg.duplex_links {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let k = pair_key(a, b);
            if chosen.insert(k) {
                links.push(k);
            }
        }
    }

    Ok(Blueprint::from_euclidean(points, links))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_link_count_and_connected() {
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 90,
            seed: 42,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 90);
        let net = bp.build(500e6).unwrap(); // build() checks connectivity
        assert_eq!(net.num_links(), 180);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            nodes: 20,
            duplex_links: 50,
            seed: 9,
        };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.duplex, b.duplex);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            generate(&SynthConfig {
                nodes: 20,
                duplex_links: 50,
                seed,
            })
            .unwrap()
        };
        assert_ne!(mk(1).duplex, mk(2).duplex);
    }

    #[test]
    fn minimal_tree_case() {
        // duplex_links == n-1 must still connect (pure spanning tree).
        let cfg = SynthConfig {
            nodes: 10,
            duplex_links: 9,
            seed: 5,
        };
        let bp = generate(&cfg).unwrap();
        assert!(bp.build(1e9).is_ok());
    }

    #[test]
    fn dense_case_near_complete() {
        let cfg = SynthConfig {
            nodes: 8,
            duplex_links: 27, // out of 28 possible
            seed: 5,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 27);
        assert!(bp.build(1e9).is_ok());
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(generate(&SynthConfig {
            nodes: 10,
            duplex_links: 3,
            seed: 0
        })
        .is_err());
    }
}
