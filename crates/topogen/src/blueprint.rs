//! Intermediate topology representation: geometry + duplex link list.

use dtr_net::{NetError, Network, NetworkBuilder, Point};

/// A topology before capacities are assigned: node positions, duplex links
/// and per-link propagation delays (initially the raw Euclidean distances;
/// [`Blueprint::scaled_to_diameter`] turns them into seconds).
#[derive(Clone, Debug)]
pub struct Blueprint {
    /// Node positions (unit square for synthesized topologies).
    pub points: Vec<Point>,
    /// Duplex links as `(a, b)` node-index pairs with `a < b`.
    pub duplex: Vec<(usize, usize)>,
    /// Per-duplex-link propagation delay. Unit is arbitrary until scaling.
    pub delays: Vec<f64>,
}

impl Blueprint {
    /// Build from points and duplex pairs, with delays set to the Euclidean
    /// distances between the endpoints (the paper's synthesized-topology
    /// rule: "link propagation delays are determined by the Euclidean
    /// distances between nodes").
    pub fn from_euclidean(points: Vec<Point>, mut duplex: Vec<(usize, usize)>) -> Self {
        for pair in &mut duplex {
            if pair.0 > pair.1 {
                *pair = (pair.1, pair.0);
            }
        }
        duplex.sort_unstable();
        duplex.dedup();
        let delays = duplex
            .iter()
            .map(|&(a, b)| points[a].distance(&points[b]))
            .collect();
        Blueprint {
            points,
            duplex,
            delays,
        }
    }

    /// Number of duplex links.
    pub fn num_duplex(&self) -> usize {
        self.duplex.len()
    }

    /// Multiply every delay by `factor`.
    pub fn scale_delays(&mut self, factor: f64) {
        for d in &mut self.delays {
            *d *= factor;
        }
    }

    /// Scale all delays proportionally so that the propagation-delay
    /// diameter (longest shortest-delay path between any node pair) equals
    /// `target` seconds. This implements the paper's rule of matching the
    /// network diameter to the SLA bound θ (§V-A1, fn 14).
    ///
    /// Zero-distance links (coincident points) are nudged to the smallest
    /// positive delay so the later delay model stays meaningful.
    ///
    /// # Panics
    /// Panics if the blueprint is not connected (generator bug) or if
    /// `target` is not positive.
    pub fn scaled_to_diameter(mut self, target: f64) -> Self {
        assert!(target > 0.0, "target diameter must be positive");
        let smallest_pos = self
            .delays
            .iter()
            .copied()
            .filter(|&d| d > 0.0)
            .fold(f64::INFINITY, f64::min);
        if smallest_pos.is_finite() {
            for d in &mut self.delays {
                if *d <= 0.0 {
                    *d = smallest_pos;
                }
            }
        } else {
            // All nodes coincident: give every link a nominal unit delay.
            for d in &mut self.delays {
                *d = 1.0;
            }
        }
        let probe = self
            .build(1.0)
            .expect("blueprint must form a valid network");
        let diameter = probe
            .delay_diameter()
            .expect("blueprint must be connected before scaling");
        let factor = target / diameter;
        self.scale_delays(factor);
        self
    }

    /// Build a [`Network`] with a uniform capacity on every link.
    pub fn build(&self, capacity: f64) -> Result<Network, NetError> {
        self.build_with(|_, _| capacity)
    }

    /// Build a [`Network`] with per-link capacities decided by
    /// `capacity_of(duplex_index, (a, b))`.
    pub fn build_with(
        &self,
        capacity_of: impl Fn(usize, (usize, usize)) -> f64,
    ) -> Result<Network, NetError> {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = self.points.iter().map(|&p| b.add_node(p)).collect();
        for (i, (&(x, y), &d)) in self.duplex.iter().zip(&self.delays).enumerate() {
            b.add_duplex_link(ids[x], ids[y], capacity_of(i, (x, y)), d)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn from_euclidean_computes_distances_and_dedups() {
        let bp = Blueprint::from_euclidean(
            square_points(),
            vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 0)],
        );
        assert_eq!(bp.num_duplex(), 4); // (0,1) deduped
        assert!(bp.delays.iter().all(|&d| (d - 1.0).abs() < 1e-12));
    }

    #[test]
    fn scaled_to_diameter_hits_target() {
        // Ring around the square: diameter = 2 hops = 2.0 raw.
        let bp = Blueprint::from_euclidean(square_points(), vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        let bp = bp.scaled_to_diameter(25e-3);
        let net = bp.build(500e6).unwrap();
        let d = net.delay_diameter().unwrap();
        assert!((d - 25e-3).abs() < 1e-9, "diameter {d}");
    }

    #[test]
    fn coincident_points_get_positive_delays() {
        let pts = vec![Point::ORIGIN, Point::ORIGIN, Point::new(1.0, 0.0)];
        let bp = Blueprint::from_euclidean(pts, vec![(0, 1), (1, 2)]);
        let bp = bp.scaled_to_diameter(10e-3);
        assert!(bp.delays.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn build_with_custom_capacities() {
        let bp = Blueprint::from_euclidean(square_points(), vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        let net = bp
            .build_with(|i, _| if i == 0 { 1e9 } else { 500e6 })
            .unwrap();
        let caps: Vec<_> = net.links().map(|l| net.link(l).capacity).collect();
        assert!(caps.contains(&1e9) && caps.contains(&500e6));
    }

    #[test]
    #[should_panic(expected = "Connected")]
    fn scaling_disconnected_blueprint_panics() {
        let pts = vec![
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(6.0, 5.0),
        ];
        let bp = Blueprint::from_euclidean(pts, vec![(0, 1), (2, 3)]);
        let _ = bp.scaled_to_diameter(25e-3);
    }
}
