//! GEANT-like pan-European research backbone preset (extension).
//!
//! A second "real-world" topology alongside the North-American ISP
//! backbone of [`crate::isp`]: 22 European capitals/hubs, 34 duplex links
//! (68 directed), adjacency modeled on the publicly documented GEANT
//! research network of the mid-2000s (the standard second testbed of the
//! traffic-engineering literature). Propagation delays come from
//! great-circle distances with the same 1.3× fiber-routing factor as the
//! ISP preset; intra-European distances yield delays of ≈ 1–15 ms, so
//! the default 25 ms SLA bound is comfortably loose and a θ ≈ 15 ms bound
//! is "tight" — useful for SLA-sensitivity experiments on a second
//! geography.

use crate::blueprint::Blueprint;
use crate::isp::link_delay;
use dtr_net::{NetError, Network, Point};

/// City name, latitude (deg), longitude (deg).
pub const CITIES: [(&str, f64, f64); 22] = [
    ("London", 51.51, -0.13),
    ("Paris", 48.86, 2.35),
    ("Brussels", 50.85, 4.35),
    ("Amsterdam", 52.37, 4.90),
    ("Frankfurt", 50.11, 8.68),
    ("Geneva", 46.20, 6.14),
    ("Milan", 45.46, 9.19),
    ("Madrid", 40.42, -3.70),
    ("Lisbon", 38.72, -9.14),
    ("Dublin", 53.35, -6.26),
    ("Copenhagen", 55.68, 12.57),
    ("Stockholm", 59.33, 18.07),
    ("Helsinki", 60.17, 24.94),
    ("Berlin", 52.52, 13.40),
    ("Prague", 50.08, 14.44),
    ("Vienna", 48.21, 16.37),
    ("Budapest", 47.50, 19.04),
    ("Warsaw", 52.23, 21.01),
    ("Zagreb", 45.81, 15.98),
    ("Rome", 41.90, 12.50),
    ("Athens", 37.98, 23.73),
    ("Bucharest", 44.43, 26.10),
];

/// Duplex adjacency (indices into [`CITIES`]); 34 pairs = 68 directed
/// links. Core hubs (London, Paris, Frankfurt, Amsterdam, Geneva, Milan,
/// Vienna) are densely meshed; peripheral nodes are dual-homed.
pub const ADJACENCY: [(usize, usize); 34] = [
    (0, 1),   // London - Paris
    (0, 3),   // London - Amsterdam
    (0, 4),   // London - Frankfurt
    (0, 8),   // London - Lisbon (submarine)
    (0, 9),   // London - Dublin
    (1, 2),   // Paris - Brussels
    (1, 5),   // Paris - Geneva
    (1, 7),   // Paris - Madrid
    (2, 3),   // Brussels - Amsterdam
    (3, 4),   // Amsterdam - Frankfurt
    (3, 9),   // Amsterdam - Dublin
    (3, 10),  // Amsterdam - Copenhagen
    (4, 5),   // Frankfurt - Geneva
    (4, 10),  // Frankfurt - Copenhagen
    (4, 13),  // Frankfurt - Berlin
    (4, 14),  // Frankfurt - Prague
    (5, 6),   // Geneva - Milan
    (5, 7),   // Geneva - Madrid
    (6, 15),  // Milan - Vienna
    (6, 19),  // Milan - Rome
    (6, 20),  // Milan - Athens (submarine)
    (7, 8),   // Madrid - Lisbon
    (10, 11), // Copenhagen - Stockholm
    (10, 13), // Copenhagen - Berlin
    (11, 12), // Stockholm - Helsinki
    (12, 17), // Helsinki - Warsaw
    (13, 17), // Berlin - Warsaw
    (14, 15), // Prague - Vienna
    (15, 16), // Vienna - Budapest
    (15, 18), // Vienna - Zagreb
    (16, 18), // Budapest - Zagreb
    (16, 21), // Budapest - Bucharest
    (19, 20), // Rome - Athens (submarine)
    (20, 21), // Athens - Bucharest
];

/// The backbone as a [`Blueprint`] (delays already in seconds; do *not*
/// rescale — geographic delays are the point of this topology).
pub fn blueprint() -> Blueprint {
    let mean_lat_cos =
        CITIES.iter().map(|c| c.1.to_radians().cos()).sum::<f64>() / CITIES.len() as f64;
    // Equirectangular projection normalized to roughly a unit box:
    // longitudes span -9.14..26.10 (35.24°), latitudes 37.98..60.17
    // (22.19°).
    let points: Vec<Point> = CITIES
        .iter()
        .map(|&(_, lat, lon)| {
            Point::new((lon + 9.14) / 35.24 * mean_lat_cos, (lat - 37.98) / 22.19)
        })
        .collect();
    let duplex: Vec<(usize, usize)> = ADJACENCY.to_vec();
    let delays = duplex
        .iter()
        .map(|&(i, j)| link_delay((CITIES[i].1, CITIES[i].2), (CITIES[j].1, CITIES[j].2)))
        .collect();
    Blueprint {
        points,
        duplex,
        delays,
    }
}

/// The backbone as a ready [`Network`] with uniform capacity.
pub fn network(capacity: f64) -> Result<Network, NetError> {
    blueprint().build(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_CAPACITY;

    #[test]
    fn dimensions_and_connectivity() {
        let net = network(DEFAULT_CAPACITY).unwrap();
        assert_eq!(net.num_nodes(), 22);
        assert_eq!(net.num_links(), 68);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn adjacency_is_simple_and_in_range() {
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &ADJACENCY {
            assert!(a < CITIES.len() && b < CITIES.len());
            assert_ne!(a, b, "self-loop in adjacency");
            assert!(
                seen.insert((a.min(b), a.max(b))),
                "duplicate pair ({a},{b})"
            );
        }
    }

    #[test]
    fn every_city_is_at_least_dual_homed() {
        let mut degree = [0usize; CITIES.len()];
        for &(a, b) in &ADJACENCY {
            degree[a] += 1;
            degree[b] += 1;
        }
        for (i, &d) in degree.iter().enumerate() {
            assert!(d >= 2, "{} has degree {d}", CITIES[i].0);
        }
    }

    #[test]
    fn delays_in_european_range() {
        let bp = blueprint();
        let min = bp.delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bp.delays.iter().cloned().fold(0.0, f64::max);
        // Brussels-Amsterdam ≈ 170 km ≈ 1.1 ms; London-Lisbon ≈ 1585 km
        // ≈ 10 ms; everything well under the 25 ms default θ.
        assert!(min > 0.5e-3, "min delay {min}");
        assert!(max < 16e-3, "max delay {max}");
    }

    #[test]
    fn survives_every_single_link_failure_except_none() {
        // The mesh is 2-edge-connected: every physical link is failable.
        let net = network(DEFAULT_CAPACITY).unwrap();
        let failable = dtr_net::bridges::survivable_duplex_failures(&net);
        assert_eq!(failable.len(), ADJACENCY.len());
    }

    #[test]
    fn projection_lands_in_unit_box() {
        let bp = blueprint();
        for p in &bp.points {
            assert!((-0.01..=1.01).contains(&p.x), "x = {}", p.x);
            assert!((-0.01..=1.01).contains(&p.y), "y = {}", p.y);
        }
    }
}
