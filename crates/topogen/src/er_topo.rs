//! **ERTopo** — Erdős–Rényi `G(n, m)` random graph (extension family).
//!
//! Construction: nodes uniform in the unit square; exactly
//! `cfg.duplex_links` distinct node pairs drawn uniformly at random.
//! Unlike [`crate::rand_topo`] (which seeds a spanning tree first), the
//! draw is the unconditioned `G(n, m)` distribution; connectivity is then
//! *repaired*: components are bridged in node order and, for every
//! bridge added, the most recently drawn cycle edge is dropped, keeping
//! the link count exact while perturbing the uniform draw as little as
//! possible.
//!
//! Determinism: single `StdRng` stream seeded from `cfg.seed`; candidate
//! lists are insertion-ordered `Vec`s with a `HashSet` used for
//! membership only (dtr-analysis: det-hash-iter), and
//! [`Blueprint::from_euclidean`] canonicalizes the final pair list.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::blueprint::Blueprint;
use crate::config::SynthConfig;
use crate::support::{pair_key, unit_square_points, DisjointSet};
use crate::{validate_config, GenError};

/// Generate an ERTopo blueprint with exactly `cfg.duplex_links` links.
pub fn generate(cfg: &SynthConfig) -> Result<Blueprint, GenError> {
    validate_config(cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let m = cfg.duplex_links;
    let points = unit_square_points(n, &mut rng);

    // Uniform G(n, m) draw. Dense budgets (> half of all pairs) switch
    // from rejection sampling to a complement draw so the loop stays
    // near-linear: draw the pairs to *exclude*, then keep the rest in
    // canonical order.
    let total_pairs = n * (n - 1) / 2;
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(m);
    let mut links: Vec<(usize, usize)> = Vec::with_capacity(m);
    if m * 2 > total_pairs {
        let mut excluded: HashSet<(usize, usize)> = HashSet::with_capacity(total_pairs - m);
        while excluded.len() < total_pairs - m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                excluded.insert(pair_key(a, b));
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if !excluded.contains(&(a, b)) {
                    chosen.insert((a, b));
                    links.push((a, b));
                }
            }
        }
    } else {
        while chosen.len() < m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let k = pair_key(a, b);
                if chosen.insert(k) {
                    links.push(k);
                }
            }
        }
    }

    // Connectivity repair. Bridges between components are always fresh
    // pairs (an existing edge would have merged them), and with
    // c components the draw holds m - (n - c) >= c - 1 cycle edges
    // (m >= n - 1 by validation), so there is always a cycle edge to
    // drop per bridge.
    let mut ds = DisjointSet::new(n);
    let mut cycle_edges: Vec<usize> = Vec::new(); // indices into `links`
    for (idx, &(a, b)) in links.iter().enumerate() {
        if !ds.union(a, b) {
            cycle_edges.push(idx);
        }
    }
    if ds.num_components() > 1 {
        // One representative per component, in node order.
        let mut reps: Vec<usize> = Vec::new();
        let mut seen_roots: HashSet<usize> = HashSet::new();
        for v in 0..n {
            let r = ds.find(v);
            if seen_roots.insert(r) {
                reps.push(v);
            }
        }
        let mut dropped: Vec<usize> = Vec::new();
        for pair in reps.windows(2) {
            let k = pair_key(pair[0], pair[1]);
            let fresh = chosen.insert(k);
            debug_assert!(fresh, "cross-component pairs cannot be edges");
            links.push(k);
            dropped.push(cycle_edges.pop().expect("m >= n-1 guarantees a cycle edge"));
        }
        dropped.sort_unstable();
        for &idx in dropped.iter().rev() {
            let k = links.swap_remove(idx);
            chosen.remove(&k);
        }
    }
    debug_assert_eq!(links.len(), m);

    Ok(Blueprint::from_euclidean(points, links))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_link_count_and_connected() {
        let cfg = SynthConfig {
            nodes: 30,
            duplex_links: 90,
            seed: 42,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 90);
        let net = bp.build(500e6).unwrap();
        assert_eq!(net.num_links(), 180);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig {
            nodes: 20,
            duplex_links: 40,
            seed: 9,
        };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.duplex, b.duplex);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn sparse_draws_still_connect() {
        // m = n - 1: the repair must end at a spanning tree.
        for seed in 0..20 {
            let cfg = SynthConfig {
                nodes: 12,
                duplex_links: 11,
                seed,
            };
            let bp = generate(&cfg).unwrap();
            assert_eq!(bp.num_duplex(), 11);
            assert!(bp.build(1e9).is_ok(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn dense_case_near_complete() {
        let cfg = SynthConfig {
            nodes: 8,
            duplex_links: 27,
            seed: 5,
        };
        let bp = generate(&cfg).unwrap();
        assert_eq!(bp.num_duplex(), 27);
        assert!(bp.build(1e9).is_ok());
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(generate(&SynthConfig {
            nodes: 10,
            duplex_links: 3,
            seed: 0
        })
        .is_err());
    }
}
