//! Crash-safe snapshot codec for the search engines.
//!
//! A snapshot is a single self-describing byte string:
//!
//! ```text
//! magic "DTRSNAP\0" (8 bytes)
//! version: u32 LE
//! kind:    u32 LE          (KIND_DTR_PHASE2 | KIND_MTR_ROBUST)
//! payload_len: u64 LE
//! payload  (length-prefixed sections, all integers LE, f64 via to_bits)
//! checksum: u64 LE         (FNV-1a over every byte before it)
//! ```
//!
//! The codec is dependency-free and bit-exact: `f64` values round-trip
//! through [`f64::to_bits`]/[`f64::from_bits`], so a restored search state
//! is field-for-field identical to the saved one, NaN payloads included.
//!
//! Durability comes from [`save_atomic`]: bytes are written to a sibling
//! temporary file and atomically renamed over the target, so a crash
//! mid-checkpoint never destroys the previous good snapshot. The
//! [`FileSink`] checkpoint sink exposes a deterministic torn-write fault
//! (partial temp-file write, no rename) so tests can prove exactly that.
//!
//! Every failure mode is a typed [`SnapshotError`]; decoding never panics
//! on truncated, corrupted or version-skewed input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"DTRSNAP\0";
/// Current (and only supported) snapshot format version.
pub const VERSION: u32 = 1;
/// Snapshot kind: DTR phase-2 robust search state.
pub const KIND_DTR_PHASE2: u32 = 1;
/// Snapshot kind: MTR robust search state.
pub const KIND_MTR_ROBUST: u32 = 2;

/// Typed snapshot failure. Decoding and checkpoint I/O never panic; every
/// malformed input maps to one of these variants.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error while reading or writing a snapshot.
    Io(std::io::Error),
    /// Input ended before a read of `need` bytes could complete.
    Truncated {
        /// Bytes the decoder needed for the next field.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The leading magic bytes are not `DTRSNAP\0`.
    BadMagic,
    /// The snapshot was written by an unsupported format version.
    UnsupportedVersion {
        /// Version recorded in the snapshot.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The snapshot kind does not match what the caller asked to restore.
    WrongKind {
        /// Kind recorded in the snapshot.
        found: u32,
        /// Kind the caller expected.
        expected: u32,
    },
    /// Stored FNV-1a checksum disagrees with the recomputed one.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// Structurally invalid payload (bad section tag, impossible length,
    /// trailing bytes, out-of-range enum discriminant, ...).
    Corrupt(&'static str),
    /// The snapshot is internally valid but was taken under a different
    /// search configuration than the one it is being restored into.
    Mismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: needed {need} bytes, had {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: {supported})"
                )
            }
            SnapshotError::WrongKind { found, expected } => {
                write!(f, "wrong snapshot kind {found} (expected {expected})")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Mismatch(what) => {
                write!(f, "snapshot/configuration mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit hash over `bytes` (the snapshot trailer checksum).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Snapshot writer with a reusable internal buffer.
///
/// `begin` clears the buffer but keeps its capacity, so a checkpoint loop
/// that reuses one `Encoder` stops allocating once the buffer has grown to
/// the steady-state snapshot size.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
    sections: Vec<usize>,
}

impl Encoder {
    /// New encoder with an empty buffer.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Start a snapshot of the given kind: resets the buffer and writes the
    /// magic/version/kind header plus a payload-length placeholder.
    pub fn begin(&mut self, kind: u32) {
        self.buf.clear();
        self.sections.clear();
        self.buf.extend_from_slice(&MAGIC);
        self.buf.extend_from_slice(&VERSION.to_le_bytes());
        self.buf.extend_from_slice(&kind.to_le_bytes());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
    }

    /// Finish the snapshot: patch the payload length, append the FNV-1a
    /// checksum and return the complete byte string.
    pub fn finish(&mut self) -> &[u8] {
        debug_assert!(self.sections.is_empty(), "unclosed snapshot section");
        let header = MAGIC.len() + 4 + 4 + 8;
        let payload_len = (self.buf.len() - header) as u64;
        let at = header - 8;
        self.buf[at..at + 8].copy_from_slice(&payload_len.to_le_bytes());
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        &self.buf
    }

    /// Open a length-prefixed section with the given tag.
    pub fn begin_section(&mut self, tag: u32) {
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.sections.push(self.buf.len());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
    }

    /// Close the innermost open section, patching its length prefix.
    pub fn end_section(&mut self) {
        let at = self
            .sections
            .pop()
            .expect("end_section without begin_section");
        let len = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// Append one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` bit-exactly via [`f64::to_bits`].
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes (no length prefix).
    #[inline]
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_slice_u32(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Append a length-prefixed `f64` slice, bit-exact.
    pub fn put_slice_f64(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }
}

/// Snapshot reader over a validated payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Validate the framing of `bytes` (magic, version, kind, payload length,
/// checksum) and return a [`Decoder`] positioned at the start of the
/// payload.
pub fn open(bytes: &[u8], expect_kind: u32) -> Result<Decoder<'_>, SnapshotError> {
    let header = MAGIC.len() + 4 + 4 + 8;
    if bytes.len() < header + 8 {
        return Err(SnapshotError::Truncated {
            need: header + 8,
            have: bytes.len(),
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut rd = Decoder {
        buf: bytes,
        pos: MAGIC.len(),
    };
    let version = rd.take_u32()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind = rd.take_u32()?;
    let payload_len = rd.take_u64()? as usize;
    if bytes.len() != header + payload_len + 8 {
        return Err(SnapshotError::Truncated {
            need: header + payload_len + 8,
            have: bytes.len(),
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8-byte trailer"));
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    // Kind is checked after the checksum so a corrupted kind field reports
    // as corruption, not as a confusing wrong-kind error.
    if kind != expect_kind {
        return Err(SnapshotError::WrongKind {
            found: kind,
            expected: expect_kind,
        });
    }
    Ok(Decoder {
        buf: &bytes[..body_end],
        pos: header,
    })
}

impl<'a> Decoder<'a> {
    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(SnapshotError::Truncated { need: n, have });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one byte.
    #[inline]
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0 or 1 is corruption.
    #[inline]
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool byte out of range")),
        }
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `usize` stored as `u64`; lengths wider than the platform
    /// `usize` are corruption.
    #[inline]
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| SnapshotError::Corrupt("length exceeds platform usize"))
    }

    /// Read an `f64` bit-exactly via [`f64::from_bits`].
    #[inline]
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a length-prefixed `u32` vector.
    pub fn take_vec_u32(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.take_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_u32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `f64` vector, bit-exact.
    pub fn take_vec_f64(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.take_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    /// Read a length prefix for elements of `elem_size` bytes, rejecting
    /// lengths that could not possibly fit in the remaining payload (so a
    /// corrupted length cannot trigger a huge allocation).
    #[inline]
    pub fn take_len(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.take_usize()?;
        if n.checked_mul(elem_size)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(SnapshotError::Corrupt("length prefix exceeds payload"));
        }
        Ok(n)
    }

    /// Read a section header and verify its tag; the declared length must
    /// fit in the remaining payload.
    pub fn section(&mut self, tag: u32) -> Result<(), SnapshotError> {
        let found = self.take_u32()?;
        if found != tag {
            return Err(SnapshotError::Corrupt("unexpected section tag"));
        }
        let len = self.take_usize()?;
        if len > self.remaining() {
            return Err(SnapshotError::Corrupt("section length exceeds payload"));
        }
        Ok(())
    }

    /// Assert the whole payload was consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `bytes` to `path` atomically: write a sibling `<name>.tmp` file,
/// then rename it over the target. A crash before the rename leaves the
/// previous snapshot at `path` untouched.
pub fn save_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read a snapshot file written by [`save_atomic`].
pub fn load(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    Ok(std::fs::read(path)?)
}

/// Destination for periodic checkpoints emitted at search boundaries.
pub trait CheckpointSink {
    /// Persist one complete snapshot byte string.
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
}

/// Simulated torn write: on store number `at_store` (0-based), only the
/// first `keep_bytes` bytes reach the temporary file and the atomic rename
/// never happens — modeling a crash mid-checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct TornWrite {
    /// Which store call (0-based) the fault fires on.
    pub at_store: u64,
    /// How many bytes of the snapshot make it to the temp file.
    pub keep_bytes: usize,
}

/// File-backed checkpoint sink using atomic write-rename, with an optional
/// deterministic torn-write fault for crash-safety tests.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    fault: Option<TornWrite>,
    stores: u64,
}

impl FileSink {
    /// Sink writing snapshots to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileSink {
            path: path.into(),
            fault: None,
            stores: 0,
        }
    }

    /// Arm a deterministic torn-write fault.
    pub fn with_torn_write(mut self, fault: TornWrite) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Path the sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of store calls so far (including the torn one).
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Read back the last durably stored snapshot.
    pub fn load(&self) -> Result<Vec<u8>, SnapshotError> {
        load(&self.path)
    }
}

impl CheckpointSink for FileSink {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let n = self.stores;
        self.stores += 1;
        if let Some(f) = self.fault {
            if f.at_store == n {
                // Crash mid-checkpoint: partial temp-file write, no rename.
                let keep = f.keep_bytes.min(bytes.len());
                std::fs::write(tmp_path(&self.path), &bytes[..keep])?;
                return Ok(());
            }
        }
        save_atomic(&self.path, bytes)
    }
}

/// In-memory checkpoint sink recording every snapshot, for tests that kill
/// and restore a search without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every snapshot stored, in order.
    pub snapshots: Vec<Vec<u8>>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The most recent snapshot, if any checkpoint fired.
    pub fn latest(&self) -> Option<&[u8]> {
        self.snapshots.last().map(|s| s.as_slice())
    }
}

impl CheckpointSink for MemorySink {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.snapshots.push(bytes.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.begin(KIND_DTR_PHASE2);
        enc.begin_section(0x11);
        enc.put_u32(7);
        enc.put_u64(u64::MAX);
        enc.put_f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN payload
        enc.put_bool(true);
        enc.put_slice_u32(&[3, 1, 4, 1, 5]);
        enc.put_slice_f64(&[-0.0, 1.5e-300]);
        enc.end_section();
        enc.finish().to_vec()
    }

    fn decode_sample(bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut rd = open(bytes, KIND_DTR_PHASE2)?;
        rd.section(0x11)?;
        assert_eq!(rd.take_u32()?, 7);
        assert_eq!(rd.take_u64()?, u64::MAX);
        assert_eq!(rd.take_f64()?.to_bits(), 0x7ff8_dead_beef_0001);
        assert!(rd.take_bool()?);
        assert_eq!(rd.take_vec_u32()?, vec![3, 1, 4, 1, 5]);
        let fs = rd.take_vec_f64()?;
        assert_eq!(fs[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(fs[1], 1.5e-300);
        rd.finish()
    }

    #[test]
    fn round_trip_bit_exact() {
        decode_sample(&sample()).expect("round trip");
    }

    #[test]
    fn encoder_reuse_is_clean() {
        let mut enc = Encoder::new();
        enc.begin(KIND_MTR_ROBUST);
        enc.put_u64(42);
        let _ = enc.finish();
        // Second use must not leak bytes from the first.
        enc.begin(KIND_DTR_PHASE2);
        enc.begin_section(0x11);
        enc.put_u32(9);
        enc.end_section();
        let bytes = enc.finish().to_vec();
        let mut rd = open(&bytes, KIND_DTR_PHASE2).expect("open");
        rd.section(0x11).expect("section");
        assert_eq!(rd.take_u32().expect("u32"), 9);
        rd.finish().expect("fully consumed");
    }

    #[test]
    fn truncation_at_every_length_errors_never_panics() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = decode_sample(&bytes[..cut]).expect_err("truncated input must fail");
            match err {
                SnapshotError::Truncated { .. }
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Corrupt(_)
                | SnapshotError::BadMagic => {}
                other => panic!("unexpected error for cut {cut}: {other}"),
            }
        }
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample();
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_sample(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn version_skew() {
        let mut bytes = sample();
        // Version field sits right after the 8-byte magic.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_sample(&bytes),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            })
        ));
    }

    #[test]
    fn wrong_kind() {
        let bytes = sample();
        assert!(matches!(
            open(&bytes, KIND_MTR_ROBUST),
            Err(SnapshotError::WrongKind {
                found: KIND_DTR_PHASE2,
                expected: KIND_MTR_ROBUST
            })
        ));
    }

    #[test]
    fn flipped_checksum_byte() {
        let mut bytes = sample();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_sample(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_flipped_payload_bit_is_caught_or_structural() {
        let bytes = sample();
        // Flip one bit in each byte past the magic; every corruption must
        // surface as a typed error (checksum catches all single flips).
        for i in MAGIC.len()..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(decode_sample(&b).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut enc = Encoder::new();
        enc.begin(KIND_DTR_PHASE2);
        enc.put_u32(1);
        enc.put_u32(2);
        let bytes = enc.finish().to_vec();
        let mut rd = open(&bytes, KIND_DTR_PHASE2).expect("open");
        assert_eq!(rd.take_u32().expect("u32"), 1);
        assert!(matches!(
            rd.finish(),
            Err(SnapshotError::Corrupt("trailing bytes after payload"))
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected_without_allocation() {
        let mut enc = Encoder::new();
        enc.begin(KIND_DTR_PHASE2);
        enc.put_u64(u64::MAX); // absurd element count
        let bytes = enc.finish().to_vec();
        let mut rd = open(&bytes, KIND_DTR_PHASE2).expect("open");
        assert!(matches!(rd.take_vec_f64(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn atomic_save_survives_torn_write() {
        let dir = std::env::temp_dir().join(format!(
            "dtr_persist_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("search.snap");

        let good = sample();
        let mut sink = FileSink::new(&path).with_torn_write(TornWrite {
            at_store: 1,
            keep_bytes: 10,
        });
        sink.store(&good).expect("first store");
        assert_eq!(sink.load().expect("readable"), good);

        // Second store tears mid-write: the previous snapshot must survive
        // and still decode.
        let mut second = sample();
        second[20] ^= 0xff; // a different (still framed) payload
        sink.store(&second)
            .expect("torn store reports ok (crash model)");
        let survived = sink.load().expect("previous snapshot intact");
        assert_eq!(survived, good);
        decode_sample(&survived).expect("previous snapshot still valid");

        // The torn temp file exists but is partial garbage.
        let tmp = tmp_path(&path);
        let torn = std::fs::read(&tmp).expect("torn temp file exists");
        assert_eq!(torn.len(), 10);
        assert!(open(&torn, KIND_DTR_PHASE2).is_err());

        // A third store (post-restart) atomically replaces the snapshot.
        sink.store(&good).expect("third store");
        assert_eq!(sink.load().expect("readable"), good);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_and_source() {
        let io = SnapshotError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&io).is_some());
        let s = format!(
            "{} | {} | {}",
            SnapshotError::BadMagic,
            SnapshotError::Truncated { need: 8, have: 3 },
            SnapshotError::Mismatch("seed differs"),
        );
        assert!(s.contains("magic") && s.contains("needed 8") && s.contains("seed"));
    }
}
