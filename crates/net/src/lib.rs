//! # dtr-net — network graph substrate
//!
//! Directed-graph network model used throughout the `dtr` workspace, the
//! reproduction of *"Balancing Performance, Robustness and Flexibility in
//! Routing Systems"* (Kwong, Guérin, Shaikh, Tao — CoNEXT 2008 / TNSM 2010).
//!
//! The paper models the network as a directed graph `G = (V, E)` where every
//! link `l ∈ E` has a capacity `C_l` and a propagation delay `p_l`
//! (paper §III). Links are physically duplex — a fiber failure kills both
//! directions — but logically each direction is an independent routable link
//! with its own pair of IGP weights, exactly as in OSPF/IS-IS.
//!
//! This crate provides:
//!
//! * [`Network`] — the immutable graph: nodes, directed links, adjacency,
//!   duplex pairing, optional Euclidean node positions.
//! * [`NetworkBuilder`] — the only way to construct a [`Network`]; validates
//!   invariants at `build()` time.
//! * [`LinkMask`] — a compact bitset of *down* links used to express failure
//!   scenarios without copying the graph.
//! * [`connectivity`] — reachability / strong-connectivity queries under a
//!   mask.
//! * [`bridges`] — identification of *cut pairs*: duplex links whose failure
//!   partitions the network (excluded from single-link failure enumeration,
//!   because no routing can survive a partition).
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! Everything here is plain, allocation-light, synchronous Rust: the
//! workload is a CPU-bound simulator, so (per the Tokio guide's own advice)
//! no async runtime is involved anywhere in the workspace.
//!
//! ## Example
//!
//! ```
//! use dtr_net::{NetworkBuilder, Point};
//!
//! let mut b = NetworkBuilder::new();
//! let a = b.add_node(Point::new(0.0, 0.0));
//! let c = b.add_node(Point::new(1.0, 0.0));
//! // 500 Mb/s duplex link with 5 ms propagation delay each way.
//! b.add_duplex_link(a, c, 500e6, 5e-3).unwrap();
//! let net = b.build().unwrap();
//! assert_eq!(net.num_nodes(), 2);
//! assert_eq!(net.num_links(), 2); // two directed links
//! assert!(net.is_strongly_connected());
//! ```

#![forbid(unsafe_code)]

pub mod bridges;
mod builder;
pub mod connectivity;
pub mod dot;
mod error;
mod geometry;
mod graph;
mod ids;
pub mod io;
mod link;
mod mask;

pub use builder::NetworkBuilder;
pub use error::NetError;
pub use geometry::Point;
pub use graph::Network;
pub use ids::{LinkId, NodeId};
pub use link::Link;
pub use mask::LinkMask;
