//! Typed index newtypes for nodes and links.
//!
//! Dense `u32` indices: every algorithm in the workspace indexes flat
//! `Vec`s by these, so they must stay cheap to copy and convert.

use std::fmt;

/// Identifier of a node (router) in a [`crate::Network`].
///
/// Node ids are dense: a network with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a *directed* link in a [`crate::Network`].
///
/// Link ids are dense: a network with `m` directed links uses ids `0..m`.
/// The two directions of a duplex link have distinct `LinkId`s related
/// through [`crate::Network::reverse_link`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl NodeId {
    /// Construct from a raw index. The index is not validated here; passing
    /// an out-of-range id to a [`crate::Network`] method panics there.
    ///
    /// # Panics
    /// Panics if `index` does not fit the dense `u32` id space; use
    /// [`try_new`](Self::try_new) where the caller can report a typed
    /// error instead ([`crate::NetworkBuilder::try_add_node`] does).
    #[inline]
    pub fn new(index: usize) -> Self {
        Self::try_new(index).expect("node index exceeds u32")
    }

    /// Fallible form of [`new`](Self::new): a typed
    /// [`NetError::TooManyNodes`](crate::NetError::TooManyNodes) instead
    /// of a panic when `index` overflows the `u32` id space.
    #[inline]
    pub fn try_new(index: usize) -> Result<Self, crate::NetError> {
        u32::try_from(index)
            .map(NodeId)
            .map_err(|_| crate::NetError::TooManyNodes(index))
    }

    /// Raw dense index, suitable for indexing per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Construct from a raw index. The index is not validated here; passing
    /// an out-of-range id to a [`crate::Network`] method panics there.
    ///
    /// # Panics
    /// Panics if `index` does not fit the dense `u32` id space; the
    /// builder validates link counts with [`try_new`](Self::try_new)
    /// before minting ids, so construction paths never reach this panic.
    #[inline]
    pub fn new(index: usize) -> Self {
        Self::try_new(index).expect("link index exceeds u32")
    }

    /// Fallible form of [`new`](Self::new): a typed
    /// [`NetError::TooManyLinks`](crate::NetError::TooManyLinks) instead
    /// of a panic when `index` overflows the `u32` id space.
    #[inline]
    pub fn try_new(index: usize) -> Result<Self, crate::NetError> {
        u32::try_from(index)
            .map(LinkId)
            .map_err(|_| crate::NetError::TooManyLinks(index))
    }

    /// Raw dense index, suitable for indexing per-link vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        for i in [0usize, 1, 7, 1_000_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn link_id_round_trips_index() {
        for i in [0usize, 1, 7, 1_000_000] {
            assert_eq!(LinkId::new(i).index(), i);
        }
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(LinkId::new(0) < LinkId::new(10));
    }

    #[test]
    fn debug_formats_are_prefixed() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{:?}", LinkId::new(4)), "l4");
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }

    // Boundary regression (mock indices only — no real allocation): the
    // last representable id constructs, one past it is a typed error.
    #[test]
    fn try_new_is_exact_at_the_u32_boundary() {
        use crate::NetError;
        let last = u32::MAX as usize;
        assert_eq!(NodeId::try_new(last), Ok(NodeId(u32::MAX)));
        assert_eq!(LinkId::try_new(last), Ok(LinkId(u32::MAX)));
        assert_eq!(
            NodeId::try_new(last + 1),
            Err(NetError::TooManyNodes(last + 1))
        );
        assert_eq!(
            LinkId::try_new(last + 1),
            Err(NetError::TooManyLinks(last + 1))
        );
    }
}
