//! Planar node embedding.
//!
//! The paper places synthesized-topology nodes "randomly distributed in a
//! unit square" and derives link propagation delays from Euclidean
//! distances (§V-A1). For the emulated North-American ISP backbone, node
//! positions come from (scaled) city coordinates. Either way a 2-D point
//! per node is all the geometry the system ever needs.

/// A point in the plane. Coordinates are dimensionless; the topology
/// generators scale distances into propagation delays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx.hypot(dy)
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparing distances, e.g. in nearest-neighbour topology generation).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(0.25, -7.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(0.7, 0.7);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(1.0, 1.0);
        assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-12);
    }
}
