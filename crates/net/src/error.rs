//! Error type for network construction.

use std::fmt;

use crate::ids::NodeId;

/// Errors raised while building a [`crate::Network`].
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// A link referenced a node id that was never added.
    UnknownNode(NodeId),
    /// A link's source equals its destination.
    SelfLoop(NodeId),
    /// A directed link between this ordered pair already exists. The model
    /// is a simple digraph: parallel links would make per-link weights
    /// ambiguous in the SPF.
    DuplicateLink(NodeId, NodeId),
    /// Capacity must be strictly positive (it divides the load in both cost
    /// models, Eq. (1b) and the Fortz–Thorup function).
    NonPositiveCapacity(f64),
    /// Propagation delay must be finite and non-negative.
    InvalidDelay(f64),
    /// `build()` requires a strongly connected network; `build_unchecked()`
    /// skips this check.
    NotStronglyConnected,
    /// The network must contain at least one node.
    Empty,
    /// Node count would exceed the dense `u32` id space (and with it the
    /// CSR offset arithmetic); carries the rejected index.
    TooManyNodes(usize),
    /// Directed-link count would exceed the dense `u32` id space; carries
    /// the rejected index.
    TooManyLinks(usize),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(v) => write!(f, "unknown node {v:?}"),
            NetError::SelfLoop(v) => write!(f, "self-loop at node {v:?}"),
            NetError::DuplicateLink(s, d) => {
                write!(f, "duplicate link {s:?} -> {d:?}")
            }
            NetError::NonPositiveCapacity(c) => {
                write!(f, "capacity must be > 0, got {c}")
            }
            NetError::InvalidDelay(d) => {
                write!(f, "propagation delay must be finite and >= 0, got {d}")
            }
            NetError::NotStronglyConnected => {
                write!(f, "network is not strongly connected")
            }
            NetError::Empty => write!(f, "network has no nodes"),
            NetError::TooManyNodes(i) => {
                write!(f, "node index {i} exceeds the u32 id space")
            }
            NetError::TooManyLinks(i) => {
                write!(f, "directed link index {i} exceeds the u32 id space")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::DuplicateLink(NodeId::new(1), NodeId::new(2));
        assert_eq!(e.to_string(), "duplicate link n1 -> n2");
        assert!(NetError::Empty.to_string().contains("no nodes"));
    }
}
