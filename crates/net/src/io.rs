//! Plain-text (de)serialization of networks.
//!
//! A deliberately simple line format — easy to diff, easy to generate
//! from other tools, stable across versions:
//!
//! ```text
//! # dtr network v1
//! nodes 3
//! node 0 0.0 0.0
//! node 1 1.0 0.0
//! node 2 0.5 1.0
//! link 0 1 500000000 0.005
//! link 1 0 500000000 0.005
//! ```
//!
//! `link` lines are *directed*; duplex pairing is re-derived on load from
//! matching reverse lines, exactly as the builder does.

use crate::builder::NetworkBuilder;
use crate::geometry::Point;
use crate::graph::Network;
use crate::ids::NodeId;

/// Errors raised when parsing the network text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// First non-comment line must be `nodes <count>`.
    MissingHeader,
    /// Line failed to parse; contains (line number, description).
    Malformed(usize, String),
    /// Construction failed after parsing (duplicate link, bad capacity…).
    Build(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing 'nodes <count>' header"),
            ParseError::Malformed(line, what) => write!(f, "line {line}: {what}"),
            ParseError::Build(e) => write!(f, "network construction failed: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a network to the v1 text format.
pub fn to_text(net: &Network) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("# dtr network v1\n");
    let _ = writeln!(s, "nodes {}", net.num_nodes());
    for v in net.nodes() {
        let p = net.position(v);
        let _ = writeln!(s, "node {} {} {}", v, p.x, p.y);
    }
    for l in net.links() {
        let link = net.link(l);
        let _ = writeln!(
            s,
            "link {} {} {} {}",
            link.src, link.dst, link.capacity, link.prop_delay
        );
    }
    s
}

/// Parse the v1 text format. Requires strong connectivity (the format
/// stores full networks, not fragments).
pub fn from_text(text: &str) -> Result<Network, ParseError> {
    let mut b = NetworkBuilder::new();
    let mut declared_nodes: Option<usize> = None;
    let mut seen_nodes = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("nodes") => {
                let n: usize = parse_field(&mut parts, lineno, "node count")?;
                declared_nodes = Some(n);
            }
            Some("node") => {
                if declared_nodes.is_none() {
                    return Err(ParseError::MissingHeader);
                }
                let id: usize = parse_field(&mut parts, lineno, "node id")?;
                let x: f64 = parse_field(&mut parts, lineno, "x coordinate")?;
                let y: f64 = parse_field(&mut parts, lineno, "y coordinate")?;
                if id != seen_nodes {
                    return Err(ParseError::Malformed(
                        lineno,
                        format!(
                            "node ids must be dense and ordered; expected {seen_nodes}, got {id}"
                        ),
                    ));
                }
                b.add_node(Point::new(x, y));
                seen_nodes += 1;
            }
            Some("link") => {
                let src: usize = parse_field(&mut parts, lineno, "source node")?;
                let dst: usize = parse_field(&mut parts, lineno, "destination node")?;
                let cap: f64 = parse_field(&mut parts, lineno, "capacity")?;
                let delay: f64 = parse_field(&mut parts, lineno, "propagation delay")?;
                b.add_link(NodeId::new(src), NodeId::new(dst), cap, delay)
                    .map_err(|e| ParseError::Build(e.to_string()))?;
            }
            Some(other) => {
                return Err(ParseError::Malformed(
                    lineno,
                    format!("unknown directive '{other}'"),
                ))
            }
            None => unreachable!("empty lines are skipped"),
        }
    }

    match declared_nodes {
        None => Err(ParseError::MissingHeader),
        Some(n) if n != seen_nodes => Err(ParseError::Build(format!(
            "header declares {n} nodes but {seen_nodes} were defined"
        ))),
        Some(_) => b.build().map_err(|e| ParseError::Build(e.to_string())),
    }
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, ParseError> {
    parts
        .next()
        .ok_or_else(|| ParseError::Malformed(lineno, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::Malformed(lineno, format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.5));
        let d = b.add_node(Point::new(0.25, 1.0));
        b.add_duplex_link(a, c, 500e6, 5e-3).unwrap();
        b.add_duplex_link(c, d, 250e6, 7.5e-3).unwrap();
        b.add_duplex_link(d, a, 500e6, 2e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let net = sample();
        let text = to_text(&net);
        let back = from_text(&text).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_links(), net.num_links());
        for l in net.links() {
            assert_eq!(back.link(l).src, net.link(l).src);
            assert_eq!(back.link(l).dst, net.link(l).dst);
            assert_eq!(back.link(l).capacity, net.link(l).capacity);
            assert_eq!(back.link(l).prop_delay, net.link(l).prop_delay);
            assert_eq!(back.reverse_link(l), net.reverse_link(l));
        }
        for v in net.nodes() {
            assert_eq!(back.position(v), net.position(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nnodes 2\nnode 0 0 0\nnode 1 1 1\n# mid comment\nlink 0 1 1e9 0.001\nlink 1 0 1e9 0.001\n";
        let net = from_text(text).unwrap();
        assert_eq!(net.num_nodes(), 2);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(
            from_text("node 0 0 0\n"),
            Err(ParseError::MissingHeader)
        ));
        assert!(matches!(from_text(""), Err(ParseError::MissingHeader)));
    }

    #[test]
    fn non_dense_node_ids_rejected() {
        let text = "nodes 2\nnode 0 0 0\nnode 2 1 1\n";
        assert!(matches!(from_text(text), Err(ParseError::Malformed(3, _))));
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let text = "nodes 3\nnode 0 0 0\nnode 1 1 1\nlink 0 1 1e9 0.001\nlink 1 0 1e9 0.001\n";
        assert!(matches!(from_text(text), Err(ParseError::Build(_))));
    }

    #[test]
    fn malformed_link_reports_line() {
        let text = "nodes 2\nnode 0 0 0\nnode 1 1 1\nlink 0 nope 1e9 0.001\n";
        match from_text(text) {
            Err(ParseError::Malformed(4, what)) => assert!(what.contains("destination")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unknown_directive_rejected() {
        let text = "nodes 1\nnode 0 0 0\nfrobnicate 1 2 3\n";
        assert!(matches!(from_text(text), Err(ParseError::Malformed(3, _))));
    }
}
