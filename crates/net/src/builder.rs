//! Validated construction of [`Network`]s.

use std::collections::HashSet;

use crate::error::NetError;
use crate::geometry::Point;
use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;

/// Builder for [`Network`]. Collects nodes and links, validates them, and
/// produces the immutable graph.
///
/// ```
/// use dtr_net::{NetworkBuilder, Point};
/// let mut b = NetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0));
/// let c = b.add_node(Point::new(0.5, 0.5));
/// b.add_duplex_link(a, c, 500e6, 10e-3).unwrap();
/// let net = b.build().unwrap();
/// assert_eq!(net.num_links(), 2);
/// ```
#[derive(Default, Debug)]
pub struct NetworkBuilder {
    positions: Vec<Point>,
    links: Vec<Link>,
    seen_pairs: HashSet<(u32, u32)>,
}

impl NetworkBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node at `position`; returns its dense id.
    ///
    /// # Panics
    /// Panics if the node count would exceed the `u32` id space; use
    /// [`try_add_node`](Self::try_add_node) where a typed error is
    /// preferable (generated large-tier topologies go through it).
    pub fn add_node(&mut self, position: Point) -> NodeId {
        self.try_add_node(position).expect("node index exceeds u32")
    }

    /// Fallible form of [`add_node`](Self::add_node): returns
    /// [`NetError::TooManyNodes`] instead of panicking when the dense id
    /// space would overflow. The builder is left unchanged on error.
    pub fn try_add_node(&mut self, position: Point) -> Result<NodeId, NetError> {
        let id = NodeId::try_new(self.positions.len())?;
        self.positions.push(position);
        Ok(id)
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// `true` if a directed link `src -> dst` has been added.
    pub fn has_link(&self, src: NodeId, dst: NodeId) -> bool {
        self.seen_pairs.contains(&(src.0, dst.0))
    }

    /// Add one *directed* link. Most callers want
    /// [`add_duplex_link`](Self::add_duplex_link) instead.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
        prop_delay: f64,
    ) -> Result<LinkId, NetError> {
        if src.index() >= self.positions.len() {
            return Err(NetError::UnknownNode(src));
        }
        if dst.index() >= self.positions.len() {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            return Err(NetError::SelfLoop(src));
        }
        if capacity <= 0.0 || !capacity.is_finite() {
            return Err(NetError::NonPositiveCapacity(capacity));
        }
        if !prop_delay.is_finite() || prop_delay < 0.0 {
            return Err(NetError::InvalidDelay(prop_delay));
        }
        // Mint the id before touching `seen_pairs` so an over-long link
        // list is a typed error with the builder left unchanged — and so
        // `assemble`'s u32 CSR offsets (cumulative counts bounded by the
        // link count) can never overflow silently.
        let id = LinkId::try_new(self.links.len())?;
        if !self.seen_pairs.insert((src.0, dst.0)) {
            return Err(NetError::DuplicateLink(src, dst));
        }
        self.links.push(Link {
            src,
            dst,
            capacity,
            prop_delay,
        });
        Ok(id)
    }

    /// Add a duplex (bidirectional) link: two directed links with identical
    /// capacity and propagation delay. Returns `(forward, backward)` ids.
    ///
    /// This is the normal physical-link constructor; [`Network::fail_duplex`]
    /// later fails both directions together, matching the paper's
    /// single-link-failure model.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        prop_delay: f64,
    ) -> Result<(LinkId, LinkId), NetError> {
        let fwd = self.add_link(a, b, capacity, prop_delay)?;
        let bwd = match self.add_link(b, a, capacity, prop_delay) {
            Ok(id) => id,
            Err(e) => {
                // Roll back the forward direction so the builder stays
                // consistent after a failed duplex insertion.
                self.links.pop();
                self.seen_pairs.remove(&(a.0, b.0));
                return Err(e);
            }
        };
        Ok((fwd, bwd))
    }

    /// Finalize into a [`Network`], requiring strong connectivity (the paper
    /// only ever evaluates connected networks; a disconnected input is a
    /// generator bug).
    pub fn build(self) -> Result<Network, NetError> {
        if self.positions.is_empty() {
            return Err(NetError::Empty);
        }
        let net = self.assemble();
        if !net.is_strongly_connected() {
            return Err(NetError::NotStronglyConnected);
        }
        Ok(net)
    }

    /// Finalize without the connectivity check. Needed by tests exercising
    /// partitioned inputs and by the bridge finder.
    pub fn build_unchecked(self) -> Network {
        self.assemble()
    }

    fn assemble(self) -> Network {
        let n = self.positions.len();
        // Flat CSR adjacency: count degrees, prefix-sum into offsets, then
        // scatter link ids in id order (which keeps each node's slice
        // ascending by link id, as the routing code relies on).
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for link in &self.links {
            out_offsets[link.src.index() + 1] += 1;
            in_offsets[link.dst.index() + 1] += 1;
        }
        for v in 0..n {
            out_offsets[v + 1] += out_offsets[v];
            in_offsets[v + 1] += in_offsets[v];
        }
        let mut links_csr_out = vec![LinkId::new(0); self.links.len()];
        let mut links_csr_in = vec![LinkId::new(0); self.links.len()];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for (i, link) in self.links.iter().enumerate() {
            let o = &mut out_cursor[link.src.index()];
            links_csr_out[*o as usize] = LinkId::new(i);
            *o += 1;
            let o = &mut in_cursor[link.dst.index()];
            links_csr_in[*o as usize] = LinkId::new(i);
            *o += 1;
        }
        // Pair up duplex directions: reverse[l] = id of dst->src, if present.
        let mut reverse = vec![None; self.links.len()];
        let mut by_pair = std::collections::HashMap::with_capacity(self.links.len());
        for (i, link) in self.links.iter().enumerate() {
            by_pair.insert((link.src.0, link.dst.0), LinkId::new(i));
        }
        for (i, link) in self.links.iter().enumerate() {
            reverse[i] = by_pair.get(&(link.dst.0, link.src.0)).copied();
        }
        Network {
            positions: self.positions,
            links: self.links,
            links_csr_out,
            out_offsets,
            links_csr_in,
            in_offsets,
            reverse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        assert_eq!(b.add_link(a, a, 1.0, 0.0), Err(NetError::SelfLoop(a)));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let ghost = NodeId::new(7);
        assert_eq!(
            b.add_link(a, ghost, 1.0, 0.0),
            Err(NetError::UnknownNode(ghost))
        );
    }

    #[test]
    fn rejects_duplicate_directed_link() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        b.add_link(a, c, 1.0, 0.0).unwrap();
        assert_eq!(
            b.add_link(a, c, 2.0, 0.0),
            Err(NetError::DuplicateLink(a, c))
        );
    }

    #[test]
    fn rejects_bad_capacity_and_delay() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        assert!(matches!(
            b.add_link(a, c, 0.0, 0.0),
            Err(NetError::NonPositiveCapacity(_))
        ));
        assert!(matches!(
            b.add_link(a, c, f64::NAN, 0.0),
            Err(NetError::NonPositiveCapacity(_))
        ));
        assert!(matches!(
            b.add_link(a, c, 1.0, -1.0),
            Err(NetError::InvalidDelay(_))
        ));
        assert!(matches!(
            b.add_link(a, c, 1.0, f64::INFINITY),
            Err(NetError::InvalidDelay(_))
        ));
    }

    #[test]
    fn duplex_rollback_on_partial_failure() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        // Pre-existing reverse direction makes the duplex insert fail...
        b.add_link(c, a, 1.0, 0.0).unwrap();
        assert!(b.add_duplex_link(a, c, 1.0, 0.0).is_err());
        // ...and the forward direction must have been rolled back.
        assert!(!b.has_link(a, c));
        assert_eq!(b.num_links(), 1);
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(NetworkBuilder::new().build().unwrap_err(), NetError::Empty);
    }

    #[test]
    fn build_rejects_disconnected() {
        let mut b = NetworkBuilder::new();
        let _ = b.add_node(Point::ORIGIN);
        let _ = b.add_node(Point::ORIGIN);
        assert_eq!(b.build().unwrap_err(), NetError::NotStronglyConnected);
    }

    #[test]
    fn build_accepts_connected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        b.add_duplex_link(a, c, 1.0, 0.0).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn try_add_node_mints_dense_ids() {
        let mut b = NetworkBuilder::new();
        assert_eq!(b.try_add_node(Point::ORIGIN).unwrap().index(), 0);
        assert_eq!(b.try_add_node(Point::ORIGIN).unwrap().index(), 1);
        assert_eq!(b.num_nodes(), 2);
        // The u32::MAX-adjacent boundary itself is pinned without any
        // allocation (indices are the mock) in
        // `ids::tests::try_new_is_exact_at_the_u32_boundary`; the builder
        // reaches it through the same `try_new` calls.
    }

    #[test]
    fn failed_add_link_leaves_builder_unchanged() {
        // The id-capacity check runs before `seen_pairs` is touched, so
        // every error path leaves the builder consistent.
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        assert!(b.add_link(a, c, -1.0, 0.0).is_err());
        assert!(!b.has_link(a, c));
        assert_eq!(b.num_links(), 0);
        b.add_link(a, c, 1.0, 0.0).unwrap();
        assert!(b.add_link(a, c, 1.0, 0.0).is_err());
        assert_eq!(b.num_links(), 1);
    }

    #[test]
    fn simplex_links_have_no_reverse() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        let l = b.add_link(a, c, 1.0, 0.0).unwrap();
        let net = b.build_unchecked();
        assert_eq!(net.reverse_link(l), None);
    }
}
