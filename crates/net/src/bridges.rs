//! Cut-pair (bridge) detection.
//!
//! The paper optimizes against "all single link failures" (§III). A failure
//! that physically *partitions* the network admits no routing remedy: every
//! weight setting fails identically, so such links carry no optimization
//! signal and are excluded from the failure set. On the well-connected
//! topologies the paper evaluates (mean degree ≥ 4) cut pairs are rare or
//! absent, but generators can produce them at low degree, so enumeration
//! must be robust to them.

use crate::connectivity::is_strongly_connected;
use crate::graph::Network;
use crate::ids::LinkId;

/// Duplex links (by representative id, see
/// [`Network::duplex_representatives`]) whose failure — both directions —
/// leaves the network strongly connected. This is the paper's single-link
/// failure enumeration set.
///
/// Complexity O(|E| · (|V| + |E|)): one two-sweep connectivity check per
/// physical link. At the paper's scales (≤ 100 nodes, ≤ 500 links) this is
/// microseconds and is computed once per topology.
pub fn survivable_duplex_failures(net: &Network) -> Vec<LinkId> {
    net.duplex_representatives()
        .into_iter()
        .filter(|&l| {
            let m = net.fail_duplex(l);
            is_strongly_connected(net, &m)
        })
        .collect()
}

/// Duplex links whose failure partitions the network (the complement of
/// [`survivable_duplex_failures`] within the representative set).
pub fn cut_pairs(net: &Network) -> Vec<LinkId> {
    net.duplex_representatives()
        .into_iter()
        .filter(|&l| {
            let m = net.fail_duplex(l);
            !is_strongly_connected(net, &m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::geometry::Point;

    /// Two triangles joined by a single duplex bridge:
    /// (0,1,2) -- bridge(2,3) -- (3,4,5)
    fn barbell() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(Point::ORIGIN)).collect();
        for &(x, y) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_duplex_link(n[x], n[y], 1e9, 1e-3).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn barbell_has_exactly_one_cut_pair() {
        let net = barbell();
        let cuts = cut_pairs(&net);
        assert_eq!(cuts.len(), 1);
        let l = cuts[0];
        let link = net.link(l);
        let (a, b) = (link.src.index(), link.dst.index());
        assert_eq!((a.min(b), a.max(b)), (2, 3));
    }

    #[test]
    fn survivable_plus_cuts_covers_all_physical_links() {
        let net = barbell();
        let total = net.duplex_representatives().len();
        assert_eq!(
            survivable_duplex_failures(&net).len() + cut_pairs(&net).len(),
            total
        );
        assert_eq!(total, 7);
    }

    #[test]
    fn ring_has_no_cut_pairs() {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(Point::ORIGIN)).collect();
        for i in 0..5 {
            b.add_duplex_link(n[i], n[(i + 1) % 5], 1e9, 1e-3).unwrap();
        }
        let net = b.build().unwrap();
        assert!(cut_pairs(&net).is_empty());
        assert_eq!(survivable_duplex_failures(&net).len(), 5);
    }

    #[test]
    fn tree_is_all_cut_pairs() {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(Point::ORIGIN)).collect();
        b.add_duplex_link(n[0], n[1], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[0], n[2], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[2], n[3], 1e9, 1e-3).unwrap();
        let net = b.build().unwrap();
        assert_eq!(cut_pairs(&net).len(), 3);
        assert!(survivable_duplex_failures(&net).is_empty());
    }
}
