//! Compact link-failure masks.
//!
//! Failure scenarios (the inner loop of the paper's Phase 2: `Kfail` is a
//! sum over *all single link failures*, Eq. (4)) are expressed as a bitset
//! of links that are **down**. Masking is O(1) per link test, and building a
//! mask never copies the graph.

/// Bitset over the directed links of a network; a set bit means the link is
/// *down* (failed).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinkMask {
    words: Vec<u64>,
    num_links: usize,
}

impl LinkMask {
    /// All links up.
    pub fn all_up(num_links: usize) -> Self {
        LinkMask {
            words: vec![0u64; num_links.div_ceil(64)],
            num_links,
        }
    }

    /// Number of links this mask covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_links
    }

    /// `true` if the mask covers zero links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_links == 0
    }

    /// Mark link `index` as down.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn fail(&mut self, index: usize) {
        assert!(index < self.num_links, "link index out of range");
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Bring every link back up without reallocating — the workspace-based
    /// evaluation engine reuses one mask buffer across scenarios.
    #[inline]
    pub fn reset_all_up(&mut self) {
        self.words.fill(0);
    }

    /// Mark link `index` as up again.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn restore(&mut self, index: usize) {
        assert!(index < self.num_links, "link index out of range");
        self.words[index / 64] &= !(1u64 << (index % 64));
    }

    /// `true` if link `index` is down.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn is_down(&self, index: usize) -> bool {
        debug_assert!(index < self.num_links, "link index out of range");
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// `true` if link `index` is up.
    #[inline]
    pub fn is_up(&self, index: usize) -> bool {
        !self.is_down(index)
    }

    /// Number of links currently down.
    pub fn num_down(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no link is down.
    pub fn all_links_up(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over the indices of down links, ascending.
    pub fn down_links(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_up() {
        let m = LinkMask::all_up(130);
        assert_eq!(m.len(), 130);
        assert!(m.all_links_up());
        assert_eq!(m.num_down(), 0);
        assert!((0..130).all(|i| m.is_up(i)));
    }

    #[test]
    fn fail_and_restore_round_trip() {
        let mut m = LinkMask::all_up(100);
        m.fail(0);
        m.fail(63);
        m.fail(64);
        m.fail(99);
        assert_eq!(m.num_down(), 4);
        assert!(m.is_down(63) && m.is_down(64));
        assert_eq!(m.down_links().collect::<Vec<_>>(), vec![0, 63, 64, 99]);
        m.restore(63);
        assert!(m.is_up(63));
        assert_eq!(m.num_down(), 3);
    }

    #[test]
    fn reset_all_up_clears_everything() {
        let mut m = LinkMask::all_up(70);
        m.fail(1);
        m.fail(69);
        m.reset_all_up();
        assert!(m.all_links_up());
        assert_eq!(m.len(), 70);
    }

    #[test]
    fn fail_is_idempotent() {
        let mut m = LinkMask::all_up(10);
        m.fail(3);
        m.fail(3);
        assert_eq!(m.num_down(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fail_out_of_range_panics() {
        LinkMask::all_up(5).fail(5);
    }

    #[test]
    fn empty_mask() {
        let m = LinkMask::all_up(0);
        assert!(m.is_empty());
        assert!(m.all_links_up());
        assert_eq!(m.down_links().count(), 0);
    }
}
