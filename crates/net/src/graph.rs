//! The immutable network graph.

use crate::connectivity;
use crate::geometry::Point;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::mask::LinkMask;

/// An immutable directed network `G = (V, E)` with per-link capacity and
/// propagation delay (paper §III).
///
/// Constructed through [`crate::NetworkBuilder`]; once built, the topology
/// never changes. Failures are expressed externally via [`LinkMask`] so that
/// a single `Network` is shared (read-only) by every candidate weight
/// setting and failure scenario evaluated during optimization — including
/// across threads.
#[derive(Clone, Debug)]
pub struct Network {
    pub(crate) positions: Vec<Point>,
    pub(crate) links: Vec<Link>,
    /// Flat CSR adjacency: outgoing link ids of node `v` (sorted by link
    /// id) live at `links_csr_out[out_offsets[v] .. out_offsets[v + 1]]`.
    /// One contiguous allocation keeps the per-destination SPF sweeps
    /// cache-friendly — the hot loops walk these slices millions of times
    /// per optimization run.
    pub(crate) links_csr_out: Vec<LinkId>,
    pub(crate) out_offsets: Vec<u32>,
    /// Flat CSR adjacency for incoming link ids, same layout.
    pub(crate) links_csr_in: Vec<LinkId>,
    pub(crate) in_offsets: Vec<u32>,
    /// For link `l`, the opposite direction of the same duplex link, if any.
    pub(crate) reverse: Vec<Option<LinkId>>,
}

impl Network {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of *directed* links `|E|`.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::new)
    }

    /// Iterator over all link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.num_links()).map(LinkId::new)
    }

    /// Link record for `l`.
    ///
    /// # Panics
    /// Panics if `l` is out of range.
    #[inline]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// Position of node `v` in the plane.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn position(&self, v: NodeId) -> Point {
        self.positions[v.index()]
    }

    /// Outgoing links of `v`, ascending by link id (a CSR slice).
    #[inline]
    pub fn out_links(&self, v: NodeId) -> &[LinkId] {
        let i = v.index();
        &self.links_csr_out[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// Incoming links of `v`, ascending by link id (a CSR slice).
    #[inline]
    pub fn in_links(&self, v: NodeId) -> &[LinkId] {
        let i = v.index();
        &self.links_csr_in[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// The opposite direction of duplex link `l`, if the builder registered
    /// one (see [`crate::NetworkBuilder::add_duplex_link`]).
    #[inline]
    pub fn reverse_link(&self, l: LinkId) -> Option<LinkId> {
        self.reverse[l.index()]
    }

    /// Out-degree of `v` (directed).
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// Mean node degree counting each duplex link once — the "average node
    /// degree" the paper quotes for its synthesized topologies (§V-C varies
    /// it from 4 to 8). For a fully duplex network this equals
    /// `|E| / |V|` since each duplex pair contributes two directed links.
    pub fn mean_duplex_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.num_links() as f64 / self.num_nodes() as f64
    }

    /// A fresh all-up failure mask sized for this network.
    pub fn fresh_mask(&self) -> LinkMask {
        LinkMask::all_up(self.num_links())
    }

    /// Mask with the single duplex link through `l` failed: `l` itself plus
    /// its reverse direction if one exists. This is the paper's "single link
    /// failure" — a physical failure takes out both directions.
    pub fn fail_duplex(&self, l: LinkId) -> LinkMask {
        let mut m = self.fresh_mask();
        m.fail(l.index());
        if let Some(r) = self.reverse_link(l) {
            m.fail(r.index());
        }
        m
    }

    /// Mask with node `v` failed: all links incident to `v` (either
    /// direction) are down. Used by the paper's §V-F node-failure study.
    pub fn fail_node(&self, v: NodeId) -> LinkMask {
        let mut m = self.fresh_mask();
        for &l in self.out_links(v) {
            m.fail(l.index());
        }
        for &l in self.in_links(v) {
            m.fail(l.index());
        }
        m
    }

    /// `true` if every node can reach every other node over up links.
    pub fn is_strongly_connected(&self) -> bool {
        connectivity::is_strongly_connected(self, &self.fresh_mask())
    }

    /// Deduplicated list of duplex pairs: one representative `LinkId` per
    /// physical link (the direction with the smaller id), plus unpaired
    /// simplex links. Failure enumeration iterates over this, not over all
    /// directed links, so each physical failure is counted once.
    pub fn duplex_representatives(&self) -> Vec<LinkId> {
        let mut reps = Vec::with_capacity(self.num_links() / 2 + 1);
        for l in self.links() {
            match self.reverse_link(l) {
                Some(r) if r < l => {} // counted at the smaller id
                _ => reps.push(l),
            }
        }
        reps
    }

    /// Total propagation delay of the *minimum-propagation-delay* path
    /// between the farthest-apart node pair (the network diameter in delay
    /// terms). Used by topology generators to scale link delays against the
    /// SLA bound θ. Returns `None` when the network is not connected.
    pub fn delay_diameter(&self) -> Option<f64> {
        let n = self.num_nodes();
        let mut worst: f64 = 0.0;
        for s in self.nodes() {
            let d = connectivity::min_prop_delay_from(self, s, &self.fresh_mask());
            #[allow(clippy::needless_range_loop)] // t is a node id, not just an index
            for t in 0..n {
                if t == s.index() {
                    continue;
                }
                let dt = d[t];
                if dt.is_infinite() {
                    return None;
                }
                worst = worst.max(dt);
            }
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    /// Triangle with duplex links; every prop delay 1 ms, capacity 1 Gb/s.
    fn triangle() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(Point::ORIGIN)).collect();
        b.add_duplex_link(n[0], n[1], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[1], n[2], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[2], n[0], 1e9, 1e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn triangle_counts() {
        let net = triangle();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_links(), 6);
        assert_eq!(net.mean_duplex_degree(), 2.0);
        for v in net.nodes() {
            assert_eq!(net.out_degree(v), 2);
            assert_eq!(net.in_links(v).len(), 2);
        }
    }

    #[test]
    fn reverse_pairing_is_mutual() {
        let net = triangle();
        for l in net.links() {
            let r = net.reverse_link(l).expect("all links duplex");
            assert_eq!(net.reverse_link(r), Some(l));
            assert!(net.link(l).is_reverse_of(net.link(r)));
        }
    }

    #[test]
    fn duplex_representatives_count_physical_links() {
        let net = triangle();
        let reps = net.duplex_representatives();
        assert_eq!(reps.len(), 3);
        // Each representative is the smaller id of its pair.
        for l in reps {
            assert!(net.reverse_link(l).unwrap() > l);
        }
    }

    #[test]
    fn fail_duplex_downs_both_directions() {
        let net = triangle();
        let l = LinkId::new(0);
        let m = net.fail_duplex(l);
        assert_eq!(m.num_down(), 2);
        assert!(m.is_down(l.index()));
        assert!(m.is_down(net.reverse_link(l).unwrap().index()));
    }

    #[test]
    fn fail_node_downs_all_incident() {
        let net = triangle();
        let m = net.fail_node(NodeId::new(0));
        assert_eq!(m.num_down(), 4); // 2 out + 2 in
    }

    #[test]
    fn triangle_is_strongly_connected() {
        assert!(triangle().is_strongly_connected());
    }

    #[test]
    fn delay_diameter_of_triangle() {
        // Longest shortest-delay path = one hop of 1 ms (fully meshed).
        let d = triangle().delay_diameter().unwrap();
        assert!((d - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn delay_diameter_of_path_graph() {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(Point::ORIGIN)).collect();
        for w in n.windows(2) {
            b.add_duplex_link(w[0], w[1], 1e9, 2e-3).unwrap();
        }
        let net = b.build().unwrap();
        let d = net.delay_diameter().unwrap();
        assert!((d - 6e-3).abs() < 1e-12); // 3 hops * 2 ms
    }

    #[test]
    fn disconnected_network_has_no_diameter() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        let d = b.add_node(Point::ORIGIN);
        b.add_duplex_link(a, c, 1e9, 1e-3).unwrap();
        let _ = d;
        let net = b.build_unchecked();
        assert_eq!(net.delay_diameter(), None);
        assert!(!net.is_strongly_connected());
    }
}
