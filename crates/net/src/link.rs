//! Directed link records.

use crate::ids::NodeId;

/// One *directed* link of the network.
///
/// Corresponds to a link `l ∈ E` in the paper's model (§III): it has a
/// capacity `C_l` (bits/s) and a propagation delay `p_l` (seconds). The IGP
/// weights `W_l^D` / `W_l^T` are *not* stored here — weight settings are the
/// optimization variable and live in `dtr-routing::WeightSetting`, so that a
/// single immutable [`crate::Network`] can be shared by thousands of
/// candidate weight settings during the search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Tail node (traffic enters the link here).
    pub src: NodeId,
    /// Head node (traffic exits the link here).
    pub dst: NodeId,
    /// Capacity `C_l` in bits per second. Strictly positive.
    pub capacity: f64,
    /// Propagation delay `p_l` in seconds. Non-negative.
    pub prop_delay: f64,
}

impl Link {
    /// `true` if this link and `other` are the two directions of one duplex
    /// (physical) link.
    #[inline]
    pub fn is_reverse_of(&self, other: &Link) -> bool {
        self.src == other.dst && self.dst == other.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn link(src: usize, dst: usize) -> Link {
        Link {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            capacity: 1.0,
            prop_delay: 0.0,
        }
    }

    #[test]
    fn reverse_detection() {
        assert!(link(0, 1).is_reverse_of(&link(1, 0)));
        assert!(!link(0, 1).is_reverse_of(&link(0, 1)));
        assert!(!link(0, 1).is_reverse_of(&link(1, 2)));
    }
}
