//! Graphviz DOT export, for debugging topologies and documenting
//! experiments. Duplex pairs are rendered as one undirected edge.

use std::fmt::Write as _;

use crate::graph::Network;
use crate::mask::LinkMask;

/// Render the network as a Graphviz `graph` (duplex links collapsed to one
/// edge). Failed links (per `mask`) are drawn dashed red. Edge labels show
/// `capacity (Mb/s) / prop delay (ms)`.
pub fn to_dot(net: &Network, mask: &LinkMask) -> String {
    let mut s = String::new();
    s.push_str("graph network {\n");
    s.push_str("  layout=neato;\n  node [shape=circle, fontsize=10];\n");
    for v in net.nodes() {
        let p = net.position(v);
        // Scale unit-square coordinates up so neato doesn't collapse nodes.
        let _ = writeln!(s, "  {} [pos=\"{:.3},{:.3}!\"];", v, p.x * 10.0, p.y * 10.0);
    }
    for l in net.duplex_representatives() {
        let link = net.link(l);
        let down = mask.is_down(l.index());
        let style = if down {
            ", style=dashed, color=red"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  {} -- {} [label=\"{:.0}/{:.1}\"{}];",
            link.src,
            link.dst,
            link.capacity / 1e6,
            link.prop_delay * 1e3,
            style
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::geometry::Point;
    use crate::ids::LinkId;

    fn two_nodes() -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 1.0));
        b.add_duplex_link(a, c, 500e6, 5e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edge() {
        let net = two_nodes();
        let dot = to_dot(&net, &net.fresh_mask());
        assert!(dot.starts_with("graph network {"));
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("500/5.0"));
        assert!(!dot.contains("dashed"));
    }

    #[test]
    fn failed_links_are_dashed() {
        let net = two_nodes();
        let m = net.fail_duplex(LinkId::new(0));
        let dot = to_dot(&net, &m);
        assert!(dot.contains("dashed"));
    }
}
