//! Reachability and strong-connectivity queries under a failure mask.
//!
//! These are the primitives behind failure enumeration: a candidate failure
//! scenario is only evaluated if the surviving network is still strongly
//! connected (otherwise no weight setting can route around it and the
//! scenario says nothing about routing quality — see `bridges`).

use crate::graph::Network;
use crate::ids::NodeId;
use crate::mask::LinkMask;

/// Nodes reachable from `start` following *up* out-links, as a boolean
/// vector indexed by node.
pub fn reachable_from(net: &Network, start: NodeId, mask: &LinkMask) -> Vec<bool> {
    let mut seen = vec![false; net.num_nodes()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        for &l in net.out_links(v) {
            if mask.is_down(l.index()) {
                continue;
            }
            let w = net.link(l).dst;
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// Nodes that can reach `target` following *up* in-links backwards.
pub fn reaches_to(net: &Network, target: NodeId, mask: &LinkMask) -> Vec<bool> {
    let mut seen = vec![false; net.num_nodes()];
    let mut stack = vec![target];
    seen[target.index()] = true;
    while let Some(v) = stack.pop() {
        for &l in net.in_links(v) {
            if mask.is_down(l.index()) {
                continue;
            }
            let w = net.link(l).src;
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// `true` if every node can reach every other node over up links.
///
/// Uses the standard two-sweep check: strong connectivity holds iff some
/// node reaches all nodes *and* is reached by all nodes.
pub fn is_strongly_connected(net: &Network, mask: &LinkMask) -> bool {
    let n = net.num_nodes();
    if n == 0 {
        return false;
    }
    if n == 1 {
        return true;
    }
    let s = NodeId::new(0);
    reachable_from(net, s, mask).iter().all(|&b| b) && reaches_to(net, s, mask).iter().all(|&b| b)
}

/// `true` if, with `mask` applied, every *surviving* node can still reach
/// every other surviving node. `dead` marks nodes considered removed (used
/// for node-failure scenarios, where the failed node itself is exempt).
pub fn is_strongly_connected_excluding(net: &Network, mask: &LinkMask, dead: &[bool]) -> bool {
    let n = net.num_nodes();
    debug_assert_eq!(dead.len(), n);
    let Some(start) = (0..n).find(|&v| !dead[v]) else {
        return false; // no surviving nodes
    };
    let s = NodeId::new(start);
    let fwd = reachable_from(net, s, mask);
    let bwd = reaches_to(net, s, mask);
    (0..n).all(|v| dead[v] || (fwd[v] && bwd[v]))
}

/// Single-source minimum *propagation delay* distances over up links
/// (Dijkstra with `p_l` as the metric). `f64::INFINITY` marks unreachable
/// nodes. This is a metric query on the physical topology, independent of
/// any IGP weight setting; the weighted SPF used for routing lives in
/// `dtr-routing`.
pub fn min_prop_delay_from(net: &Network, start: NodeId, mask: &LinkMask) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // f64 keys wrapped as ordered bits; delays are finite and non-negative
    // by Network construction, so total order via to_bits is safe.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Key(u64);
    fn key(d: f64) -> Key {
        Key(d.to_bits())
    }

    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[start.index()] = 0.0;
    heap.push(Reverse((key(0.0), start.index())));
    while let Some(Reverse((Key(db), v))) = heap.pop() {
        let d = f64::from_bits(db);
        if d > dist[v] {
            continue;
        }
        for &l in net.out_links(NodeId::new(v)) {
            if mask.is_down(l.index()) {
                continue;
            }
            let link = net.link(l);
            let nd = d + link.prop_delay;
            let w = link.dst.index();
            if nd < dist[w] {
                dist[w] = nd;
                heap.push(Reverse((key(nd), w)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::geometry::Point;
    use crate::ids::LinkId;

    /// 0 <-> 1 <-> 2 path graph (duplex), 1 ms per hop.
    fn path3() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node(Point::ORIGIN)).collect();
        b.add_duplex_link(n[0], n[1], 1e9, 1e-3).unwrap();
        b.add_duplex_link(n[1], n[2], 1e9, 1e-3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reachable_on_path() {
        let net = path3();
        let r = reachable_from(&net, NodeId::new(0), &net.fresh_mask());
        assert!(r.iter().all(|&b| b));
    }

    #[test]
    fn masking_cuts_reachability() {
        let net = path3();
        // Fail the duplex link between 1 and 2.
        let l12 = net
            .links()
            .find(|&l| net.link(l).src == NodeId::new(1) && net.link(l).dst == NodeId::new(2))
            .unwrap();
        let m = net.fail_duplex(l12);
        let r = reachable_from(&net, NodeId::new(0), &m);
        assert_eq!(r, vec![true, true, false]);
        assert!(!is_strongly_connected(&net, &m));
    }

    #[test]
    fn one_way_graph_is_not_strongly_connected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::ORIGIN);
        let c = b.add_node(Point::ORIGIN);
        b.add_link(a, c, 1.0, 0.0).unwrap();
        let net = b.build_unchecked();
        assert!(!is_strongly_connected(&net, &net.fresh_mask()));
        assert!(reachable_from(&net, a, &net.fresh_mask())[c.index()]);
        assert!(!reaches_to(&net, a, &net.fresh_mask())[c.index()]);
    }

    #[test]
    fn single_node_is_strongly_connected() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::ORIGIN);
        let net = b.build_unchecked();
        assert!(is_strongly_connected(&net, &net.fresh_mask()));
    }

    #[test]
    fn excluding_dead_node_keeps_rest_connected() {
        let net = path3();
        // Node 2 dies: nodes 0 and 1 remain mutually reachable.
        let m = net.fail_node(NodeId::new(2));
        let mut dead = vec![false; 3];
        dead[2] = true;
        assert!(is_strongly_connected_excluding(&net, &m, &dead));
        // But killing the middle node partitions the survivors.
        let m = net.fail_node(NodeId::new(1));
        let mut dead = vec![false; 3];
        dead[1] = true;
        assert!(!is_strongly_connected_excluding(&net, &m, &dead));
    }

    #[test]
    fn min_prop_delay_matches_hops() {
        let net = path3();
        let d = min_prop_delay_from(&net, NodeId::new(0), &net.fresh_mask());
        assert!((d[0] - 0.0).abs() < 1e-15);
        assert!((d[1] - 1e-3).abs() < 1e-15);
        assert!((d[2] - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn min_prop_delay_respects_mask() {
        let net = path3();
        let m = net.fail_duplex(LinkId::new(0));
        let d = min_prop_delay_from(&net, NodeId::new(0), &m);
        assert!(d[1].is_infinite());
        assert!(d[2].is_infinite());
    }
}
