//! The network-cost evaluator: the full §III pipeline.
//!
//! One [`Evaluator::evaluate`] call performs, for a given weight setting
//! and failure scenario:
//!
//! 1. apply the failure mask (and, for node failures, traffic removal);
//! 2. route both classes independently on their weighted topologies
//!    (ECMP, destination-based);
//! 3. sum per-class loads into total loads `x_l` (shared FIFO queue);
//! 4. compute per-link delays `D_l` (Eq. 1) from total loads;
//! 5. fold per-pair end-to-end delays `ξ(s,t)` over the delay-class DAGs
//!    (distance fields are reused from step 2 — no second SPF);
//! 6. score `Λ` (Eq. 2) and `Φ` (Fortz–Thorup) into the lexicographic
//!    global cost `K`.
//!
//! This function is *the* hot path of the whole system: the local search
//! calls it once per weight perturbation (Phase 1) and once per critical
//! link per perturbation (Phase 2).

use dtr_net::Network;
use dtr_routing::{delay, route_class, Class, ClassRouting, Scenario, WeightSetting, UNREACHABLE};
use dtr_traffic::ClassMatrices;

use crate::congestion;
use crate::delay_model;
use crate::lexico::LexCost;
use crate::params::{CostParams, DelayAggregation};
use crate::sla::{self, SlaSummary};

/// Everything one evaluation produces. The scalar cost drives the search;
/// the vectors feed the experiment reports (per-failure-link series, link
/// utilization plots, delay distributions).
#[derive(Clone, Debug)]
pub struct CostBreakdown {
    /// The lexicographic global cost `K = ⟨Λ, Φ⟩`.
    pub cost: LexCost,
    /// SLA accounting for the delay class (violation count = the paper's β).
    pub sla: SlaSummary,
    /// Total load `x_l` per directed link (bits/s).
    pub total_loads: Vec<f64>,
    /// Delay-class load per directed link.
    pub delay_loads: Vec<f64>,
    /// Throughput-class load per directed link.
    pub throughput_loads: Vec<f64>,
    /// Per-link delay `D_l` (seconds) under the total loads.
    pub link_delays: Vec<f64>,
    /// `(s, t, ξ)` for every delay-class SD pair with positive demand.
    pub pair_delays: Vec<(usize, usize, f64)>,
    /// Demand (bits/s, both classes) unroutable under the scenario.
    pub dropped: f64,
    /// The scenario evaluated.
    pub scenario: Scenario,
}

impl CostBreakdown {
    /// Per-link utilization `x_l / C_l`.
    pub fn utilizations(&self, net: &Network) -> Vec<f64> {
        self.total_loads
            .iter()
            .zip(net.links())
            .map(|(&x, l)| x / net.link(l).capacity)
            .collect()
    }

    /// Largest link utilization.
    pub fn max_utilization(&self, net: &Network) -> f64 {
        self.utilizations(net).into_iter().fold(0.0, f64::max)
    }

    /// Mean link utilization (over all links, loaded or not) — the paper's
    /// "average link utilization".
    pub fn mean_utilization(&self, net: &Network) -> f64 {
        let u = self.utilizations(net);
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }
}

/// Reusable evaluation context: network + base traffic + cost parameters.
/// Cheap to construct; capacities and propagation delays are cached as
/// flat vectors for the hot loop, and a pool of
/// [`EvalWorkspace`](crate::EvalWorkspace)s (one per thread in practice)
/// backs the allocation-free incremental engine in [`crate::engine`].
pub struct Evaluator<'a> {
    pub(crate) net: &'a Network,
    pub(crate) traffic: &'a ClassMatrices,
    pub(crate) params: CostParams,
    pub(crate) capacities: Vec<f64>,
    pub(crate) prop_delays: Vec<f64>,
    /// Per-class demand destinations (nodes that sink positive demand),
    /// ascending — `[delay, throughput]`, indexed like [`Class::ALL`].
    pub(crate) demand_dests: [Vec<u32>; 2],
    pub(crate) pool: crate::engine::WorkspacePool,
    /// Unique identity gating workspace-baseline reuse (see
    /// `EvalWorkspace::owner`).
    pub(crate) engine_id: u64,
    /// Seed `route_destination_repair` from the workspace baseline on
    /// the plain `cost_with` path (default). Off = from-scratch Dijkstra
    /// per mask-affected destination; results are bit-identical either
    /// way (see [`Self::set_plain_repair`]), so this exists only for
    /// A/B benchmarking.
    pub(crate) plain_repair: bool,
}

fn demand_dests(tm: &dtr_traffic::TrafficMatrix) -> Vec<u32> {
    let n = tm.num_nodes();
    (0..n as u32)
        .filter(|&t| (0..n).any(|s| s != t as usize && tm.demand(s, t as usize) > 0.0))
        .collect()
}

impl<'a> Evaluator<'a> {
    /// Build an evaluator. Panics if the traffic matrices and network
    /// disagree on node count or the parameters are invalid.
    pub fn new(net: &'a Network, traffic: &'a ClassMatrices, params: CostParams) -> Self {
        params.validate();
        assert_eq!(
            traffic.num_nodes(),
            net.num_nodes(),
            "traffic matrices must match the network size"
        );
        let capacities = net.links().map(|l| net.link(l).capacity).collect();
        let prop_delays = net.links().map(|l| net.link(l).prop_delay).collect();
        Evaluator {
            net,
            traffic,
            params,
            capacities,
            prop_delays,
            demand_dests: [
                demand_dests(&traffic.delay),
                demand_dests(&traffic.throughput),
            ],
            pool: crate::engine::WorkspacePool::default(),
            engine_id: crate::engine::next_engine_id(),
            plain_repair: true,
        }
    }

    /// Toggle baseline-seeded repair on the plain `cost_with` path.
    /// Repair is bit-equal to a from-scratch route (integer distances;
    /// pinned by `tests/spf_incremental.rs`), so this changes timing
    /// only — it exists for the repair-ablation bench legs.
    pub fn set_plain_repair(&mut self, on: bool) {
        self.plain_repair = on;
    }

    pub fn net(&self) -> &Network {
        self.net
    }

    pub fn traffic(&self) -> &ClassMatrices {
        self.traffic
    }

    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Full evaluation of one (weight setting, scenario) pair.
    pub fn evaluate(&self, w: &WeightSetting, scenario: Scenario) -> CostBreakdown {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        let mask = scenario.mask(self.net);
        let offered = scenario.offered_traffic(self.traffic);

        let rd = route_class(self.net, w.weights(Class::Delay), &offered.delay, &mask);
        let rt = route_class(
            self.net,
            w.weights(Class::Throughput),
            &offered.throughput,
            &mask,
        );
        let total_loads = dtr_routing::router::total_loads(&rd, &rt);
        let link_delays = delay_model::link_delays(
            &total_loads,
            &self.capacities,
            &self.prop_delays,
            &self.params,
        );

        let pair_delays = self.delay_pair_delays(w, &mask, &rd, &offered, &link_delays);
        let sla = sla::summarize(&pair_delays, &self.params);
        let phi = congestion::phi(&total_loads, &rt.loads, &self.capacities);
        let dropped = rd.dropped + rt.dropped;

        CostBreakdown {
            cost: LexCost::new(sla.lambda, phi),
            sla,
            total_loads,
            delay_loads: rd.loads,
            throughput_loads: rt.loads,
            link_delays,
            pair_delays,
            dropped,
            scenario,
        }
    }

    /// Scalar-cost shortcut: bit-for-bit the cost of
    /// [`evaluate`](Self::evaluate), but computed through the pooled
    /// incremental engine (see [`crate::engine`]) — no per-evaluation
    /// allocation, cached no-failure baseline, per-destination
    /// recomputation only where a failure or weight move can matter.
    pub fn cost(&self, w: &WeightSetting, scenario: Scenario) -> LexCost {
        let mut ws = self.acquire_workspace();
        let c = self.cost_with(&mut ws, w, scenario);
        self.release_workspace(ws);
        c
    }

    /// Per SD pair "max utilization on its path": bottleneck total-load
    /// utilization over the delay-class routing, averaged over all pairs —
    /// the paper's *average max utilization* (Table V).
    pub fn mean_bottleneck_utilization(&self, w: &WeightSetting, scenario: Scenario) -> f64 {
        let mask = scenario.mask(self.net);
        let offered = scenario.offered_traffic(self.traffic);
        let rd = route_class(self.net, w.weights(Class::Delay), &offered.delay, &mask);
        let rt = route_class(
            self.net,
            w.weights(Class::Throughput),
            &offered.throughput,
            &mask,
        );
        let total = dtr_routing::router::total_loads(&rd, &rt);
        let util: Vec<f64> = total
            .iter()
            .zip(&self.capacities)
            .map(|(&x, &c)| x / c)
            .collect();

        let n = self.net.num_nodes();
        let weights = w.weights(Class::Delay);
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for t in 0..n {
            let Some(dist) = rd.dist_to(t) else { continue };
            let worst = delay::bottleneck_to(self.net, dist, weights, &mask, &util);
            for s in 0..n {
                if s != t && offered.delay.demand(s, t) > 0.0 && dist[s] != UNREACHABLE {
                    sum += worst[s];
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            sum / pairs as f64
        }
    }

    fn delay_pair_delays(
        &self,
        w: &WeightSetting,
        mask: &dtr_net::LinkMask,
        rd: &ClassRouting,
        offered: &ClassMatrices,
        link_delays: &[f64],
    ) -> Vec<(usize, usize, f64)> {
        let weights = w.weights(Class::Delay);
        let take_max = matches!(self.params.aggregation, DelayAggregation::Max);
        let mut out = Vec::new();
        let mut order = Vec::new();
        let mut node_delay = Vec::new();
        delay::routing_pair_delays_into(
            self.net,
            rd,
            weights,
            mask,
            link_delays,
            take_max,
            &offered.delay,
            None, // `offered` already has the dead node's traffic removed
            &mut order,
            &mut node_delay,
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_net::{LinkId, NetworkBuilder, Point};

    /// Two-path network: 0 -> 3 via short path (0-3 direct, 10 ms) or via
    /// relay 0-1-3 (3 ms + 3 ms). Capacities 100 bits/s for easy math.
    fn net() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(Point::ORIGIN)).collect();
        b.add_duplex_link(n[0], n[1], 100.0, 3e-3).unwrap();
        b.add_duplex_link(n[1], n[3], 100.0, 3e-3).unwrap();
        b.add_duplex_link(n[0], n[2], 100.0, 20e-3).unwrap();
        b.add_duplex_link(n[2], n[3], 100.0, 20e-3).unwrap();
        b.add_duplex_link(n[0], n[3], 100.0, 10e-3).unwrap();
        b.build().unwrap()
    }

    fn traffic() -> ClassMatrices {
        let mut tm = ClassMatrices::zeros(4);
        tm.delay.set(0, 3, 10.0);
        tm.throughput.set(0, 3, 20.0);
        tm
    }

    fn link_between(net: &Network, s: usize, t: usize) -> LinkId {
        net.links()
            .find(|&l| net.link(l).src.index() == s && net.link(l).dst.index() == t)
            .unwrap()
    }

    #[test]
    fn normal_evaluation_routes_and_scores() {
        let net = net();
        let tm = traffic();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let b = ev.evaluate(&w, Scenario::Normal);
        // Unit weights: both classes ride the direct 0->3 link.
        let direct = link_between(&net, 0, 3);
        assert_eq!(b.total_loads[direct.index()], 30.0);
        assert_eq!(b.delay_loads[direct.index()], 10.0);
        assert_eq!(b.throughput_loads[direct.index()], 20.0);
        // 10 ms < θ=25 ms: no SLA violation, Λ = 0.
        assert_eq!(b.sla.violations, 0);
        assert_eq!(b.cost.lambda, 0.0);
        // Φ > 0 (direct link carries throughput traffic at 30% util).
        assert!(b.cost.phi > 0.0);
        assert_eq!(b.dropped, 0.0);
        assert_eq!(b.pair_delays.len(), 1);
        assert!((b.pair_delays[0].2 - 10e-3).abs() < 1e-12);
    }

    #[test]
    fn failure_can_create_sla_violation() {
        let net = net();
        let tm = traffic();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let mut w = WeightSetting::uniform(net.num_links(), 20);
        // Make the short relay path expensive for delay traffic so that
        // after the direct link fails, delay traffic must use the 40 ms
        // path via node 2.
        w.set(Class::Delay, link_between(&net, 0, 1), 20);
        w.set(Class::Delay, link_between(&net, 1, 3), 20);
        let direct = link_between(&net, 0, 3);
        let b = ev.evaluate(&w, Scenario::Link(direct));
        assert_eq!(b.sla.violations, 1);
        // 40 ms vs θ = 25 ms: penalty 100 + 15 = 115.
        assert!((b.cost.lambda - 115.0).abs() < 1e-9);
    }

    #[test]
    fn separate_weights_steer_classes_independently() {
        let net = net();
        let tm = traffic();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let mut w = WeightSetting::uniform(net.num_links(), 20);
        // Push throughput traffic off the direct link.
        w.set(Class::Throughput, link_between(&net, 0, 3), 20);
        let b = ev.evaluate(&w, Scenario::Normal);
        let direct = link_between(&net, 0, 3);
        assert_eq!(b.delay_loads[direct.index()], 10.0); // delay stays
        assert_eq!(b.throughput_loads[direct.index()], 0.0); // tput moved
                                                             // Throughput ECMP-splits across the two equal-hop relays.
        assert_eq!(b.throughput_loads[link_between(&net, 0, 1).index()], 10.0);
        assert_eq!(b.throughput_loads[link_between(&net, 0, 2).index()], 10.0);
    }

    #[test]
    fn node_failure_removes_traffic_and_links() {
        let net = net();
        let mut tm = traffic();
        tm.delay.set(1, 2, 5.0); // traffic sourced at the dying node
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let b = ev.evaluate(&w, Scenario::Node(dtr_net::NodeId::new(1)));
        // Node 1's traffic is gone, 0->3 rides the direct link, no drops.
        assert_eq!(b.dropped, 0.0);
        assert_eq!(b.pair_delays.len(), 1);
        for &l in net.out_links(dtr_net::NodeId::new(1)) {
            assert_eq!(b.total_loads[l.index()], 0.0);
        }
    }

    #[test]
    fn queueing_delay_feeds_sla() {
        // Load the direct link into queueing territory (>95%) and check
        // that ξ grows beyond pure propagation.
        let net = net();
        let mut tm = ClassMatrices::zeros(4);
        tm.delay.set(0, 3, 96.0); // 96% of capacity 100
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let b = ev.evaluate(&w, Scenario::Normal);
        let xi = b.pair_delays[0].2;
        assert!(xi > 10e-3, "queueing must add to propagation: {xi}");
    }

    #[test]
    fn utilization_helpers() {
        let net = net();
        let tm = traffic();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let b = ev.evaluate(&w, Scenario::Normal);
        assert!((b.max_utilization(&net) - 0.30).abs() < 1e-12);
        assert!(b.mean_utilization(&net) > 0.0);
        assert!(b.mean_utilization(&net) < b.max_utilization(&net));
    }

    #[test]
    fn mean_bottleneck_utilization_reflects_path_load() {
        let net = net();
        let tm = traffic();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let mbu = ev.mean_bottleneck_utilization(&w, Scenario::Normal);
        // Single delay pair rides the direct link at 30% utilization.
        assert!((mbu - 0.30).abs() < 1e-12);
    }

    #[test]
    fn bounded_batch_completes_exactly_or_cuts_soundly() {
        use crate::engine::BoundedCosts;
        let net = net();
        let tm = traffic();
        let ev = Evaluator::new(&net, &tm, CostParams::default());
        let w = WeightSetting::uniform(net.num_links(), 20);
        let scenarios: Vec<Scenario> = net.duplex_representatives()[..4]
            .iter()
            .map(|&l| Scenario::Link(l))
            .collect();
        let full = ev.evaluate_all(&w, &scenarios);
        let total = full.iter().fold(LexCost::ZERO, |a, c| a.add(c));

        // Unbeatable incumbent: completes with the exact batch costs.
        let inc = LexCost::new(f64::INFINITY, f64::INFINITY);
        assert_eq!(
            ev.evaluate_all_bounded(&w, &scenarios, &inc, None),
            BoundedCosts::Complete(full.clone())
        );

        // Zero incumbent: nothing can be strictly better, so the sweep
        // cuts after the first evaluation.
        assert_eq!(
            ev.evaluate_all_bounded(&w, &scenarios, &LexCost::ZERO, None),
            BoundedCosts::Cut { evaluated: 1 }
        );

        // With per-scenario floors the same unbeatable incumbent still
        // completes with the exact batch costs (floors may only hasten
        // rejections, never manufacture one), and the zero incumbent
        // still cuts immediately.
        let mut ws = ev.acquire_workspace();
        let floors: Vec<crate::engine::ScenarioFloor> = scenarios
            .iter()
            .map(|&sc| ev.scenario_floor(&mut ws, sc))
            .collect();
        ev.release_workspace(ws);
        assert_eq!(
            ev.evaluate_all_bounded(&w, &scenarios, &inc, Some(&floors)),
            BoundedCosts::Complete(full)
        );
        assert!(matches!(
            ev.evaluate_all_bounded(&w, &scenarios, &LexCost::ZERO, Some(&floors)),
            BoundedCosts::Cut { .. }
        ));

        // Incumbent just above the total: must complete (the total still
        // beats it on Φ) and agree with the plain fold.
        let above = LexCost::new(total.lambda, total.phi * 2.0);
        match ev.evaluate_all_bounded(&w, &scenarios, &above, Some(&floors)) {
            BoundedCosts::Complete(costs) => {
                let sum = costs.iter().fold(LexCost::ZERO, |a, c| a.add(c));
                assert_eq!(sum, total);
            }
            BoundedCosts::Cut { .. } => panic!("cut a batch that beats the incumbent"),
        }
    }

    #[test]
    fn mean_aggregation_is_not_larger_than_max() {
        let net = net();
        let tm = traffic();
        let w = WeightSetting::uniform(net.num_links(), 20);
        let ev_max = Evaluator::new(&net, &tm, CostParams::default());
        let ev_mean = Evaluator::new(
            &net,
            &tm,
            CostParams {
                aggregation: DelayAggregation::Mean,
                ..Default::default()
            },
        );
        let d_max = ev_max.evaluate(&w, Scenario::Normal).pair_delays[0].2;
        let d_mean = ev_mean.evaluate(&w, Scenario::Normal).pair_delays[0].2;
        assert!(d_mean <= d_max + 1e-15);
    }
}
