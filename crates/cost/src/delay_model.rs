//! Per-link delay `D_l` — Eq. (1) of the paper.
//!
//! ```text
//! D_l = p_l                                   if x_l/C_l <= µ     (1a)
//! D_l = κ/C_l · (x_l/(C_l - x_l) + 1) + p_l   otherwise           (1b)
//! ```
//!
//! (1b) is the M/M/1 sojourn time with service rate `C_l/κ`: the mean
//! queueing+transmission delay of a κ-bit packet on a `C_l` bit/s link
//! offered `x_l` bit/s. To avoid the pole at `x_l → C_l`, the function is
//! continued **linearly** from the knee `x_l/C_l = 0.99` (paper fn 3),
//! matching both value and slope so the cost stays C¹-smooth there.
//!
//! Sanity anchor from the paper (§V-A3): κ = 1500 B, C = 500 Mb/s,
//! utilization 95 % ⇒ queueing delay just under 0.5 ms.

use crate::params::CostParams;

/// Queueing + transmission component of Eq. (1b), seconds (no `p_l`).
fn mm1_component(x: f64, capacity: f64, kappa: f64) -> f64 {
    (kappa / capacity) * (x / (capacity - x) + 1.0)
}

/// Slope of [`mm1_component`] in `x`:
/// `d/dx [κ/C · (x/(C−x) + 1)] = κ/(C−x)²`.
fn mm1_slope(x: f64, capacity: f64, kappa: f64) -> f64 {
    let r = capacity - x;
    kappa / (r * r)
}

/// Delay of one link (seconds) under total offered load `x` (bits/s),
/// capacity (bits/s) and propagation delay (seconds) — Eq. (1).
pub fn link_delay(x: f64, capacity: f64, prop_delay: f64, p: &CostParams) -> f64 {
    debug_assert!(x >= 0.0, "negative load");
    debug_assert!(capacity > 0.0, "non-positive capacity");
    let u = x / capacity;
    if u <= p.mu {
        // (1a): queueing negligible at backbone speeds below µ.
        return prop_delay;
    }
    let knee_x = p.linearization_knee * capacity;
    if x <= knee_x {
        // (1b): M/M/1 approximation.
        mm1_component(x, capacity, p.kappa_bits) + prop_delay
    } else {
        // Linear continuation beyond the knee (value- and slope-matched).
        let base = mm1_component(knee_x, capacity, p.kappa_bits);
        let slope = mm1_slope(knee_x, capacity, p.kappa_bits);
        base + slope * (x - knee_x) + prop_delay
    }
}

/// Vectorized form: delays for every link given total loads. `loads`,
/// `capacities` and `prop_delays` are indexed by directed link id.
pub fn link_delays(
    loads: &[f64],
    capacities: &[f64],
    prop_delays: &[f64],
    p: &CostParams,
) -> Vec<f64> {
    let mut out = Vec::new();
    link_delays_into(loads, capacities, prop_delays, p, &mut out);
    out
}

/// [`link_delays`] into a caller buffer (cleared first) — the
/// allocation-free form the workspace evaluation engine uses.
pub fn link_delays_into(
    loads: &[f64],
    capacities: &[f64],
    prop_delays: &[f64],
    p: &CostParams,
    out: &mut Vec<f64>,
) {
    debug_assert_eq!(loads.len(), capacities.len());
    debug_assert_eq!(loads.len(), prop_delays.len());
    out.clear();
    out.extend(
        loads
            .iter()
            .zip(capacities)
            .zip(prop_delays)
            .map(|((&x, &c), &pd)| link_delay(x, c, pd, p)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 500e6;
    const PD: f64 = 5e-3;

    fn p() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn below_mu_is_propagation_only() {
        for u in [0.0, 0.3, 0.7, 0.95] {
            assert_eq!(link_delay(u * C, C, PD, &p()), PD, "u = {u}");
        }
    }

    #[test]
    fn paper_anchor_half_millisecond_at_95_percent() {
        // Just above µ the queueing term appears; at 95% load it must be
        // "less than 0.5ms" (paper §V-A3).
        let d = link_delay(0.9501 * C, C, 0.0, &p());
        assert!(d > 0.0 && d < 0.5e-3, "queueing delay {d}");
    }

    #[test]
    fn queueing_grows_with_load() {
        let mut prev = 0.0;
        for u in [0.955, 0.96, 0.97, 0.98, 0.985] {
            let d = link_delay(u * C, C, 0.0, &p());
            assert!(d > prev, "u = {u}");
            prev = d;
        }
    }

    #[test]
    fn linearization_is_continuous_at_knee() {
        let knee = 0.99 * C;
        let eps = C * 1e-9;
        let below = link_delay(knee - eps, C, PD, &p());
        let above = link_delay(knee + eps, C, PD, &p());
        assert!(
            (below - above).abs() < 1e-9,
            "discontinuity at knee: {below} vs {above}"
        );
    }

    #[test]
    fn linearization_is_slope_continuous_at_knee() {
        let knee = 0.99 * C;
        let h = C * 1e-7;
        let slope_below = (link_delay(knee, C, PD, &p()) - link_delay(knee - h, C, PD, &p())) / h;
        let slope_above = (link_delay(knee + h, C, PD, &p()) - link_delay(knee, C, PD, &p())) / h;
        let rel = (slope_below - slope_above).abs() / slope_below.abs();
        assert!(
            rel < 1e-3,
            "slope jump at knee: {slope_below} vs {slope_above}"
        );
    }

    #[test]
    fn overload_is_finite_and_increasing() {
        // Beyond capacity the linearization must keep delays finite and
        // monotone (the search must be able to walk out of overload).
        let d1 = link_delay(1.0 * C, C, PD, &p());
        let d2 = link_delay(1.5 * C, C, PD, &p());
        let d3 = link_delay(10.0 * C, C, PD, &p());
        assert!(d1.is_finite() && d2.is_finite() && d3.is_finite());
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    fn monotone_in_load_everywhere() {
        let mut prev = -1.0;
        for i in 0..2000 {
            let x = C * (i as f64) / 1000.0; // 0 .. 2C
            let d = link_delay(x, C, PD, &p());
            assert!(d >= prev, "non-monotone at x = {x}");
            prev = d;
        }
    }

    #[test]
    fn vectorized_matches_scalar() {
        let loads = [0.0, 0.96 * C, 2.0 * C];
        let caps = [C, C, C];
        let pds = [PD, PD, PD];
        let v = link_delays(&loads, &caps, &pds, &p());
        for i in 0..3 {
            assert_eq!(v[i], link_delay(loads[i], caps[i], pds[i], &p()));
        }
    }
}
