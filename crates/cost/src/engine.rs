//! The allocation-free, incremental evaluation engine.
//!
//! [`crate::Evaluator::evaluate`] is the readable reference
//! implementation: it recomputes everything from scratch and allocates
//! its full [`crate::CostBreakdown`]. The local search does not need the
//! breakdown — it needs millions of scalar [`crate::LexCost`] answers —
//! so this module provides the machinery that produces *the same bits*
//! without the per-evaluation work:
//!
//! 1. **Workspaces** ([`EvalWorkspace`]): every scratch vector an
//!    evaluation needs (Dijkstra heap, distance fields, load buffers,
//!    the scenario mask, per-pair delays) lives in a per-thread workspace
//!    drawn from the evaluator's pool. After warm-up, an evaluation of
//!    **any** scenario kind performs **zero** heap allocations
//!    (`tests/alloc_free.rs` pins this for link, SRLG and node sweeps).
//! 2. **Baseline caching**: the workspace keeps, per traffic class, the
//!    full no-failure routing of the *current* weight setting as
//!    replayable [`DestRouting`] records (one per demand destination).
//! 3. **Mask-diff incremental SPF across scenarios**: each scenario is
//!    reduced to its *down-set* — the directed links its mask fails: one
//!    duplex pair (`Link`), several pairs (`Srlg`, `DoubleLink`), or a
//!    router's full incidence set (`Node`). Only destinations whose
//!    no-failure shortest-path DAG uses a down link ([`dag_uses_any`])
//!    are re-routed; all other destinations replay their recorded load
//!    accumulations bit-for-bit. Probabilistic ensembles are sets of
//!    these same scenarios — their per-scenario weights are applied by
//!    the caller in scenario-index order, so the weighted sum is also
//!    bit-stable.
//! 4. **Incremental SPF across search moves**: when the weight setting
//!    changes (a Phase-1/Phase-2 neighbor move re-draws one duplex
//!    link's weights), the baseline is diffed against the new weights
//!    and only destinations whose distance field is provably affected
//!    ([`weight_change_affects`]) are re-routed.
//!
//! # Node failures: masks that also remove traffic
//!
//! A node failure downs every link incident to the dead router `v` *and*
//! removes the traffic `v` sources and sinks. The engine still evaluates
//! it against the **base** traffic matrices, without cloning, because the
//! mask makes the traffic change self-enforcing:
//!
//! * if `v` was reachable towards a destination `t`, the first hop of
//!   `v`'s shortest path is on `t`'s DAG — a down link — so
//!   [`dag_uses_any`] flags `t` and it is re-routed. Under the node mask
//!   `v` has no surviving out-link, so `v`'s demand lands in the dropped
//!   accumulator and contributes no load addition — the per-link float
//!   adds are exactly those of routing with `v`'s row zeroed;
//! * a destination is only *replayed* when `v` was already unreachable
//!   in its baseline (degenerate topologies), where `v`'s demand never
//!   produced a load addition in the first place;
//! * the dead node is skipped as a destination, and the shared SLA
//!   kernel ([`delay::pair_delays_into`]) is told to skip it as a
//!   sender, so the emitted `(s, t, ξ)` triples match the reference's
//!   zeroed-matrix emission pair for pair.
//!
//! The only reference quantity the engine does not reproduce for node
//! scenarios is the `dropped` accounting (the reference removes the dead
//! node's demand before routing; the engine records it as dropped) —
//! `dropped` is diagnostic and never part of [`crate::LexCost`].
//!
//! # Equivalence guarantees
//!
//! Bit-for-bit equivalence with the reference path is not best-effort —
//! it is load-bearing (the optimization trajectory must not depend on
//! which engine evaluated a candidate) and pinned for **every**
//! `Scenario` kind by `tests/engine_equivalence.rs` and the randomized
//! differential harness `tests/scenario_engine_equivalence.rs`. It holds
//! because a replayed destination re-issues the exact floating-point
//! additions, in the exact order, that a fresh computation would
//! perform, and a re-routed destination runs the exact same
//! [`route_destination`] kernel the reference path is built on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Source of unique per-[`Evaluator`] identities (see
/// [`EvalWorkspace::owner`]); 0 is reserved for "never owned".
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh evaluator identity.
pub(crate) fn next_engine_id() -> u64 {
    NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed)
}

use dtr_net::{LinkId, LinkMask};
use dtr_routing::workspace::{
    dag_uses_any, route_destination, weight_change_affects, DestRouting, WeightChange,
};
use dtr_routing::{delay, Class, Scenario, SpfWorkspace, WeightSetting};
use dtr_traffic::TrafficMatrix;

use crate::delay_model;
use crate::lexico::LexCost;
use crate::params::DelayAggregation;
use crate::{congestion, sla, Evaluator};

/// Marker for "this destination was replayed from the baseline".
const NOT_RECOMPUTED: u32 = u32::MAX;

/// The cached no-failure routing of one traffic class under the
/// workspace's current weight setting.
#[derive(Debug, Default)]
struct ClassBaseline {
    /// Weights this baseline was computed with (diffed on every reuse).
    weights: Vec<u32>,
    /// One replayable record per demand destination, aligned with the
    /// evaluator's per-class demand-destination list.
    state: Vec<DestRouting>,
    valid: bool,
}

/// Per-thread scratch for the incremental engine. Acquire one from
/// [`Evaluator::acquire_workspace`] (or implicitly via
/// [`Evaluator::cost`] / [`Evaluator::evaluate_all`]) and reuse it: all
/// buffers reach steady-state capacity after the first evaluation.
#[derive(Debug, Default)]
pub struct EvalWorkspace {
    /// [`Evaluator::engine_id`] of the evaluator whose baseline this
    /// workspace holds; 0 = none yet. Two evaluators can share a link
    /// count while disagreeing on traffic or parameters, so baseline
    /// reuse is gated on identity, not on buffer sizes.
    owner: u64,
    spf: SpfWorkspace,
    mask: LinkMask,
    /// Directed link ids down under the current scenario.
    down: Vec<u32>,
    /// Weight diffs of the current `ensure_baseline` call.
    diff: Vec<WeightChange>,
    base: [ClassBaseline; 2],
    /// Recomputed per-destination routings of the current scenario
    /// (delay class only — their distance fields feed the delay DP).
    scratch: Vec<DestRouting>,
    /// Delay-class destination index → slot in `scratch`, or
    /// [`NOT_RECOMPUTED`].
    scratch_map: Vec<u32>,
    /// Throughput-class recompute scratch (result replayed immediately).
    tput_scratch: DestRouting,
    class_loads: [Vec<f64>; 2],
    total_loads: Vec<f64>,
    link_delays: Vec<f64>,
    node_delay: Vec<f64>,
    pair_delays: Vec<(usize, usize, f64)>,
}

impl EvalWorkspace {
    /// Fresh workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop any cached baseline (forces the next evaluation to rebuild
    /// it from scratch). Only needed by tests and diagnostics.
    pub fn invalidate(&mut self) {
        self.base[0].valid = false;
        self.base[1].valid = false;
    }
}

/// A shared pool of per-thread workspaces owned by an evaluator (the
/// [`Evaluator`] pools [`EvalWorkspace`]s; the MTR evaluator reuses the
/// same type for its own workspace). Lock contention is negligible: one
/// lock per *batch* of evaluations (or per single evaluation on the
/// compatibility path), against milliseconds of routing work.
#[derive(Debug)]
pub struct WorkspacePool<T = EvalWorkspace> {
    pool: Mutex<Vec<T>>,
}

impl<T> Default for WorkspacePool<T> {
    fn default() -> Self {
        WorkspacePool {
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl<T: Default> WorkspacePool<T> {
    /// Pop a pooled workspace, or create a fresh one if the pool is dry.
    pub fn acquire(&self) -> T {
        self.pool
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a workspace so its warmed-up buffers get reused.
    pub fn release(&self, ws: T) {
        self.pool.lock().expect("workspace pool poisoned").push(ws);
    }
}

impl<'a> Evaluator<'a> {
    /// Check a workspace out of the evaluator's pool (creating one if
    /// the pool is dry). Return it with
    /// [`release_workspace`](Self::release_workspace) so its warmed-up
    /// buffers and cached baseline benefit later evaluations.
    pub fn acquire_workspace(&self) -> EvalWorkspace {
        self.pool.acquire()
    }

    /// Return a workspace to the pool.
    pub fn release_workspace(&self, ws: EvalWorkspace) {
        self.pool.release(ws);
    }

    /// Scenario-batched evaluation: the costs of `w` under every
    /// scenario, in input order — bit-for-bit what per-scenario
    /// [`Evaluator::evaluate`] would report, computed incrementally (one
    /// no-failure baseline, per-scenario recomputation only of the
    /// destinations each failure actually touches).
    pub fn evaluate_all(&self, w: &WeightSetting, scenarios: &[Scenario]) -> Vec<LexCost> {
        let mut ws = self.acquire_workspace();
        let out = scenarios
            .iter()
            .map(|&sc| self.cost_with(&mut ws, w, sc))
            .collect();
        self.release_workspace(ws);
        out
    }

    /// Scalar cost of one (weight setting, scenario) pair through the
    /// incremental engine, using the caller's workspace. Equals
    /// `self.evaluate(w, scenario).cost` bit-for-bit.
    pub fn cost_with(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
    ) -> LexCost {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        self.ensure_baseline(ws, w);
        self.cost_scenario(ws, w, scenario)
    }

    /// Make `ws`'s per-class baselines describe the no-failure routing of
    /// `w`, re-routing only destinations whose distance field the weight
    /// diff can actually touch.
    fn ensure_baseline(&self, ws: &mut EvalWorkspace, w: &WeightSetting) {
        if ws.owner != self.engine_id {
            // First use, or a workspace recycled from a different
            // evaluator (possibly same-sized but with different traffic
            // or parameters): size the mask, drop stale baselines.
            ws.owner = self.engine_id;
            ws.mask = LinkMask::all_up(self.net.num_links());
            ws.invalidate();
        }
        ws.mask.reset_all_up();
        let EvalWorkspace {
            spf,
            mask,
            diff,
            base,
            ..
        } = ws;
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let b = &mut base[ci];
            if b.valid && b.weights.len() == weights.len() {
                diff.clear();
                diff.extend(
                    b.weights
                        .iter()
                        .zip(weights)
                        .enumerate()
                        .filter(|(_, (o, n))| o != n)
                        .map(|(l, (&o, &n))| WeightChange {
                            link: LinkId::new(l),
                            old: o,
                            new: n,
                        }),
                );
                if diff.is_empty() {
                    continue;
                }
                for (di, &t) in dests.iter().enumerate() {
                    if weight_change_affects(self.net, &b.state[di].dist, diff) {
                        route_destination(
                            self.net,
                            weights,
                            tm,
                            mask,
                            t as usize,
                            spf,
                            &mut b.state[di],
                        );
                    }
                }
                b.weights.copy_from_slice(weights);
            } else {
                b.state.resize_with(dests.len(), DestRouting::default);
                for (di, &t) in dests.iter().enumerate() {
                    route_destination(
                        self.net,
                        weights,
                        tm,
                        mask,
                        t as usize,
                        spf,
                        &mut b.state[di],
                    );
                }
                b.weights.clear();
                b.weights.extend_from_slice(weights);
                b.valid = true;
            }
        }
    }

    /// Evaluate one scenario (any kind) against a valid baseline.
    fn cost_scenario(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
    ) -> LexCost {
        // Node failures also remove the dead node's traffic; the mask
        // makes that self-enforcing for loads (see the module docs), and
        // the routing/SLA loops below skip the node explicitly where the
        // base matrices still mention it.
        let excluded = scenario.excluded_node().map(|v| v.index());
        let EvalWorkspace {
            spf,
            mask,
            down,
            base,
            scratch,
            scratch_map,
            tput_scratch,
            class_loads,
            total_loads,
            link_delays,
            node_delay,
            pair_delays,
            ..
        } = ws;
        scenario.mask_into(self.net, mask);
        down.clear();
        down.extend(mask.down_links().map(|i| i as u32));

        // Route (or replay) both classes. The delay class keeps its
        // recomputed destinations around: their distance fields feed the
        // end-to-end delay DP below.
        let mut scratch_used = 0usize;
        let mut dropped = 0.0f64; // diagnostic only; never in the cost
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let loads = &mut class_loads[ci];
            loads.clear();
            loads.resize(self.net.num_links(), 0.0);
            if ci == 0 {
                scratch_map.clear();
                scratch_map.resize(dests.len(), NOT_RECOMPUTED);
            }
            for (di, &t) in dests.iter().enumerate() {
                if Some(t as usize) == excluded {
                    // The dead node sinks nothing under its own failure;
                    // the reference path (zeroed column) never routes it.
                    continue;
                }
                let b = &mut base[ci].state[di];
                let affected = !down.is_empty() && dag_uses_any(self.net, &b.dist, weights, down);
                if !affected {
                    b.replay(loads, &mut dropped);
                } else if ci == 0 {
                    if scratch.len() == scratch_used {
                        scratch.push(DestRouting::default());
                    }
                    let dest = &mut scratch[scratch_used];
                    route_destination(self.net, weights, tm, mask, t as usize, spf, dest);
                    dest.replay(loads, &mut dropped);
                    scratch_map[di] = scratch_used as u32;
                    scratch_used += 1;
                } else {
                    route_destination(self.net, weights, tm, mask, t as usize, spf, tput_scratch);
                    tput_scratch.replay(loads, &mut dropped);
                }
            }
        }

        // Total loads, link delays (same element-wise operations as the
        // reference path).
        total_loads.clear();
        total_loads.extend(
            class_loads[0]
                .iter()
                .zip(&class_loads[1])
                .map(|(x, y)| x + y),
        );
        delay_model::link_delays_into(
            total_loads,
            &self.capacities,
            &self.prop_delays,
            &self.params,
            link_delays,
        );

        // Per-pair end-to-end delays of the delay class (shared kernel;
        // the order field is cached, not recomputed).
        let weights_d = w.weights(Class::Delay);
        let take_max = matches!(self.params.aggregation, DelayAggregation::Max);
        pair_delays.clear();
        for (di, &t) in self.demand_dests[0].iter().enumerate() {
            if Some(t as usize) == excluded {
                continue;
            }
            let dest = match scratch_map[di] {
                NOT_RECOMPUTED => &base[0].state[di],
                slot => &scratch[slot as usize],
            };
            delay::pair_delays_into(
                self.net,
                &dest.dist,
                &dest.order,
                weights_d,
                mask,
                link_delays,
                take_max,
                &self.traffic.delay,
                t as usize,
                excluded,
                node_delay,
                pair_delays,
            );
        }

        let sla = sla::summarize(&*pair_delays, &self.params);
        let phi = congestion::phi(total_loads, &class_loads[1], &self.capacities);
        LexCost::new(sla.lambda, phi)
    }

    #[inline]
    fn class_matrix(&self, class: Class) -> &TrafficMatrix {
        match class {
            Class::Delay => &self.traffic.delay,
            Class::Throughput => &self.traffic.throughput,
        }
    }
}
