//! The allocation-free, incremental, delta-state evaluation engine.
//!
//! [`crate::Evaluator::evaluate`] is the readable reference
//! implementation: it recomputes everything from scratch and allocates
//! its full [`crate::CostBreakdown`]. The local search does not need the
//! breakdown — it needs millions of scalar [`crate::LexCost`] answers —
//! so this module provides the machinery that produces *the same bits*
//! without the per-evaluation work:
//!
//! 1. **Workspaces** ([`EvalWorkspace`]): every scratch vector an
//!    evaluation needs (Dijkstra heap, distance fields, load buffers,
//!    the scenario mask, per-pair delays) lives in a per-thread workspace
//!    drawn from the evaluator's pool. After warm-up, an evaluation of
//!    **any** scenario kind performs **zero** heap allocations
//!    (`tests/alloc_free.rs` pins this for link, SRLG and node sweeps,
//!    and for the delta-state cached path).
//! 2. **Baseline caching**: the workspace keeps, per traffic class, the
//!    full no-failure routing of the *current* weight setting as
//!    replayable [`DestRouting`] records (one per demand destination).
//! 3. **Mask-diff incremental SPF across scenarios**: each scenario is
//!    reduced to its *down-set* — the directed links its mask fails: one
//!    duplex pair (`Link`), several pairs (`Srlg`, `DoubleLink`), or a
//!    router's full incidence set (`Node`). Only destinations whose
//!    no-failure shortest-path DAG uses a down link ([`dag_uses_any`])
//!    are re-routed; all other destinations replay their recorded load
//!    accumulations bit-for-bit. Probabilistic ensembles are sets of
//!    these same scenarios — their per-scenario weights are applied by
//!    the caller in scenario-index order, so the weighted sum is also
//!    bit-stable.
//! 4. **Incremental SPF across search moves**: when the weight setting
//!    changes (a Phase-1/Phase-2 neighbor move re-draws one duplex
//!    link's weights), the baseline is diffed against the new weights
//!    and only destinations whose distance field is provably affected
//!    ([`weight_change_affects`]) are re-routed.
//! 5. **Delta-state scenario cache across moves × scenarios**
//!    ([`ScenarioCache`]): the robust phase's sweep evaluates the *same
//!    scenarios* for a stream of candidates that differ from the
//!    incumbent by one duplex link. The cache keeps **persistent
//!    per-scenario state** of the incumbent — see the next section — so
//!    a candidate's per-scenario cost ([`Evaluator::cost_cached`])
//!    re-routes only the mask ∩ move-affected destinations, refolds only
//!    the links whose contributor set changed, and re-runs the SLA delay
//!    DP only for destinations whose routing or on-DAG link delays
//!    changed. The accept path re-points the cache at the new incumbent
//!    incrementally ([`Evaluator::cache_refresh`]).
//! 6. **Incumbent-bounded sweeps**
//!    ([`Evaluator::evaluate_all_bounded`], and the set-native
//!    `dtr_core::parallel::sum_set_costs_bounded` with per-scenario
//!    [`ScenarioFloor`]s — the propagation Λ floor from
//!    [`Evaluator::lambda_floor`] paired with the load-aware congestion
//!    Φ floor from [`Evaluator::phi_floor`]): compound failure costs
//!    are non-negative sums, so a partial fold that stops beating the
//!    search's incumbent *proves* the candidate will be rejected — the
//!    rest of the sweep is skipped without perturbing the trajectory.
//!    Floors are weight-independent, so they are computed once per
//!    search and stand in for every scenario a bounded sweep has not
//!    reached yet.
//! 7. **Repair-seeded routing everywhere**: the plain
//!    [`Evaluator::cost_with`]/`cost_scenario` path — capture sweeps,
//!    reference anchors, every uncached failure sweep — seeds
//!    [`route_destination_repair`] from the workspace's resident
//!    no-failure baseline (orphan detection + boundary Dijkstra),
//!    instead of a from-scratch Dijkstra per mask-affected destination.
//!    Integer distances make the repair bit-equal to the full route, so
//!    this is purely a constant-factor win on the route bound.
//!
//! The "same bits" guarantee is a workspace-wide contract — parallel ==
//! serial, cached == uncached, repair == full-route, and cross-process
//! reproducibility — enforced dynamically by the equivalence suites and
//! statically by the `dtr-analysis` pass; `DETERMINISM.md` at the
//! workspace root states the contract and how to run and extend the
//! pass (this module's kernels are registered allocation-free in
//! `crates/analysis/hot_paths.toml`).
//!
//! # The delta-state model
//!
//! Before this engine, a fully cached scenario evaluation still paid a
//! *replay floor*: every destination's recorded load-adds were re-issued
//! into a zeroed load vector, the per-link delays recomputed from
//! scratch, and the end-to-end delay DP re-run for every delay
//! destination — even when the candidate's one-duplex-link diff provably
//! touched none of them. The [`ScenarioCache`] now keeps, per scenario,
//! the *folded* state of the incumbent, and candidates pay only for
//! their diff:
//!
//! * **What persists per scenario**: the recomputed routings of every
//!   mask-affected destination (exactly the affected set — maintained
//!   exactly by capture and refresh), the resident per-class per-link
//!   **load vectors**, per-class **per-link contributor lists**
//!   ([`LinkContrib`]: `(destination, share)` pairs in destination-index
//!   order), the resident **per-link delays**, and the resident **SLA
//!   pair-delay triples** segmented by destination. The cache also holds
//!   the incumbent's no-failure **baseline** routings per class (the
//!   effective routing of every destination the mask does not touch).
//! * **When a destination is changed**: the conservative
//!   [`weight_change_affects`] pre-screen is sharpened into an *exact*
//!   per-candidate baseline diff ([`baseline_unchanged`], computed once
//!   per candidate against the workspace's maintained candidate
//!   baseline and shared by the whole scenario sweep): a destination is
//!   baseline-changed only when its distance field or DAG really moved.
//!   A changed destination's *scenario* routing is still reused from the
//!   entry whenever the diff provably cannot touch it; otherwise it is
//!   **repaired** from the candidate baseline
//!   ([`route_destination_repair`]: orphan detection plus a boundary
//!   Dijkstra over the invalidated region — integer distances make the
//!   repair bit-equal to a from-scratch route) instead of paying a full
//!   Dijkstra.
//! * **When a link is refolded**: the links appearing in a changed
//!   destination's old or new adds are *dirty*; when few links are
//!   dirty, only those are refolded from the stored contributor lists —
//!   and when a large move dirtied most of the network, the engine
//!   instead replays every destination's effective adds in destination
//!   order (the identical float sequence, cheaper than per-link
//!   merges). Every clean link's load and delay, and every untouched
//!   destination's pair-delay segment, is read back from the resident
//!   state.
//! * **Why the per-link destination-ordered fold is bit-exact**: a
//!   from-scratch evaluation accumulates `loads[l]` by iterating
//!   destinations in index order and replaying each destination's adds;
//!   the sub-sequence of adds landing on link `l` is therefore "one
//!   share per contributing destination, in destination-index order"
//!   (the ECMP push emits at most one add per (destination, link) pair —
//!   see [`DestRouting::load_adds`]). Refolding link `l` as a merge of
//!   the stored contributor list (minus changed destinations) with the
//!   changed destinations' fresh shares, in destination-index order,
//!   performs the **exact same float additions in the exact same
//!   order** — so a clean link's resident load and a dirty link's
//!   refolded load are both bit-for-bit the from-scratch value.
//!   Downstream, per-link delays are a per-link pure function of the
//!   total load (patched only where a refold ran; a patched delay that
//!   comes out bit-identical is pruned), and a destination's pair-delay
//!   segment is reused unless its routing changed or a bit-changed delay
//!   lies on its DAG ([`dag_uses_any`] over the changed-delay links —
//!   a conservative superset of the DP's on-DAG reads). The final Λ and
//!   Φ folds run over the assembled per-pair and per-link values in the
//!   reference order, so they reproduce [`Evaluator::cost_with`] — and
//!   therefore the reference path — bit for bit.
//!
//! # Node failures: masks that also remove traffic
//!
//! A node failure downs every link incident to the dead router `v` *and*
//! removes the traffic `v` sources and sinks. The engine still evaluates
//! it against the **base** traffic matrices, without cloning, because the
//! mask makes the traffic change self-enforcing:
//!
//! * if `v` was reachable towards a destination `t`, the first hop of
//!   `v`'s shortest path is on `t`'s DAG — a down link — so
//!   [`dag_uses_any`] flags `t` and it is re-routed. Under the node mask
//!   `v` has no surviving out-link, so `v`'s demand lands in the dropped
//!   accumulator and contributes no load addition — the per-link float
//!   adds are exactly those of routing with `v`'s row zeroed;
//! * a destination is only *replayed* when `v` was already unreachable
//!   in its baseline (degenerate topologies), where `v`'s demand never
//!   produced a load addition in the first place;
//! * the dead node is skipped as a destination, and the shared SLA
//!   kernel ([`delay::pair_delays_into`]) is told to skip it as a
//!   sender, so the emitted `(s, t, ξ)` triples match the reference's
//!   zeroed-matrix emission pair for pair.
//!
//! The only reference quantity the engine does not reproduce for node
//! scenarios is the `dropped` accounting (the reference removes the dead
//! node's demand before routing; the engine records it as dropped) —
//! `dropped` is diagnostic and never part of [`crate::LexCost`].
//!
//! # Equivalence guarantees
//!
//! Bit-for-bit equivalence with the reference path is not best-effort —
//! it is load-bearing (the optimization trajectory must not depend on
//! which engine evaluated a candidate) and pinned for **every**
//! `Scenario` kind by `tests/engine_equivalence.rs` and the randomized
//! differential harness `tests/scenario_engine_equivalence.rs`
//! (including randomized move/accept chains through the delta-state
//! cache, its refreshes, and full rebuilds). It holds because a replayed
//! destination re-issues the exact floating-point additions, in the
//! exact order, that a fresh computation would perform; a re-routed
//! destination runs the exact same [`route_destination`] kernel the
//! reference path is built on; and the delta-state folds preserve the
//! reference accumulation order per link and per pair (see above).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Source of unique per-[`Evaluator`] identities (see
/// [`EvalWorkspace::owner`]); 0 is reserved for "never owned".
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh evaluator identity — shared across every evaluator family
/// that pools owner-gated workspaces (`dtr-cost` and `dtr-mtr`), so an
/// id can never collide between them.
pub fn next_engine_id() -> u64 {
    NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed)
}

use dtr_net::{LinkId, LinkMask};
use dtr_routing::workspace::{
    dag_uses_any, route_destination, route_destination_repair, weight_change_affects, DestRouting,
    WeightChange,
};
use dtr_routing::{delay, Class, Scenario, SpfWorkspace, WeightSetting};
use dtr_traffic::TrafficMatrix;

use crate::delay_model;
use crate::lexico::LexCost;
use crate::params::DelayAggregation;
use crate::{congestion, sla, Evaluator};

/// Marker for "this destination was replayed from the baseline".
/// Deliberately outside the [`CACHED_BIT`] range (high bit clear) so the
/// `scratch_map` decode is order-independent: no sentinel can alias a
/// tagged cache-entry slot regardless of which test runs first.
const NOT_RECOMPUTED: u32 = 0x7fff_fffe;

/// Tag bit marking a `scratch_map` slot that resolves into the scenario
/// cache's recomputed routings instead of the recompute scratch.
const CACHED_BIT: u32 = 0x8000_0000;

/// Tag marking a `scratch_map` slot that resolves into the workspace's
/// candidate baseline (a move-touched destination the scenario mask does
/// not affect) on the delta-state path.
const WS_BASE: u32 = 0x7fff_ffff;

/// Per-link contributor lists of one scenario's effective routing state
/// (CSR over directed links): for every link, the `(destination index,
/// share)` pairs that fold into its load, sorted by destination index.
///
/// Because the ECMP push emits at most one add per (destination, link)
/// pair, a link's row holds one entry per contributing destination, and
/// folding the row in order reproduces the from-scratch accumulation of
/// that link's load bit for bit (see the module docs). Shared with the
/// `dtr-mtr` delta-state cache.
#[derive(Clone, Debug, Default)]
pub struct LinkContrib {
    /// `off[l]..off[l+1]` indexes `entries` for link `l`.
    off: Vec<u32>,
    /// `(destination index, share)` pairs, destination-ascending per link.
    entries: Vec<(u32, f64)>,
    /// Fill-cursor scratch of [`rebuild`](Self::rebuild).
    cursor: Vec<u32>,
}

impl LinkContrib {
    /// The contributor row of link `l`, destination-ascending.
    #[inline]
    pub fn row(&self, l: usize) -> &[(u32, f64)] {
        &self.entries[self.off[l] as usize..self.off[l + 1] as usize]
    }

    /// Rebuild the CSR from per-destination contribution sequences:
    /// `adds_of(di)` yields destination `di`'s effective `(link, share)`
    /// adds. Destinations are scanned in ascending index order, so every
    /// link's row comes out sorted by destination.
    pub fn rebuild<'a, F>(&mut self, num_links: usize, num_dests: usize, mut adds_of: F)
    where
        F: FnMut(usize) -> &'a [(u32, f64)],
    {
        self.off.clear();
        self.off.resize(num_links + 1, 0);
        let mut total = 0usize;
        for di in 0..num_dests {
            for &(l, _) in adds_of(di) {
                self.off[l as usize + 1] += 1;
                total += 1;
            }
        }
        // The CSR stores u32 offsets; a count past u32::MAX must fail
        // loudly here, not wrap the prefix sums into silent mis-sizing.
        assert!(
            total <= u32::MAX as usize,
            "contributor count {total} exceeds the u32 CSR offset space"
        );
        for l in 0..num_links {
            self.off[l + 1] += self.off[l];
        }
        self.entries.clear();
        self.entries.resize(total, (0, 0.0));
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.off[..num_links]);
        for di in 0..num_dests {
            for &(l, share) in adds_of(di) {
                let c = &mut self.cursor[l as usize];
                self.entries[*c as usize] = (di as u32, share);
                *c += 1;
            }
        }
    }

    /// Bytes of resident CSR state, from element counts (see
    /// [`ScenarioEntry::resident_bytes`]).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.off.len() + self.cursor.len()) * size_of::<u32>()
            + self.entries.len() * size_of::<(u32, f64)>()
    }
}

/// `true` when a destination's candidate baseline routing is bit-for-bit
/// its cached incumbent baseline routing, proven from the candidate's
/// freshly maintained distance field:
///
/// * the distance fields are bitwise equal, and
/// * every changed link is off the shortest-path DAG under **both** its
///   old and its new weight (`dist[u] != dist[v] + w` for both; links
///   with an unreachable endpoint are never on a DAG).
///
/// Unchanged links keep their DAG status trivially (same weight, same
/// distances), so the two DAGs coincide on every link — and
/// [`route_destination`] is a deterministic function of (distances, DAG
/// membership, traffic), so the full record (order, load adds, drops) is
/// identical. This is the *exact* per-destination baseline diff: the
/// conservative [`weight_change_affects`] pre-screen errs towards
/// "changed" (e.g. a lowered weight that fails to create a shortcut),
/// and every such false positive would otherwise re-run the per-scenario
/// delay DP for nothing.
pub fn baseline_unchanged(
    net: &dtr_net::Network,
    cand_dist: &[u64],
    inc_dist: &[u64],
    diff: &[WeightChange],
) -> bool {
    if cand_dist != inc_dist {
        return false;
    }
    diff.iter().all(|c| {
        let link = net.link(c.link);
        let (u, v) = (link.src.index(), link.dst.index());
        if cand_dist[u] == dtr_routing::UNREACHABLE || cand_dist[v] == dtr_routing::UNREACHABLE {
            return true;
        }
        cand_dist[u] != cand_dist[v] + u64::from(c.old)
            && cand_dist[u] != cand_dist[v] + u64::from(c.new)
    })
}

/// Candidate load of one link under the delta-state model: merge the
/// stored contributor row (skipping changed destinations' stale shares)
/// with the changed destinations' fresh `(_, dest, share)` adds for this
/// link, folding in destination-index order — the exact float-add
/// sequence a from-scratch accumulation over destinations performs for
/// this link. `fresh` must be destination-ascending and disjoint from
/// the unchanged row entries (fresh destinations are changed by
/// definition).
pub fn refold_link(
    row: &[(u32, f64)],
    fresh: &[(u32, u32, f64)],
    is_changed: impl Fn(u32) -> bool,
) -> f64 {
    let mut acc = 0.0f64;
    let mut i = 0usize;
    let mut j = 0usize;
    loop {
        while i < row.len() && is_changed(row[i].0) {
            i += 1;
        }
        match (i < row.len(), j < fresh.len()) {
            (false, false) => break,
            (true, false) => {
                acc += row[i].1;
                i += 1;
            }
            (false, true) => {
                acc += fresh[j].2;
                j += 1;
            }
            (true, true) => {
                if row[i].0 < fresh[j].1 {
                    acc += row[i].1;
                    i += 1;
                } else {
                    acc += fresh[j].2;
                    j += 1;
                }
            }
        }
    }
    acc
}

/// The effective `(link, share)` contribution sequence of destination
/// `di` under the cached incumbent: the entry's recomputed routing where
/// the mask affected it, the incumbent baseline elsewhere, nothing for
/// the excluded node. `list` is the entry's (ascending) affected list.
fn effective_adds<'a>(
    list: &'a [(u32, DestRouting)],
    base: &'a [DestRouting],
    dests: &[u32],
    excluded: Option<usize>,
    di: usize,
) -> &'a [(u32, f64)] {
    if Some(dests[di] as usize) == excluded {
        return &[];
    }
    match list.binary_search_by_key(&(di as u32), |e| e.0) {
        Ok(k) => list[k].1.load_adds(),
        Err(_) => base[di].load_adds(),
    }
}

/// Persistent per-scenario state of the cached incumbent: the recomputed
/// routings of exactly the mask-affected destinations, plus the folded
/// residents a candidate evaluation diffs against (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct ScenarioEntry {
    /// `(slot into the delay class's demand-destination list, routing)` —
    /// exactly the mask-affected destinations, ascending.
    delay: Vec<(u32, DestRouting)>,
    /// Same for the throughput class.
    tput: Vec<(u32, DestRouting)>,
    /// Resident per-class per-link loads of the incumbent (`[delay,
    /// tput]`).
    loads: [Vec<f64>; 2],
    /// Per-class per-link contributor lists, destination-ordered.
    contrib: [LinkContrib; 2],
    /// Resident per-link delays of the incumbent's total loads.
    link_delays: Vec<f64>,
    /// Resident SLA `(s, t, ξ)` triples of the incumbent, in reference
    /// emission order (delay destinations ascending, senders ascending).
    pairs: Vec<(usize, usize, f64)>,
    /// `pair_off[di]..pair_off[di+1]` indexes `pairs` for delay
    /// destination `di` (length = delay destinations + 1).
    pair_off: Vec<u32>,
    /// `true` when the SLA segments (`link_delays`, `pairs`, `pair_off`)
    /// are resident. Partially resident entries (see
    /// [`ScenarioCache::plan_residency`]) keep only the routing/load
    /// prefix; candidate evaluations recompute their delays and pair DP
    /// from scratch — bit-identically, just slower.
    sla_resident: bool,
}

impl ScenarioEntry {
    /// Bytes of resident delta-state this captured entry holds, computed
    /// from element counts (not vector capacities), so the figure is
    /// identical on every process and thread — the residency planner
    /// divides the cache budget by it.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let routing_bytes = |list: &[(u32, DestRouting)]| {
            list.iter()
                .map(|(_, r)| size_of::<(u32, DestRouting)>() + r.resident_bytes())
                .sum::<usize>()
        };
        routing_bytes(&self.delay)
            + routing_bytes(&self.tput)
            + self.loads.iter().map(|l| l.len()).sum::<usize>() * size_of::<f64>()
            + self
                .contrib
                .iter()
                .map(LinkContrib::resident_bytes)
                .sum::<usize>()
            + self.link_delays.len() * size_of::<f64>()
            + self.pairs.len() * size_of::<(usize, usize, f64)>()
            + self.pair_off.len() * size_of::<u32>()
    }

    /// Bytes this entry would hold after [`demote`](Self::demote): the
    /// cheap routing/load prefix without the SLA segments. Measured on
    /// the (fully captured) calibration entry, this prices the
    /// partial-residency tier of [`ScenarioCache::plan_residency`].
    pub fn partial_bytes(&self) -> usize {
        use std::mem::size_of;
        self.resident_bytes()
            - self.link_delays.len() * size_of::<f64>()
            - self.pairs.len() * size_of::<(usize, usize, f64)>()
            - self.pair_off.len() * size_of::<u32>()
    }

    /// Drop the SLA segments (link delays, pair triples, segment
    /// offsets), turning a fully captured entry into a partially
    /// resident one. The freed state is recomputed on demand by
    /// [`Evaluator::cost_cached`] with bit-identical results, so
    /// demotion never changes any evaluation — only its speed.
    pub fn demote(&mut self) {
        self.sla_resident = false;
        self.link_delays = Vec::new();
        self.pairs = Vec::new();
        self.pair_off = Vec::new();
    }
}

/// Delta-state scenario cache: the persistent per-scenario evaluation
/// state of an *incumbent* weight setting, enabling candidate sweeps
/// that pay only for their diff (see the module docs and
/// [`Evaluator::cost_cached`]).
///
/// Build it with [`Evaluator::cache_rebuild_begin`] +
/// [`Evaluator::cost_capture`] sweeps over the incumbent, point
/// candidates at it with [`Evaluator::cache_begin`] (which computes the
/// per-class weight diff), evaluate through
/// [`Evaluator::cost_cached`], and re-point it at an accepted candidate
/// with [`Evaluator::cache_refresh`] — which maintains the affected-set
/// coverage *exactly*, so no periodic full rebuild is needed for
/// correctness or freshness.
///
/// ## Residency budget
///
/// Per-scenario entries hold per-link load vectors and SLA pair triples,
/// so at large node counts the cache's footprint grows roughly as
/// `scenarios × links` (quadratic-ish in network size for single-link
/// failure universes). A cache built with
/// [`with_budget`](Self::with_budget) therefore keeps only a *resident
/// prefix* of its positions: after the first capture,
/// [`plan_residency`](Self::plan_residency) divides the byte budget by
/// the measured entry size, and positions past the resident count are
/// never captured — callers evaluate them through the plain
/// (repair-seeded) `cost_scenario` path instead, which is bit-for-bit
/// identical (determinism invariant 2), just slower. The eviction order
/// is deterministic by construction: always the positions `resident..`,
/// i.e. the tail of the caller's fixed position order, independent of
/// thread count and wall clock.
#[derive(Debug)]
pub struct ScenarioCache {
    /// Per-class weights of the cached incumbent (`[delay, tput]`).
    weights: [Vec<u32>; 2],
    /// The incumbent's no-failure baseline routing per class, aligned
    /// with the evaluator's demand-destination lists.
    base: [Vec<DestRouting>; 2],
    /// Per-position scenario entries (positions are caller-defined and
    /// must match the `pos` arguments of capture/evaluate calls).
    entries: Vec<ScenarioEntry>,
    /// Per-class weight diff of the current candidate vs `weights`,
    /// refreshed by [`Evaluator::cache_begin`].
    diff: [Vec<WeightChange>; 2],
    /// Globally unique stamp of the current (incumbent, candidate diff)
    /// pair, advanced by every rebuild / begin / refresh. Workspaces use
    /// it to compute their per-candidate exact baseline diff flags once
    /// and reuse them across the candidate's whole scenario sweep.
    generation: u64,
    /// Residency budget in bytes (`usize::MAX` = unbounded).
    budget: usize,
    /// Positions `0..resident` are fully captured and delta-evaluated;
    /// positions `resident..resident + partial` keep the partial tier
    /// (see [`ScenarioEntry::demote`]); the rest fall back to the plain
    /// path (see the type docs).
    resident: usize,
    /// Number of partially resident positions after the full prefix.
    partial: usize,
    /// Per-class "the incumbent baseline really moved under the pending
    /// refresh diff" flags, filled by
    /// [`Evaluator::cache_refresh_begin`] and read (shared, read-only)
    /// by the per-entry refresh kernels.
    refresh_changed: [Vec<bool>; 2],
}

impl Default for ScenarioCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioCache {
    /// Fresh, empty, unbounded cache: every position is resident.
    pub fn new() -> Self {
        ScenarioCache {
            weights: Default::default(),
            base: Default::default(),
            entries: Vec::new(),
            diff: Default::default(),
            generation: 0,
            budget: usize::MAX,
            resident: 0,
            partial: 0,
            refresh_changed: Default::default(),
        }
    }

    /// Fresh cache bounded to `bytes` of per-scenario resident state.
    /// The resident count is planned at the first capture of every
    /// rebuild (see [`plan_residency`](Self::plan_residency)).
    pub fn with_budget(bytes: usize) -> Self {
        ScenarioCache {
            budget: bytes,
            ..Self::new()
        }
    }

    /// The configured residency budget in bytes (`usize::MAX` =
    /// unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// How many positions are currently resident (captured and
    /// delta-evaluated, fully or partially); the
    /// `cache_resident_scenarios` stat.
    pub fn resident_scenarios(&self) -> usize {
        self.resident + self.partial
    }

    /// How many positions hold the *full* delta-state (SLA segments
    /// included); positions `full..resident_scenarios()` are the
    /// partial tier.
    pub fn full_resident_scenarios(&self) -> usize {
        self.resident
    }

    /// `true` when position `pos` is resident (fully or partially) —
    /// callers route non-resident positions through the plain
    /// evaluation path, which returns the same bits.
    #[inline]
    pub fn is_resident(&self, pos: usize) -> bool {
        pos < self.resident + self.partial
    }

    /// Plan the resident prefix for a rebuild over `positions` slots:
    /// divide the budget by the measured size of the already-captured
    /// entry 0, then spend the remainder on a *partially* resident band
    /// (routings + loads, SLA segments dropped — see
    /// [`ScenarioEntry::demote`]) priced at
    /// [`partial_bytes`](ScenarioEntry::partial_bytes). Deterministic
    /// because entry sizes are a pure function of (incumbent weights,
    /// scenario) element counts — never of vector capacities, thread
    /// count or timing. Call after capturing position 0; positions in
    /// `full_resident_scenarios()..resident_scenarios()` must then be
    /// captured and demoted, and positions `>= resident_scenarios()`
    /// left uncaptured. With a budget smaller than even one partial
    /// entry, both counts are 0 and the cache degrades to the plain
    /// path entirely.
    pub fn plan_residency(&mut self, positions: usize) {
        self.partial = 0;
        if self.budget == usize::MAX {
            self.resident = positions;
            return;
        }
        let per_full = self
            .entries
            .first()
            .map_or(0, ScenarioEntry::resident_bytes);
        let per_partial = self.entries.first().map_or(0, ScenarioEntry::partial_bytes);
        self.resident = match self.budget.checked_div(per_full) {
            Some(fit) => fit.min(positions),
            // Zero-sized entry (nothing captured): keep everything.
            None => positions,
        };
        if self.resident < positions {
            let leftover = self.budget - self.resident * per_full;
            self.partial = match leftover.checked_div(per_partial) {
                Some(fit) => fit.min(positions - self.resident),
                None => positions - self.resident,
            };
        }
        if self.resident == 0 && self.partial > 0 {
            // The calibration entry was captured fully but planned into
            // the partial band: strip its SLA segments now.
            self.entries[0].demote();
        }
    }

    /// Split the cache into its shared incumbent baseline and the
    /// per-position entries, for sharded capture sweeps (entries are
    /// position-disjoint, so each worker takes a contiguous chunk; see
    /// [`Evaluator::cost_capture_into`]).
    pub fn capture_split(&mut self) -> (&[Vec<DestRouting>; 2], &mut [ScenarioEntry]) {
        (&self.base, &mut self.entries)
    }

    /// Split the cache into the shared read-only refresh context and
    /// the per-position entries, for sharded refresh sweeps between
    /// [`Evaluator::cache_refresh_begin`] and
    /// [`Evaluator::cache_refresh_finish`]. Entries are
    /// position-disjoint, so each worker takes a contiguous chunk; see
    /// [`Evaluator::cache_refresh_entry`] and the parallel-search
    /// contract in `DETERMINISM.md`.
    pub fn refresh_split(&mut self) -> (RefreshCtx<'_>, &mut [ScenarioEntry]) {
        (
            RefreshCtx {
                base: &self.base,
                diff: &self.diff,
                changed: &self.refresh_changed,
            },
            &mut self.entries,
        )
    }
}

/// Shared read-only inputs of a sharded refresh sweep: the (already
/// updated) incumbent baseline, the pending weight diff, and the exact
/// per-destination "baseline really moved" flags — everything a
/// [`Evaluator::cache_refresh_entry`] call reads besides its own entry.
/// Obtained from [`ScenarioCache::refresh_split`].
#[derive(Clone, Copy, Debug)]
pub struct RefreshCtx<'a> {
    base: &'a [Vec<DestRouting>; 2],
    diff: &'a [Vec<WeightChange>; 2],
    changed: &'a [Vec<bool>; 2],
}

/// Outcome of an incumbent-bounded batch evaluation
/// ([`Evaluator::evaluate_all_bounded`]).
#[derive(Clone, Debug, PartialEq)]
pub enum BoundedCosts {
    /// Every scenario was evaluated; per-scenario costs in input order,
    /// bit-for-bit those of [`Evaluator::evaluate_all`].
    Complete(Vec<LexCost>),
    /// The input-order partial sum proved the total cannot beat the
    /// incumbent; the sweep was abandoned after `evaluated` scenarios.
    Cut {
        /// Scenarios evaluated before the proof fired.
        evaluated: usize,
    },
}

/// Routing-independent per-scenario lower bound of [`LexCost`]: the
/// propagation-delay Λ floor ([`Evaluator::lambda_floor`]) paired with
/// the load-aware congestion Φ floor ([`Evaluator::phi_floor`]). Both
/// components bound their cost component from below for **every** weight
/// setting under the scenario mask, so incumbent-bounded sweeps can use
/// them as stand-ins for scenarios not yet evaluated (see the soundness
/// lemma on [`Evaluator::phi_floor`]). Floors depend only on the
/// topology, traffic, mask and cost parameters — never on weights — so
/// one computation per search is valid for its whole lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScenarioFloor {
    /// Lower bound on the scenario's `Λ` component.
    pub lambda: f64,
    /// Lower bound on the scenario's `Φ` component.
    pub phi: f64,
}

/// The cached no-failure routing of one traffic class under the
/// workspace's current weight setting.
#[derive(Debug, Default)]
struct ClassBaseline {
    /// Weights this baseline was computed with (diffed on every reuse).
    weights: Vec<u32>,
    /// One replayable record per demand destination, aligned with the
    /// evaluator's per-class demand-destination list.
    state: Vec<DestRouting>,
    valid: bool,
}

/// Per-thread scratch for the incremental engine. Acquire one from
/// [`Evaluator::acquire_workspace`] (or implicitly via
/// [`Evaluator::cost`] / [`Evaluator::evaluate_all`]) and reuse it: all
/// buffers reach steady-state capacity after the first evaluation.
#[derive(Debug, Default)]
pub struct EvalWorkspace {
    /// [`Evaluator::engine_id`] of the evaluator whose baseline this
    /// workspace holds; 0 = none yet. Two evaluators can share a link
    /// count while disagreeing on traffic or parameters, so baseline
    /// reuse is gated on identity, not on buffer sizes.
    owner: u64,
    spf: SpfWorkspace,
    mask: LinkMask,
    /// All-links-up mask for candidate-baseline routing inside the
    /// delta-state path (kept pristine; `mask` holds the scenario).
    up_mask: LinkMask,
    /// Directed link ids down under the current scenario.
    down: Vec<u32>,
    /// Weight diffs of the current `ensure_baseline` call.
    diff: Vec<WeightChange>,
    base: [ClassBaseline; 2],
    /// Recomputed per-destination routings of the current scenario
    /// (delay class only — their distance fields feed the delay DP).
    scratch: Vec<DestRouting>,
    /// Per-class destination index → resolution code: slot in
    /// `scratch`, [`NOT_RECOMPUTED`], [`WS_BASE`], or
    /// [`CACHED_BIT`]`| entry slot`.
    scratch_map: [Vec<u32>; 2],
    /// Throughput-class recompute scratch (result replayed immediately).
    tput_scratch: DestRouting,
    class_loads: [Vec<f64>; 2],
    total_loads: Vec<f64>,
    link_delays: Vec<f64>,
    node_delay: Vec<f64>,
    pair_delays: Vec<(usize, usize, f64)>,
    /// Delta-state epoch: stamps below are valid iff equal to this.
    epoch: u32,
    /// Per-class per-destination "changed under the candidate diff"
    /// stamps.
    changed: [Vec<u32>; 2],
    /// Per-link dirty stamps.
    link_mark: Vec<u32>,
    /// Links whose contributor set changed (union over classes).
    dirty: Vec<u32>,
    /// Dirty links whose per-link delay actually changed (bitwise).
    pair_dirty: Vec<u32>,
    /// Fresh `(link, dest, share)` adds of changed destinations, per
    /// class, sorted by `(link, dest)` before refolding.
    new_adds: [Vec<(u32, u32, f64)>; 2],
    /// Refresh scratch: rebuilt pair-segment offsets of one scenario.
    off_scratch: Vec<u32>,
    /// Refresh scratch: re-route target of the entry kernel (swapped
    /// with surviving routings, so its buffers recycle).
    refresh_tmp: DestRouting,
    /// Refresh scratch: the previous affected list of the entry being
    /// refreshed (drained back into the entry; capacity converges).
    refresh_list: Vec<(u32, DestRouting)>,
    /// Refresh scratch: recycled routing buffers of destinations that
    /// left an affected list. Contents are never read — re-routes fully
    /// overwrite them — so pooling cannot change any bit.
    routing_pool: Vec<DestRouting>,
    /// [`ScenarioCache`] generation the `base_same` flags were computed
    /// against (0 = never).
    cand_gen: u64,
    /// Per-class per-destination exact baseline diff of the current
    /// candidate vs the cache incumbent ([`baseline_unchanged`]),
    /// computed once per candidate and shared by its scenario sweep.
    base_same: [Vec<bool>; 2],
    /// Φ-floor scratch: per-node min hop counts of one destination.
    floor_hops: Vec<u64>,
    /// Φ-floor scratch: hop-Dijkstra heap.
    floor_heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    /// Φ-floor scratch: per-node surviving throughput demand sourced.
    floor_tput_out: Vec<f64>,
    /// Φ-floor scratch: per-node surviving throughput demand sunk.
    floor_tput_in: Vec<f64>,
    /// Φ-floor scratch: per-node surviving out-cut capacity.
    floor_cap_out: Vec<f64>,
    /// Φ-floor scratch: per-node surviving in-cut capacity.
    floor_cap_in: Vec<f64>,
}

impl EvalWorkspace {
    /// Fresh workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop any cached baseline (forces the next evaluation to rebuild
    /// it from scratch). Only needed by tests and diagnostics.
    pub fn invalidate(&mut self) {
        self.base[0].valid = false;
        self.base[1].valid = false;
    }

    /// Bind the workspace to an evaluator identity, (re)sizing the masks
    /// and dropping stale baselines when it changes hands.
    fn bind(&mut self, owner: u64, num_links: usize) {
        if self.owner != owner {
            self.owner = owner;
            self.mask = LinkMask::all_up(num_links);
            self.up_mask = LinkMask::all_up(num_links);
            self.invalidate();
        } else if self.up_mask.len() != num_links {
            self.up_mask = LinkMask::all_up(num_links);
        }
    }

    /// Advance the delta-state epoch, clearing stamps on wrap-around.
    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.changed[0].clear();
            self.changed[1].clear();
            self.link_mark.clear();
            self.epoch = 1;
        }
        self.epoch
    }
}

/// A shared pool of per-thread workspaces owned by an evaluator (the
/// [`Evaluator`] pools [`EvalWorkspace`]s; the MTR evaluator reuses the
/// same type for its own workspace). Lock contention is negligible: one
/// lock per *batch* of evaluations (or per single evaluation on the
/// compatibility path), against milliseconds of routing work.
#[derive(Debug)]
pub struct WorkspacePool<T = EvalWorkspace> {
    pool: Mutex<Vec<T>>,
}

impl<T> Default for WorkspacePool<T> {
    fn default() -> Self {
        WorkspacePool {
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl<T: Default> WorkspacePool<T> {
    /// Pop a pooled workspace, or create a fresh one if the pool is dry.
    pub fn acquire(&self) -> T {
        self.pool
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a workspace so its warmed-up buffers get reused.
    pub fn release(&self, ws: T) {
        self.pool.lock().expect("workspace pool poisoned").push(ws);
    }
}

impl<'a> Evaluator<'a> {
    /// Check a workspace out of the evaluator's pool (creating one if
    /// the pool is dry). Return it with
    /// [`release_workspace`](Self::release_workspace) so its warmed-up
    /// buffers and cached baseline benefit later evaluations.
    pub fn acquire_workspace(&self) -> EvalWorkspace {
        self.pool.acquire()
    }

    /// Return a workspace to the pool.
    pub fn release_workspace(&self, ws: EvalWorkspace) {
        self.pool.release(ws);
    }

    /// Scenario-batched evaluation: the costs of `w` under every
    /// scenario, in input order — bit-for-bit what per-scenario
    /// [`Evaluator::evaluate`] would report, computed incrementally (one
    /// no-failure baseline, per-scenario recomputation only of the
    /// destinations each failure actually touches).
    pub fn evaluate_all(&self, w: &WeightSetting, scenarios: &[Scenario]) -> Vec<LexCost> {
        let mut ws = self.acquire_workspace();
        let out = scenarios
            .iter()
            .map(|&sc| self.cost_with(&mut ws, w, sc))
            .collect();
        self.release_workspace(ws);
        out
    }

    /// Incumbent-bounded batch evaluation: like
    /// [`evaluate_all`](Self::evaluate_all), but abandons the sweep as
    /// soon as the running input-order partial sum proves the batch's
    /// total cannot be lexicographically better than `incumbent`.
    ///
    /// Per-scenario costs are non-negative and IEEE addition of
    /// non-negative terms is monotone, so every prefix sum is a true
    /// lower bound of the completed sum; `better_than` is antitone in
    /// its left argument (see the lemma on [`LexCost::better_than`]), so
    /// `!prefix.better_than(incumbent)` proves that **no completion** of
    /// the sweep can beat the incumbent. Hill climbers that accept a
    /// candidate only when its compound cost beats the incumbent can
    /// therefore cut losing sweeps early without perturbing the search
    /// trajectory: a [`BoundedCosts::Complete`] result is bit-for-bit
    /// what `evaluate_all` returns, and a [`BoundedCosts::Cut`] result
    /// only ever replaces a sweep whose candidate would have been
    /// rejected anyway.
    ///
    /// `floors`, when given (one [`ScenarioFloor`] per scenario, e.g.
    /// from [`scenario_floor`](Self::scenario_floor)), tightens the
    /// rejection proof: the partial sum is extended by the summed floors
    /// of the scenarios not yet evaluated, which is still a lower bound
    /// of the completed sum (each floor bounds its scenario's cost from
    /// below componentwise, and the componentwise antitone lemma on
    /// [`LexCost::better_than`] carries the proof through the
    /// lexicographic comparison). Floors never change *whether* a sweep
    /// completes with a winning total — only how early a losing sweep is
    /// recognized.
    pub fn evaluate_all_bounded(
        &self,
        w: &WeightSetting,
        scenarios: &[Scenario],
        incumbent: &LexCost,
        floors: Option<&[ScenarioFloor]>,
    ) -> BoundedCosts {
        if let Some(fl) = floors {
            assert_eq!(fl.len(), scenarios.len(), "one floor per scenario");
        }
        // Suffix-summed floors: `suffix[i]` bounds the total cost of
        // scenarios `i..` from below for any weight setting.
        let mut suffix = vec![LexCost::ZERO; scenarios.len() + 1];
        if let Some(fl) = floors {
            for i in (0..scenarios.len()).rev() {
                suffix[i] = suffix[i + 1].add(&LexCost::new(fl[i].lambda, fl[i].phi));
            }
        }
        let mut ws = self.acquire_workspace();
        let mut costs = Vec::with_capacity(scenarios.len());
        let mut prefix = LexCost::ZERO;
        for &sc in scenarios {
            let c = self.cost_with(&mut ws, w, sc);
            prefix = prefix.add(&c);
            costs.push(c);
            if costs.len() < scenarios.len()
                && !prefix.add(&suffix[costs.len()]).better_than(incumbent)
            {
                self.release_workspace(ws);
                return BoundedCosts::Cut {
                    evaluated: costs.len(),
                };
            }
        }
        self.release_workspace(ws);
        BoundedCosts::Complete(costs)
    }

    /// Load- and routing-independent lower bound of the delay-class cost
    /// `Λ` under `scenario`: for every delay pair, any routing's
    /// end-to-end delay is at least the propagation-delay-shortest path
    /// under the scenario mask (Eq. 1 gives `D_l ≥ p_l`, queueing only
    /// adds), the SLA penalty (Eq. 2) is monotone in the pair delay, and
    /// pairs the mask disconnects pay the same disconnection penalty
    /// under every routing. Summing those per-pair floors therefore
    /// bounds `Λ` from below for **every** weight setting.
    ///
    /// Incumbent-bounded sweeps use these floors as stand-ins for
    /// scenarios not yet evaluated, which tightens the rejection proof
    /// from "the remaining scenarios cost at least nothing" to "at least
    /// their physical minimum" — on SLA-stressed workloads that is most
    /// of the incumbent's cost, so losing candidates are cut after a
    /// handful of scenarios instead of nearly all of them.
    ///
    /// The returned value is shaved by a relative `1e-9` guard so that
    /// floating-point evaluation-order effects (the floor and the real
    /// evaluation accumulate in different expression orders) can never
    /// lift the floor above an achievable `Λ`; the guard is orders of
    /// magnitude above the worst-case rounding slop and orders of
    /// magnitude below [`crate::LAMBDA_EPS`]'s resolution of genuine
    /// cost differences.
    pub fn lambda_floor(&self, scenario: Scenario) -> f64 {
        let mask = scenario.mask(self.net);
        let excluded = scenario.excluded_node().map(|v| v.index());
        let mut lambda = 0.0f64;
        for &t in &self.demand_dests[0] {
            let t = t as usize;
            if Some(t) == excluded {
                continue;
            }
            let dmin = dtr_routing::spf::min_cost_to(
                self.net,
                dtr_net::NodeId::new(t),
                &self.prop_delays,
                &mask,
            );
            for (s, &d) in dmin.iter().enumerate() {
                if s == t || Some(s) == excluded || self.traffic.delay.demand(s, t) <= 0.0 {
                    continue;
                }
                lambda += sla::pair_penalty(d, &self.params);
            }
        }
        lambda * (1.0 - 1e-9)
    }

    /// Load-aware, routing-independent lower bound of the congestion
    /// cost `Φ` under `scenario` — the congestion counterpart of
    /// [`lambda_floor`](Self::lambda_floor), computed entirely from
    /// workspace scratch (allocation-free after warm-up; registered in
    /// `crates/analysis/hot_paths.toml`).
    ///
    /// # Soundness
    ///
    /// `Φ` (see [`congestion::phi`]) sums `c_l · g(x_l / c_l)` over the
    /// links whose **throughput** load is positive, where `x_l` is the
    /// *total* load and `g` is the convex, non-decreasing Fortz–Thorup
    /// utilization cost with `g(0) = 0`. Three facts make cut-style
    /// floors sound for every weight setting:
    ///
    /// 1. **Jensen exactness over a cut.** Spreading a mandatory volume
    ///    `D` over links of total capacity `C` costs at least
    ///    `C · g(D / C)` = [`congestion::link_cost`]`(D, C)` — the convex
    ///    sum `Σ c_i g(x_i / c_i)` with `Σ x_i = D` is minimized by
    ///    loading every link to the same utilization `D / C`.
    /// 2. **Monotone in the volume, antitone in the capacity.** Counting
    ///    only part of the demand, or crediting the cut with *more*
    ///    capacity than survives, only lowers the bound — so restricting
    ///    to surviving (up-mask) links and throughput demand whose
    ///    destination is reachable is conservative.
    /// 3. **Every unit of throughput demand really crosses the cut, on
    ///    links Φ counts.** A routed unit from `s` to `t` crosses the
    ///    surviving out-cut of `s` at least once, the surviving in-cut
    ///    of `t` at least once, and traverses at least `minhop(s, t)`
    ///    links in total; each link it touches carries positive
    ///    throughput load, so Φ's per-link term applies — with
    ///    `x_l ≥` its throughput load (total load only adds).
    ///
    /// The three resulting bounds — per-source out-cuts, per-destination
    /// in-cuts, and the global min-hop volume over the whole surviving
    /// capacity — each bound the same Φ, but share links with one
    /// another, so they combine by **max**, not by sum. (The out-cuts are
    /// pairwise link-disjoint across sources, hence their *sum* is one
    /// bound; likewise the in-cuts.)
    ///
    /// Demand the mask disconnects is dropped from the bound (the
    /// reference evaluation routes none of it), and the excluded node of
    /// a node scenario sources and sinks nothing. Like `lambda_floor`,
    /// the result is shaved by a relative `1e-9` so cross-expression
    /// rounding can never lift the floor above an achievable Φ.
    pub fn phi_floor(&self, ws: &mut EvalWorkspace, scenario: Scenario) -> f64 {
        ws.bind(self.engine_id, self.net.num_links());
        let n = self.net.num_nodes();
        let EvalWorkspace {
            mask,
            floor_hops,
            floor_heap,
            floor_tput_out,
            floor_tput_in,
            floor_cap_out,
            floor_cap_in,
            ..
        } = ws;
        scenario.mask_into(self.net, mask);
        let excluded = scenario.excluded_node().map(|v| v.index());

        // Surviving cut capacities: per-node out/in and network-wide.
        floor_cap_out.clear();
        floor_cap_out.resize(n, 0.0);
        floor_cap_in.clear();
        floor_cap_in.resize(n, 0.0);
        let mut cap_net = 0.0f64;
        for l in 0..self.net.num_links() {
            if mask.is_down(l) {
                continue;
            }
            let link = self.net.link(LinkId::new(l));
            let c = self.capacities[l];
            floor_cap_out[link.src.index()] += c;
            floor_cap_in[link.dst.index()] += c;
            cap_net += c;
        }

        // Surviving throughput demand per source / destination, and the
        // min-hop volume (each unit occupies at least `hops` links).
        floor_tput_out.clear();
        floor_tput_out.resize(n, 0.0);
        floor_tput_in.clear();
        floor_tput_in.resize(n, 0.0);
        let mut volume = 0.0f64;
        let tm = &self.traffic.throughput;
        for &t in &self.demand_dests[1] {
            let t = t as usize;
            if Some(t) == excluded {
                continue;
            }
            dtr_routing::spf::hops_to_into(
                self.net,
                dtr_net::NodeId::new(t),
                mask,
                floor_hops,
                floor_heap,
            );
            for s in 0..n {
                if s == t || Some(s) == excluded || floor_hops[s] == dtr_routing::UNREACHABLE {
                    continue;
                }
                let d = tm.demand(s, t);
                if d <= 0.0 {
                    continue;
                }
                floor_tput_out[s] += d;
                floor_tput_in[t] += d;
                volume += d * floor_hops[s] as f64;
            }
        }

        // Reachable demand leaving (entering) a node implies a surviving
        // out (in) link, so the cut capacities below are positive where
        // read — satisfying `link_cost`'s `c > 0` contract.
        let mut out_cut = 0.0f64;
        let mut in_cut = 0.0f64;
        for v in 0..n {
            if floor_tput_out[v] > 0.0 {
                out_cut += congestion::link_cost(floor_tput_out[v], floor_cap_out[v]);
            }
            if floor_tput_in[v] > 0.0 {
                in_cut += congestion::link_cost(floor_tput_in[v], floor_cap_in[v]);
            }
        }
        let volume_bound = if volume > 0.0 {
            congestion::link_cost(volume, cap_net)
        } else {
            0.0
        };
        out_cut.max(in_cut).max(volume_bound) * (1.0 - 1e-9)
    }

    /// Both components of the routing-independent per-scenario lower
    /// bound ([`lambda_floor`](Self::lambda_floor) +
    /// [`phi_floor`](Self::phi_floor)) as a [`ScenarioFloor`].
    pub fn scenario_floor(&self, ws: &mut EvalWorkspace, scenario: Scenario) -> ScenarioFloor {
        ScenarioFloor {
            lambda: self.lambda_floor(scenario),
            phi: self.phi_floor(ws, scenario),
        }
    }

    /// Scalar cost of one (weight setting, scenario) pair through the
    /// incremental engine, using the caller's workspace. Equals
    /// `self.evaluate(w, scenario).cost` bit-for-bit.
    pub fn cost_with(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
    ) -> LexCost {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        self.ensure_baseline(ws, w);
        self.cost_scenario(ws, w, scenario, None)
    }

    /// Make `ws`'s per-class baselines describe the no-failure routing of
    /// `w`, re-routing only destinations whose distance field the weight
    /// diff can actually touch.
    fn ensure_baseline(&self, ws: &mut EvalWorkspace, w: &WeightSetting) {
        ws.bind(self.engine_id, self.net.num_links());
        ws.mask.reset_all_up();
        let EvalWorkspace {
            spf,
            mask,
            diff,
            base,
            ..
        } = ws;
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let b = &mut base[ci];
            if b.valid && b.weights.len() == weights.len() {
                diff.clear();
                diff.extend(
                    b.weights
                        .iter()
                        .zip(weights)
                        .enumerate()
                        .filter(|(_, (o, n))| o != n)
                        .map(|(l, (&o, &n))| WeightChange {
                            link: LinkId::new(l),
                            old: o,
                            new: n,
                        }),
                );
                if diff.is_empty() {
                    continue;
                }
                for (di, &t) in dests.iter().enumerate() {
                    if weight_change_affects(self.net, &b.state[di].dist, diff) {
                        route_destination(
                            self.net,
                            weights,
                            tm,
                            mask,
                            t as usize,
                            spf,
                            &mut b.state[di],
                        );
                    }
                }
                b.weights.copy_from_slice(weights);
            } else {
                b.state.resize_with(dests.len(), DestRouting::default);
                for (di, &t) in dests.iter().enumerate() {
                    route_destination(
                        self.net,
                        weights,
                        tm,
                        mask,
                        t as usize,
                        spf,
                        &mut b.state[di],
                    );
                }
                b.weights.clear();
                b.weights.extend_from_slice(weights);
                b.valid = true;
            }
        }
    }

    /// Reset the cache to describe incumbent `w` with `positions`
    /// scenario slots (keeping allocations) and capture the incumbent's
    /// no-failure baseline routing per class. Every entry must then be
    /// (re-)captured with [`cost_capture`](Self::cost_capture) /
    /// [`cost_capture_into`](Self::cost_capture_into) before candidates
    /// evaluate through [`cost_cached`](Self::cost_cached).
    pub fn cache_rebuild_begin(
        &self,
        ws: &mut EvalWorkspace,
        cache: &mut ScenarioCache,
        w: &WeightSetting,
        positions: usize,
    ) {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        // Route (or diff-update) the workspace baseline, then copy it
        // into the cache: both are the same `route_destination` bits.
        self.ensure_baseline(ws, w);
        for (ci, class) in Class::ALL.iter().enumerate() {
            cache.weights[ci].clear();
            cache.weights[ci].extend_from_slice(w.weights(*class));
            let dests = &self.demand_dests[ci];
            cache.base[ci].resize_with(dests.len(), DestRouting::default);
            for (di, slot) in cache.base[ci].iter_mut().enumerate() {
                slot.clone_from(&ws.base[ci].state[di]);
            }
        }
        cache.entries.resize_with(positions, ScenarioEntry::default);
        for e in &mut cache.entries {
            e.delay.clear();
            e.tput.clear();
        }
        // Unbounded caches are fully resident up front; bounded ones
        // start at zero until `plan_residency` measures the first
        // captured entry.
        cache.resident = if cache.budget == usize::MAX {
            positions
        } else {
            0
        };
        cache.partial = 0;
        cache.generation = next_engine_id();
    }

    /// Compute the per-class weight diff of candidate `w` against the
    /// cache's incumbent, preparing [`cost_cached`](Self::cost_cached)
    /// calls. Returns the total number of changed directed (class, link)
    /// slots.
    pub fn cache_begin(&self, cache: &mut ScenarioCache, w: &WeightSetting) -> usize {
        let mut changed = 0;
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            assert_eq!(
                cache.weights[ci].len(),
                weights.len(),
                "cache incumbent and candidate disagree on link count"
            );
            cache.diff[ci].clear();
            cache.diff[ci].extend(
                cache.weights[ci]
                    .iter()
                    .zip(weights)
                    .enumerate()
                    .filter(|(_, (o, n))| o != n)
                    .map(|(l, (&o, &n))| WeightChange {
                        link: LinkId::new(l),
                        old: o,
                        new: n,
                    }),
            );
            changed += cache.diff[ci].len();
        }
        cache.generation = next_engine_id();
        changed
    }

    /// [`cost_with`](Self::cost_with) that also captures the scenario's
    /// full delta-state into `cache.entries[pos]` — the cache (re)build
    /// path, run over the incumbent setting. The returned cost is
    /// bit-for-bit the plain evaluation's.
    pub fn cost_capture(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        cache: &mut ScenarioCache,
        pos: usize,
    ) -> LexCost {
        debug_assert_eq!(
            cache.weights[0],
            w.weights(Class::Delay),
            "capture must run on the cache incumbent"
        );
        let (base, entries) = cache.capture_split();
        self.cost_capture_into(ws, w, scenario, base, &mut entries[pos])
    }

    /// Entry-level form of [`cost_capture`](Self::cost_capture):
    /// captures into one caller-held [`ScenarioEntry`] (cleared first),
    /// reading the shared incumbent baseline from
    /// [`ScenarioCache::capture_split`]. Entries are position-disjoint,
    /// so a cache rebuild can shard its capture sweep across workers,
    /// each holding a disjoint slice of the entries.
    pub fn cost_capture_into(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        base: &[Vec<DestRouting>; 2],
        entry: &mut ScenarioEntry,
    ) -> LexCost {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        entry.delay.clear();
        entry.tput.clear();
        entry.sla_resident = true;
        self.ensure_baseline(ws, w);
        let cost = self.cost_scenario(ws, w, scenario, Some(entry));
        let excluded = scenario.excluded_node().map(|v| v.index());

        // Resident state: the folded incumbent evaluation, verbatim.
        for ci in 0..2 {
            entry.loads[ci].clone_from(&ws.class_loads[ci]);
        }
        entry.link_delays.clone_from(&ws.link_delays);
        entry.pairs.clone_from(&ws.pair_delays);
        // Segment offsets: triples carry their destination, and the
        // emission loop walked delay destinations ascending.
        entry.pair_off.clear();
        entry.pair_off.push(0);
        let mut k = 0usize;
        for &t in &self.demand_dests[0] {
            while k < entry.pairs.len() && entry.pairs[k].1 == t as usize {
                k += 1;
            }
            entry.pair_off.push(k as u32);
        }
        debug_assert_eq!(k, entry.pairs.len(), "pair segments must cover all triples");
        // Contributor lists from the effective routing of every
        // destination: the entry's recomputed routing where the mask
        // affected it, the incumbent baseline elsewhere, nothing for the
        // excluded node.
        let ScenarioEntry {
            delay,
            tput,
            contrib,
            ..
        } = entry;
        for (ci, cb) in contrib.iter_mut().enumerate() {
            let list: &[(u32, DestRouting)] = if ci == 0 { delay } else { tput };
            let dests = &self.demand_dests[ci];
            cb.rebuild(self.net.num_links(), dests.len(), |di| {
                effective_adds(list, &base[ci], dests, excluded, di)
            });
        }
        cost
    }

    /// Delta-state candidate evaluation through the scenario cache:
    /// re-routes only destinations the candidate diff can touch, refolds
    /// only the links whose contributor set changed, and re-runs the SLA
    /// delay DP only where the routing or an on-DAG link delay changed —
    /// everything else is read back from the resident incumbent state.
    /// Requires a preceding [`cache_begin`](Self::cache_begin) for this
    /// exact `w`; the result is bit-for-bit
    /// [`cost_with`](Self::cost_with)'s (see the module docs for the
    /// exactness argument).
    pub fn cost_cached(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        cache: &ScenarioCache,
        pos: usize,
    ) -> LexCost {
        let num_links = self.net.num_links();
        assert_eq!(w.num_links(), num_links, "weight size mismatch");
        // The workspace baseline tracks the *candidate*: within one
        // candidate's sweep every scenario shares it, so move-touched
        // destinations pay their baseline re-route once per candidate,
        // not once per scenario.
        self.ensure_baseline(ws, w);
        // Exact per-destination baseline diff vs the cache incumbent,
        // computed once per (candidate, cache generation) and shared by
        // the whole scenario sweep: a destination is baseline-changed
        // only when its distance field or DAG actually moved — the
        // conservative predicate's false positives (the common case for
        // a one-duplex-link re-draw) would otherwise re-run per-scenario
        // delay DPs for bit-identical routings.
        if ws.cand_gen != cache.generation {
            ws.cand_gen = cache.generation;
            for ci in 0..2 {
                let dests = &self.demand_dests[ci];
                let basec = &cache.base[ci];
                assert_eq!(
                    basec.len(),
                    dests.len(),
                    "cache baseline missing; run cache_rebuild_begin first"
                );
                let diffc = &cache.diff[ci];
                let flags = &mut ws.base_same[ci];
                flags.clear();
                flags.resize(dests.len(), false);
                for (di, flag) in flags.iter_mut().enumerate() {
                    *flag = diffc.is_empty()
                        || baseline_unchanged(
                            self.net,
                            &ws.base[ci].state[di].dist,
                            &basec[di].dist,
                            diffc,
                        );
                }
            }
        }
        let epoch = ws.next_epoch();
        let entry = &cache.entries[pos];
        let full = entry.sla_resident;
        debug_assert_eq!(
            entry.loads[0].len(),
            num_links,
            "cost_cached requires a captured entry"
        );
        debug_assert!(
            !full || entry.link_delays.len() == num_links,
            "fully resident entries must hold their link delays"
        );
        let excluded = scenario.excluded_node().map(|v| v.index());
        let EvalWorkspace {
            spf,
            mask,
            down,
            base: ws_base,
            scratch,
            scratch_map,
            class_loads,
            total_loads,
            link_delays,
            node_delay,
            pair_delays,
            changed,
            link_mark,
            dirty,
            pair_dirty,
            new_adds,
            base_same,
            ..
        } = ws;
        scenario.mask_into(self.net, mask);
        down.clear();
        down.extend(mask.down_links().map(|i| i as u32));
        if link_mark.len() != num_links {
            link_mark.clear();
            link_mark.resize(num_links, 0);
        }
        dirty.clear();
        pair_dirty.clear();
        let mut scratch_used = 0usize;

        // Pass 1 per class: classify every destination against the
        // candidate diff, re-route the ones whose effective routing
        // really moved, and collect their old/new contribution links
        // (dirty set) and fresh shares. Fresh routings of both classes
        // persist in the scratch pool so pass 2 can replay them.
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let base = &cache.base[ci];
            let diffc = &cache.diff[ci];
            let list: &[(u32, DestRouting)] = if ci == 0 { &entry.delay } else { &entry.tput };
            let ch = &mut changed[ci];
            ch.resize(dests.len(), 0);
            new_adds[ci].clear();
            let map = &mut scratch_map[ci];
            map.clear();
            map.resize(dests.len(), NOT_RECOMPUTED);
            let mut cursor = 0usize;
            for (di, &t) in dests.iter().enumerate() {
                while cursor < list.len() && list[cursor].0 < di as u32 {
                    cursor += 1;
                }
                let hit = cursor < list.len() && list[cursor].0 == di as u32;
                if Some(t as usize) == excluded {
                    continue;
                }
                // Resolve this destination's candidate-effective routing,
                // without a fresh route where a cached one provably
                // survives the diff.
                let (old_r, fresh_code): (Option<&DestRouting>, u32) = if base_same[ci][di] {
                    if !hit {
                        // Baseline destination, baseline provably
                        // bit-identical to the incumbent's.
                        continue;
                    }
                    let hr = &list[cursor].1;
                    if diffc.is_empty() || !weight_change_affects(self.net, &hr.dist, diffc) {
                        // Mask-affected but the cached scenario routing
                        // survives the diff: resident state covers it.
                        map[di] = CACHED_BIT | cursor as u32;
                        continue;
                    }
                    // mask ∩ move: re-route under the scenario mask,
                    // keeping the result only if it really moved (the
                    // exact diff filters the predicate's false
                    // positives, saving the dirty-link pollution and
                    // the delay-DP recompute).
                    if scratch.len() == scratch_used {
                        scratch.push(DestRouting::default());
                    }
                    route_destination_repair(
                        self.net,
                        weights,
                        tm,
                        mask,
                        t as usize,
                        &ws_base[ci].state[di],
                        spf,
                        &mut scratch[scratch_used],
                    );
                    if baseline_unchanged(self.net, &scratch[scratch_used].dist, &hr.dist, diffc) {
                        map[di] = CACHED_BIT | cursor as u32;
                        continue;
                    }
                    (Some(hr), scratch_used as u32)
                } else {
                    // The diff really moved this destination's baseline.
                    // Its *scenario* routing may still survive: when it
                    // is mask-affected under both settings, the cached
                    // scenario routing is reusable whenever the diff
                    // provably cannot change it — the predicate's
                    // false-contract holds for any distance field.
                    let affected = !down.is_empty()
                        && dag_uses_any(self.net, &ws_base[ci].state[di].dist, weights, down);
                    if !affected {
                        // Effective routing is the candidate baseline —
                        // already maintained, no route needed.
                        let old: &DestRouting = if hit { &list[cursor].1 } else { &base[di] };
                        (Some(old), WS_BASE)
                    } else {
                        if hit {
                            let hr = &list[cursor].1;
                            if diffc.is_empty() || !weight_change_affects(self.net, &hr.dist, diffc)
                            {
                                map[di] = CACHED_BIT | cursor as u32;
                                continue;
                            }
                        }
                        if scratch.len() == scratch_used {
                            scratch.push(DestRouting::default());
                        }
                        route_destination_repair(
                            self.net,
                            weights,
                            tm,
                            mask,
                            t as usize,
                            &ws_base[ci].state[di],
                            spf,
                            &mut scratch[scratch_used],
                        );
                        if hit {
                            let hr = &list[cursor].1;
                            if baseline_unchanged(
                                self.net,
                                &scratch[scratch_used].dist,
                                &hr.dist,
                                diffc,
                            ) {
                                map[di] = CACHED_BIT | cursor as u32;
                                continue;
                            }
                        }
                        let old: &DestRouting = if hit { &list[cursor].1 } else { &base[di] };
                        (Some(old), scratch_used as u32)
                    }
                };
                // Genuine change: mark it, collect old and fresh adds.
                ch[di] = epoch;
                map[di] = fresh_code;
                if fresh_code != WS_BASE {
                    scratch_used += 1;
                }
                if let Some(old) = old_r {
                    for &(l, _) in old.load_adds() {
                        if link_mark[l as usize] != epoch {
                            link_mark[l as usize] = epoch;
                            dirty.push(l);
                        }
                    }
                }
                let fresh: &DestRouting = if fresh_code == WS_BASE {
                    &ws_base[ci].state[di]
                } else {
                    &scratch[fresh_code as usize]
                };
                for &(l, share) in fresh.load_adds() {
                    if link_mark[l as usize] != epoch {
                        link_mark[l as usize] = epoch;
                        dirty.push(l);
                    }
                    new_adds[ci].push((l, di as u32, share));
                }
            }
        }
        // Pass 2: per-class candidate loads. When few links are dirty,
        // read the residents and refold only the dirty links in
        // destination-index order over the stored contributions; when a
        // large move dirtied most of the network, a straight replay of
        // every destination's effective adds (the same destination-order
        // float sequence) is cheaper than per-link merges — both produce
        // the reference accumulation bit for bit.
        let use_refold = dirty.len() * 4 < num_links;
        for (ci, _class) in Class::ALL.iter().enumerate() {
            let loads = &mut class_loads[ci];
            if use_refold {
                loads.clear();
                loads.extend_from_slice(&entry.loads[ci]);
                new_adds[ci].sort_unstable_by_key(|&(l, d, _)| (l, d));
                let adds = &new_adds[ci];
                let ch = &changed[ci];
                for &l in dirty.iter() {
                    let lo = adds.partition_point(|&(al, _, _)| al < l);
                    let hi = lo + adds[lo..].partition_point(|&(al, _, _)| al == l);
                    loads[l as usize] =
                        refold_link(entry.contrib[ci].row(l as usize), &adds[lo..hi], |d| {
                            ch[d as usize] == epoch
                        });
                }
            } else {
                loads.clear();
                loads.resize(num_links, 0.0);
                let mut dropped = 0.0f64;
                let dests = &self.demand_dests[ci];
                let list: &[(u32, DestRouting)] = if ci == 0 { &entry.delay } else { &entry.tput };
                for (di, &t) in dests.iter().enumerate() {
                    if Some(t as usize) == excluded {
                        continue;
                    }
                    let r: &DestRouting = match scratch_map[ci][di] {
                        NOT_RECOMPUTED => &cache.base[ci][di],
                        WS_BASE => &ws_base[ci].state[di],
                        code if code & CACHED_BIT != 0 => &list[(code & !CACHED_BIT) as usize].1,
                        slot => &scratch[slot as usize],
                    };
                    r.replay(loads, &mut dropped);
                }
            }
        }

        // Totals and per-link delays: elementwise totals as in
        // `cost_with` (identical inputs ⇒ identical bits); delays read
        // back from the resident state and recomputed only at dirty
        // links — keeping only the ones that actually changed bitwise
        // for the pair-delay reuse decision below.
        total_loads.clear();
        total_loads.extend(
            class_loads[0]
                .iter()
                .zip(&class_loads[1])
                .map(|(x, y)| x + y),
        );
        link_delays.clear();
        if full {
            link_delays.extend_from_slice(&entry.link_delays);
            for &l in dirty.iter() {
                let li = l as usize;
                let d = delay_model::link_delay(
                    total_loads[li],
                    self.capacities[li],
                    self.prop_delays[li],
                    &self.params,
                );
                if d.to_bits() != link_delays[li].to_bits() {
                    link_delays[li] = d;
                    pair_dirty.push(l);
                }
            }
        } else {
            // Partial residency: no resident delays to patch — recompute
            // every link from the candidate totals. Bit-identical: links
            // without a contributor change carry bitwise the incumbent's
            // total load, and `link_delay` is a pure function of it.
            // `pair_dirty` stays empty, which is fine: with no resident
            // pair segments to splice, every destination below re-runs
            // the DP regardless.
            link_delays.extend(total_loads.iter().enumerate().map(|(li, &t)| {
                delay_model::link_delay(t, self.capacities[li], self.prop_delays[li], &self.params)
            }));
        }

        // Pass 3: SLA pairs — resident segments for destinations whose
        // routing is unchanged and whose DAG sees no changed delay; the
        // shared DP kernel for the rest.
        let weights_d = w.weights(Class::Delay);
        let take_max = matches!(self.params.aggregation, DelayAggregation::Max);
        pair_delays.clear();
        for (di, &t) in self.demand_dests[0].iter().enumerate() {
            if Some(t as usize) == excluded {
                continue;
            }
            let code = scratch_map[0][di];
            let dest: &DestRouting = if code == NOT_RECOMPUTED {
                &cache.base[0][di]
            } else if code == WS_BASE {
                &ws_base[0].state[di]
            } else if code & CACHED_BIT != 0 {
                &entry.delay[(code & !CACHED_BIT) as usize].1
            } else {
                &scratch[code as usize]
            };
            if full
                && (code == NOT_RECOMPUTED || code & CACHED_BIT != 0)
                && (pair_dirty.is_empty()
                    || !dag_uses_any(self.net, &dest.dist, weights_d, pair_dirty))
            {
                let s = entry.pair_off[di] as usize;
                let e = entry.pair_off[di + 1] as usize;
                pair_delays.extend_from_slice(&entry.pairs[s..e]);
                continue;
            }
            delay::pair_delays_into(
                self.net,
                &dest.dist,
                &dest.order,
                weights_d,
                mask,
                link_delays,
                take_max,
                &self.traffic.delay,
                t as usize,
                excluded,
                node_delay,
                pair_delays,
            );
        }

        let sla = sla::summarize(&*pair_delays, &self.params);
        let phi = congestion::phi(total_loads, &class_loads[1], &self.capacities);
        LexCost::new(sla.lambda, phi)
    }

    /// Re-point the cache at a new incumbent `w` incrementally: the
    /// accept-path maintenance of the hill climbers. Baseline and
    /// per-scenario routings whose `cache.weights → w` diff provably
    /// cannot change (see [`weight_change_affects`]) are kept as-is; the
    /// rest are re-routed under `w`, and the resident folded state
    /// (loads, contributor lists, link delays, pair segments) is updated
    /// to describe `w` exactly. Unlike the pre-delta cache, coverage is
    /// maintained **exactly**: destinations entering or leaving a
    /// scenario's mask-affected set are spliced into or out of its entry,
    /// so no periodic full rebuild is needed.
    /// This serial form wraps the three-stage refresh —
    /// [`cache_refresh_begin`](Self::cache_refresh_begin), one
    /// [`cache_refresh_entry`](Self::cache_refresh_entry) per resident
    /// position, [`cache_refresh_finish`](Self::cache_refresh_finish) —
    /// which multicore accept paths shard across workers with
    /// bit-identical results (see the parallel-search contract in
    /// `DETERMINISM.md`).
    pub fn cache_refresh(
        &self,
        ws: &mut EvalWorkspace,
        cache: &mut ScenarioCache,
        w: &WeightSetting,
        scenario_at: impl Fn(usize) -> Scenario,
    ) {
        self.cache_refresh_begin(ws, cache, w);
        let resident = cache.resident + cache.partial;
        let (ctx, entries) = cache.refresh_split();
        for (pos, entry) in entries.iter_mut().enumerate().take(resident) {
            self.cache_refresh_entry(ws, w, &ctx, scenario_at(pos), entry);
        }
        self.cache_refresh_finish(cache, w);
    }

    /// Stage 1 of the incremental refresh: compute the incumbent → `w`
    /// per-class weight diff into the cache, and update the cached
    /// no-failure baseline, recording in the cache's shared refresh
    /// flags exactly which destinations *really* moved. Serial — runs
    /// once per accepted candidate; the per-entry stage it feeds
    /// ([`cache_refresh_entry`](Self::cache_refresh_entry)) is the
    /// shardable part.
    pub fn cache_refresh_begin(
        &self,
        ws: &mut EvalWorkspace,
        cache: &mut ScenarioCache,
        w: &WeightSetting,
    ) {
        let num_links = self.net.num_links();
        assert_eq!(w.num_links(), num_links, "weight size mismatch");
        ws.bind(self.engine_id, num_links);
        let ScenarioCache {
            weights,
            base,
            diff,
            refresh_changed,
            ..
        } = cache;
        for (ci, class) in Class::ALL.iter().enumerate() {
            let new = w.weights(*class);
            assert_eq!(weights[ci].len(), new.len(), "link count mismatch");
            diff[ci].clear();
            diff[ci].extend(
                weights[ci]
                    .iter()
                    .zip(new)
                    .enumerate()
                    .filter(|(_, (o, n))| o != n)
                    .map(|(l, (&o, &n))| WeightChange {
                        link: LinkId::new(l),
                        old: o,
                        new: n,
                    }),
            );
        }

        // Baseline update: re-route the destinations the diff can
        // touch, remembering which *really* moved (their routings may
        // enter or leave any scenario's affected set). The conservative
        // predicate's false positives are filtered with the exact
        // [`baseline_unchanged`] diff so bit-identical re-routes don't
        // churn entries or re-run delay DPs downstream.
        let mut tmp = std::mem::take(&mut ws.refresh_tmp);
        for (ci, class) in Class::ALL.iter().enumerate() {
            let class_weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            assert_eq!(
                base[ci].len(),
                dests.len(),
                "cache baseline missing; run cache_rebuild_begin first"
            );
            refresh_changed[ci].clear();
            refresh_changed[ci].resize(dests.len(), false);
            for (di, &t) in dests.iter().enumerate() {
                if diff[ci].is_empty()
                    || !weight_change_affects(self.net, &base[ci][di].dist, &diff[ci])
                {
                    continue;
                }
                route_destination(
                    self.net,
                    class_weights,
                    tm,
                    &ws.up_mask,
                    t as usize,
                    &mut ws.spf,
                    &mut tmp,
                );
                if !baseline_unchanged(self.net, &tmp.dist, &base[ci][di].dist, &diff[ci]) {
                    std::mem::swap(&mut base[ci][di], &mut tmp);
                    refresh_changed[ci][di] = true;
                }
            }
        }
        ws.refresh_tmp = tmp;
    }

    /// Stage 2 of the incremental refresh: update one resident entry —
    /// routings, contributor lists, loads and (for fully resident
    /// entries) link delays and pair segments, all in place. The result
    /// is a pure function of (entry, `ctx`, `w`, scenario), entries are
    /// position-disjoint, and `ctx` is read-only, so an accept path may
    /// shard the resident entries across workers in contiguous
    /// index-order chunks (each worker with its own pooled workspace)
    /// and splice bit-identically to the serial loop at any worker
    /// count — the sharded-refresh splice invariant in `DETERMINISM.md`.
    /// Steady-state allocation-free per worker: the old affected list
    /// drains through the workspace spare buffer, surviving routings
    /// move, leavers park in the routing pool, and newcomers reuse
    /// pooled buffers (pool contents are never read — re-routes fully
    /// overwrite them).
    pub fn cache_refresh_entry(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        ctx: &RefreshCtx<'_>,
        scenario: Scenario,
        entry: &mut ScenarioEntry,
    ) {
        let num_links = self.net.num_links();
        ws.bind(self.engine_id, num_links);
        let RefreshCtx {
            base,
            diff,
            changed: base_changed,
        } = *ctx;
        scenario.mask_into(self.net, &mut ws.mask);
        ws.down.clear();
        ws.down.extend(ws.mask.down_links().map(|i| i as u32));
        let excluded = scenario.excluded_node().map(|v| v.index());
        let epoch = ws.next_epoch();
        let mut tmp = std::mem::take(&mut ws.refresh_tmp);
        let mut spare = std::mem::take(&mut ws.refresh_list);
        let mut pool = std::mem::take(&mut ws.routing_pool);

        for (ci, class) in Class::ALL.iter().enumerate() {
            let class_weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let ch = &mut ws.changed[ci];
            ch.resize(dests.len(), 0);
            let list = if ci == 0 {
                &mut entry.delay
            } else {
                &mut entry.tput
            };
            // Rebuild the affected list, moving surviving routings:
            // membership only moves where the baseline moved.
            std::mem::swap(list, &mut spare);
            list.clear();
            let mut it = spare.drain(..).peekable();
            for (di, &t) in dests.iter().enumerate() {
                let hit = it
                    .peek()
                    .is_some_and(|(d, _)| *d == di as u32)
                    .then(|| it.next().unwrap().1);
                while it.peek().is_some_and(|(d, _)| *d < di as u32) {
                    // Cannot happen (lists are ascending and dense in
                    // di), but stay robust.
                    pool.push(it.next().unwrap().1);
                }
                if Some(t as usize) == excluded {
                    if let Some(r) = hit {
                        pool.push(r);
                    }
                    continue;
                }
                if base_changed[ci][di] {
                    let affected = !ws.down.is_empty()
                        && dag_uses_any(self.net, &base[ci][di].dist, class_weights, &ws.down);
                    if affected {
                        // The cached scenario routing survives when
                        // the diff provably cannot change it.
                        if let Some(routing) = hit {
                            if diff[ci].is_empty()
                                || !weight_change_affects(self.net, &routing.dist, &diff[ci])
                            {
                                list.push((di as u32, routing));
                                continue;
                            }
                            let mut routing = routing;
                            route_destination_repair(
                                self.net,
                                class_weights,
                                tm,
                                &ws.mask,
                                t as usize,
                                &base[ci][di],
                                &mut ws.spf,
                                &mut tmp,
                            );
                            if !baseline_unchanged(self.net, &tmp.dist, &routing.dist, &diff[ci]) {
                                ch[di] = epoch;
                                std::mem::swap(&mut routing, &mut tmp);
                            }
                            list.push((di as u32, routing));
                            continue;
                        }
                        ch[di] = epoch;
                        let mut routing = pool.pop().unwrap_or_default();
                        route_destination_repair(
                            self.net,
                            class_weights,
                            tm,
                            &ws.mask,
                            t as usize,
                            &base[ci][di],
                            &mut ws.spf,
                            &mut routing,
                        );
                        list.push((di as u32, routing));
                    } else {
                        // Not affected: the destination leaves (or
                        // stays out of) the entry; its effective
                        // routing is the freshly updated baseline.
                        ch[di] = epoch;
                        if let Some(r) = hit {
                            pool.push(r);
                        }
                    }
                } else if let Some(mut routing) = hit {
                    if !diff[ci].is_empty()
                        && weight_change_affects(self.net, &routing.dist, &diff[ci])
                    {
                        route_destination_repair(
                            self.net,
                            class_weights,
                            tm,
                            &ws.mask,
                            t as usize,
                            &base[ci][di],
                            &mut ws.spf,
                            &mut tmp,
                        );
                        if !baseline_unchanged(self.net, &tmp.dist, &routing.dist, &diff[ci]) {
                            ch[di] = epoch;
                            std::mem::swap(&mut routing, &mut tmp);
                        }
                    }
                    list.push((di as u32, routing));
                }
            }
            for (_, r) in it {
                pool.push(r);
            }

            // Contributor lists + full refold (cheap: one pass over
            // the effective adds — the per-link fold in destination
            // order gives bit-for-bit the reference accumulation for
            // *every* link, dirty or not).
            let list: &[(u32, DestRouting)] = list;
            let basec = &base[ci];
            entry.contrib[ci].rebuild(num_links, dests.len(), |di| {
                effective_adds(list, basec, dests, excluded, di)
            });
            let loads = &mut entry.loads[ci];
            loads.clear();
            loads.resize(num_links, 0.0);
            for (l, load) in loads.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for &(_, share) in entry.contrib[ci].row(l) {
                    acc += share;
                }
                *load = acc;
            }
        }
        ws.refresh_tmp = tmp;
        ws.refresh_list = spare;
        ws.routing_pool = pool;
        if !entry.sla_resident {
            // Partial tier: no resident SLA segments to maintain —
            // candidate evaluations recompute delays and pair DPs from
            // the (just refreshed) loads, bit-identically.
            return;
        }

        // Delays: recompute, remembering which changed bitwise.
        ws.total_loads.clear();
        ws.total_loads.extend(
            entry.loads[0]
                .iter()
                .zip(&entry.loads[1])
                .map(|(x, y)| x + y),
        );
        ws.pair_dirty.clear();
        for (l, old) in entry.link_delays.iter_mut().enumerate() {
            let d = delay_model::link_delay(
                ws.total_loads[l],
                self.capacities[l],
                self.prop_delays[l],
                &self.params,
            );
            if d.to_bits() != old.to_bits() {
                *old = d;
                ws.pair_dirty.push(l as u32);
            }
        }

        // Pair segments: recompute only destinations whose routing
        // changed or whose DAG sees a changed delay; splice the rest
        // from the old resident list.
        let weights_d = w.weights(Class::Delay);
        let take_max = matches!(self.params.aggregation, DelayAggregation::Max);
        ws.pair_delays.clear();
        let mut cursor = 0usize;
        let list = &entry.delay;
        let new_offs = &mut ws.off_scratch;
        new_offs.clear();
        new_offs.push(0);
        for (di, &t) in self.demand_dests[0].iter().enumerate() {
            if Some(t as usize) != excluded {
                while cursor < list.len() && list[cursor].0 < di as u32 {
                    cursor += 1;
                }
                let hit = cursor < list.len() && list[cursor].0 == di as u32;
                let dest: &DestRouting = if hit { &list[cursor].1 } else { &base[0][di] };
                let routing_changed = ws.changed[0][di] == epoch;
                if !routing_changed
                    && (ws.pair_dirty.is_empty()
                        || !dag_uses_any(self.net, &dest.dist, weights_d, &ws.pair_dirty))
                {
                    let s = entry.pair_off[di] as usize;
                    let e = entry.pair_off[di + 1] as usize;
                    ws.pair_delays.extend_from_slice(&entry.pairs[s..e]);
                } else {
                    delay::pair_delays_into(
                        self.net,
                        &dest.dist,
                        &dest.order,
                        weights_d,
                        &ws.mask,
                        &entry.link_delays,
                        take_max,
                        &self.traffic.delay,
                        t as usize,
                        excluded,
                        &mut ws.node_delay,
                        &mut ws.pair_delays,
                    );
                }
            }
            new_offs.push(ws.pair_delays.len() as u32);
        }
        entry.pairs.clone_from(&ws.pair_delays);
        entry.pair_off.clone_from(new_offs);
    }

    /// Stage 3 of the incremental refresh: adopt `w` as the cache's
    /// incumbent and advance the generation stamp. Call exactly once,
    /// after every [`cache_refresh_entry`](Self::cache_refresh_entry)
    /// of the refresh has completed.
    pub fn cache_refresh_finish(&self, cache: &mut ScenarioCache, w: &WeightSetting) {
        for (buf, class) in cache.weights.iter_mut().zip(Class::ALL) {
            buf.clear();
            buf.extend_from_slice(w.weights(class));
        }
        cache.generation = next_engine_id();
    }

    /// Evaluate one scenario (any kind) against a valid workspace
    /// baseline, optionally capturing the recomputed routings into a
    /// scenario-cache entry.
    fn cost_scenario(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        mut capture: Option<&mut ScenarioEntry>,
    ) -> LexCost {
        // Node failures also remove the dead node's traffic; the mask
        // makes that self-enforcing for loads (see the module docs), and
        // the routing/SLA loops below skip the node explicitly where the
        // base matrices still mention it.
        let excluded = scenario.excluded_node().map(|v| v.index());
        let EvalWorkspace {
            spf,
            mask,
            down,
            base,
            scratch,
            scratch_map,
            tput_scratch,
            class_loads,
            total_loads,
            link_delays,
            node_delay,
            pair_delays,
            ..
        } = ws;
        scenario.mask_into(self.net, mask);
        down.clear();
        down.extend(mask.down_links().map(|i| i as u32));

        // Route (or replay) both classes. The delay class keeps its
        // recomputed destinations around: their distance fields feed the
        // end-to-end delay DP below.
        let mut scratch_used = 0usize;
        let mut dropped = 0.0f64; // diagnostic only; never in the cost
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let loads = &mut class_loads[ci];
            loads.clear();
            loads.resize(self.net.num_links(), 0.0);
            if ci == 0 {
                scratch_map[0].clear();
                scratch_map[0].resize(dests.len(), NOT_RECOMPUTED);
            }
            for (di, &t) in dests.iter().enumerate() {
                if Some(t as usize) == excluded {
                    // The dead node sinks nothing under its own failure;
                    // the reference path (zeroed column) never routes it.
                    continue;
                }
                let b = &base[ci].state[di];
                let affected = !down.is_empty() && dag_uses_any(self.net, &b.dist, weights, down);
                if !affected {
                    b.replay(loads, &mut dropped);
                    continue;
                }
                // A mask-affected destination is *repaired* from the
                // resident no-failure baseline (orphan detection plus a
                // boundary Dijkstra — bit-equal to a from-scratch route,
                // see `route_destination_repair`) instead of paying a
                // full Dijkstra; `ensure_baseline` guarantees `b` is the
                // all-up routing of these exact weights.
                if ci == 0 {
                    if scratch.len() == scratch_used {
                        scratch.push(DestRouting::default());
                    }
                    let dest = &mut scratch[scratch_used];
                    if self.plain_repair {
                        route_destination_repair(
                            self.net, weights, tm, mask, t as usize, b, spf, dest,
                        );
                    } else {
                        route_destination(self.net, weights, tm, mask, t as usize, spf, dest);
                    }
                    dest.replay(loads, &mut dropped);
                    scratch_map[0][di] = scratch_used as u32;
                    scratch_used += 1;
                    if let Some(entry) = capture.as_mut() {
                        entry
                            .delay
                            .push((di as u32, scratch[scratch_used - 1].clone()));
                    }
                } else {
                    if self.plain_repair {
                        route_destination_repair(
                            self.net,
                            weights,
                            tm,
                            mask,
                            t as usize,
                            b,
                            spf,
                            tput_scratch,
                        );
                    } else {
                        route_destination(
                            self.net,
                            weights,
                            tm,
                            mask,
                            t as usize,
                            spf,
                            tput_scratch,
                        );
                    }
                    tput_scratch.replay(loads, &mut dropped);
                    if let Some(entry) = capture.as_mut() {
                        entry.tput.push((di as u32, tput_scratch.clone()));
                    }
                }
            }
        }

        // Total loads, link delays (same element-wise operations as the
        // reference path).
        total_loads.clear();
        total_loads.extend(
            class_loads[0]
                .iter()
                .zip(&class_loads[1])
                .map(|(x, y)| x + y),
        );
        delay_model::link_delays_into(
            total_loads,
            &self.capacities,
            &self.prop_delays,
            &self.params,
            link_delays,
        );

        // Per-pair end-to-end delays of the delay class (shared kernel;
        // the order field is cached, not recomputed).
        let weights_d = w.weights(Class::Delay);
        let take_max = matches!(self.params.aggregation, DelayAggregation::Max);
        pair_delays.clear();
        for (di, &t) in self.demand_dests[0].iter().enumerate() {
            if Some(t as usize) == excluded {
                continue;
            }
            let dest = match scratch_map[0][di] {
                NOT_RECOMPUTED => &base[0].state[di],
                slot => &scratch[slot as usize],
            };
            delay::pair_delays_into(
                self.net,
                &dest.dist,
                &dest.order,
                weights_d,
                mask,
                link_delays,
                take_max,
                &self.traffic.delay,
                t as usize,
                excluded,
                node_delay,
                pair_delays,
            );
        }

        let sla = sla::summarize(&*pair_delays, &self.params);
        let phi = congestion::phi(total_loads, &class_loads[1], &self.capacities);
        LexCost::new(sla.lambda, phi)
    }

    #[inline]
    fn class_matrix(&self, class: Class) -> &TrafficMatrix {
        match class {
            Class::Delay => &self.traffic.delay,
            Class::Throughput => &self.traffic.throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The per-link destination-ordered merge must reproduce the
    /// from-scratch accumulation: stored shares of unchanged
    /// destinations interleaved with fresh shares of changed ones, in
    /// ascending destination order.
    #[test]
    fn refold_link_merges_in_destination_order() {
        // Stored row: dests 0, 2, 5, 7; dest 2 and 7 changed.
        let row = [(0u32, 1.0f64), (2, 2.0), (5, 4.0), (7, 8.0)];
        // Fresh adds for this link: dest 2 (new share) and dest 6 (newly
        // contributing).
        let fresh = [(9u32, 2u32, 16.0f64), (9, 6, 32.0)];
        let changed = |d: u32| d == 2 || d == 6 || d == 7;
        // Expected fold order: 0 (kept), 2 (fresh), 5 (kept), 6 (fresh);
        // dest 7's stale share is dropped without a replacement.
        let want: f64 = ((0.0 + 1.0) + 16.0) + 4.0 + 32.0;
        assert_eq!(refold_link(&row, &fresh, changed).to_bits(), want.to_bits());
    }

    #[test]
    fn refold_link_handles_empty_sides() {
        assert_eq!(refold_link(&[], &[], |_| false), 0.0);
        let row = [(3u32, 5.0f64)];
        assert_eq!(refold_link(&row, &[], |_| false), 5.0);
        assert_eq!(refold_link(&row, &[], |d| d == 3), 0.0);
        let fresh = [(0u32, 1u32, 7.0f64)];
        assert_eq!(refold_link(&[], &fresh, |_| true), 7.0);
    }

    /// CSR rebuild scans destinations in ascending order, so every
    /// link's contributor row comes out destination-sorted and
    /// re-entrant calls reuse the buffers.
    #[test]
    fn link_contrib_rebuild_orders_rows_by_destination() {
        let adds: [&[(u32, f64)]; 3] = [
            &[(0, 1.0), (2, 2.0)], // dest 0 touches links 0, 2
            &[(2, 3.0)],           // dest 1 touches link 2
            &[(0, 4.0), (1, 5.0)], // dest 2 touches links 0, 1
        ];
        let mut cb = LinkContrib::default();
        for _ in 0..2 {
            // Second pass re-rebuilds into warm buffers.
            cb.rebuild(3, 3, |di| adds[di]);
        }
        assert_eq!(cb.row(0), &[(0u32, 1.0f64), (2, 4.0)]);
        assert_eq!(cb.row(1), &[(2u32, 5.0f64)]);
        assert_eq!(cb.row(2), &[(0u32, 2.0f64), (1, 3.0)]);
        // A full refold of every row equals the replayed sums.
        for (l, want) in [(0usize, 5.0f64), (1, 5.0), (2, 5.0)] {
            assert_eq!(refold_link(cb.row(l), &[], |_| false), want);
        }
    }
}
