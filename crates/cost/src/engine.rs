//! The allocation-free, incremental evaluation engine.
//!
//! [`crate::Evaluator::evaluate`] is the readable reference
//! implementation: it recomputes everything from scratch and allocates
//! its full [`crate::CostBreakdown`]. The local search does not need the
//! breakdown — it needs millions of scalar [`crate::LexCost`] answers —
//! so this module provides the machinery that produces *the same bits*
//! without the per-evaluation work:
//!
//! 1. **Workspaces** ([`EvalWorkspace`]): every scratch vector an
//!    evaluation needs (Dijkstra heap, distance fields, load buffers,
//!    the scenario mask, per-pair delays) lives in a per-thread workspace
//!    drawn from the evaluator's pool. After warm-up, an evaluation of
//!    **any** scenario kind performs **zero** heap allocations
//!    (`tests/alloc_free.rs` pins this for link, SRLG and node sweeps).
//! 2. **Baseline caching**: the workspace keeps, per traffic class, the
//!    full no-failure routing of the *current* weight setting as
//!    replayable [`DestRouting`] records (one per demand destination).
//! 3. **Mask-diff incremental SPF across scenarios**: each scenario is
//!    reduced to its *down-set* — the directed links its mask fails: one
//!    duplex pair (`Link`), several pairs (`Srlg`, `DoubleLink`), or a
//!    router's full incidence set (`Node`). Only destinations whose
//!    no-failure shortest-path DAG uses a down link ([`dag_uses_any`])
//!    are re-routed; all other destinations replay their recorded load
//!    accumulations bit-for-bit. Probabilistic ensembles are sets of
//!    these same scenarios — their per-scenario weights are applied by
//!    the caller in scenario-index order, so the weighted sum is also
//!    bit-stable.
//! 4. **Incremental SPF across search moves**: when the weight setting
//!    changes (a Phase-1/Phase-2 neighbor move re-draws one duplex
//!    link's weights), the baseline is diffed against the new weights
//!    and only destinations whose distance field is provably affected
//!    ([`weight_change_affects`]) are re-routed.
//! 5. **Move-diff scenario cache across moves × scenarios**
//!    ([`ScenarioCache`]): the robust phase's sweep evaluates the *same
//!    scenarios* for a stream of candidates that differ from the
//!    incumbent by one duplex link. The cache keeps the incumbent's
//!    recomputed per-scenario routings; a candidate's sweep re-routes
//!    only destinations affected by **both** the scenario's mask and
//!    the candidate's weight diff ([`Evaluator::cost_cached`]), and the
//!    accept path re-points the cache at the new incumbent for the cost
//!    of a few Dijkstras ([`Evaluator::cache_refresh`]).
//! 6. **Incumbent-bounded sweeps**
//!    ([`Evaluator::evaluate_all_bounded`], and the set-native
//!    `dtr_core::parallel::sum_set_costs_bounded` with per-scenario Λ
//!    floors from [`Evaluator::lambda_floor`]): compound failure costs
//!    are non-negative sums, so a partial fold that stops beating the
//!    search's incumbent *proves* the candidate will be rejected — the
//!    rest of the sweep is skipped without perturbing the trajectory.
//!
//! # Node failures: masks that also remove traffic
//!
//! A node failure downs every link incident to the dead router `v` *and*
//! removes the traffic `v` sources and sinks. The engine still evaluates
//! it against the **base** traffic matrices, without cloning, because the
//! mask makes the traffic change self-enforcing:
//!
//! * if `v` was reachable towards a destination `t`, the first hop of
//!   `v`'s shortest path is on `t`'s DAG — a down link — so
//!   [`dag_uses_any`] flags `t` and it is re-routed. Under the node mask
//!   `v` has no surviving out-link, so `v`'s demand lands in the dropped
//!   accumulator and contributes no load addition — the per-link float
//!   adds are exactly those of routing with `v`'s row zeroed;
//! * a destination is only *replayed* when `v` was already unreachable
//!   in its baseline (degenerate topologies), where `v`'s demand never
//!   produced a load addition in the first place;
//! * the dead node is skipped as a destination, and the shared SLA
//!   kernel ([`delay::pair_delays_into`]) is told to skip it as a
//!   sender, so the emitted `(s, t, ξ)` triples match the reference's
//!   zeroed-matrix emission pair for pair.
//!
//! The only reference quantity the engine does not reproduce for node
//! scenarios is the `dropped` accounting (the reference removes the dead
//! node's demand before routing; the engine records it as dropped) —
//! `dropped` is diagnostic and never part of [`crate::LexCost`].
//!
//! # Equivalence guarantees
//!
//! Bit-for-bit equivalence with the reference path is not best-effort —
//! it is load-bearing (the optimization trajectory must not depend on
//! which engine evaluated a candidate) and pinned for **every**
//! `Scenario` kind by `tests/engine_equivalence.rs` and the randomized
//! differential harness `tests/scenario_engine_equivalence.rs`. It holds
//! because a replayed destination re-issues the exact floating-point
//! additions, in the exact order, that a fresh computation would
//! perform, and a re-routed destination runs the exact same
//! [`route_destination`] kernel the reference path is built on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Source of unique per-[`Evaluator`] identities (see
/// [`EvalWorkspace::owner`]); 0 is reserved for "never owned".
static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh evaluator identity.
pub(crate) fn next_engine_id() -> u64 {
    NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed)
}

use dtr_net::{LinkId, LinkMask};
use dtr_routing::workspace::{
    dag_uses_any, route_destination, weight_change_affects, DestRouting, WeightChange,
};
use dtr_routing::{delay, Class, Scenario, SpfWorkspace, WeightSetting};
use dtr_traffic::TrafficMatrix;

use crate::delay_model;
use crate::lexico::LexCost;
use crate::params::DelayAggregation;
use crate::{congestion, sla, Evaluator};

/// Marker for "this destination was replayed from the baseline".
const NOT_RECOMPUTED: u32 = u32::MAX;

/// Tag bit marking a `scratch_map` slot that resolves into the scenario
/// cache's recomputed routings instead of the recompute scratch.
const CACHED_BIT: u32 = 0x8000_0000;

/// Cached routing of one scenario under the cache's weight setting: the
/// recomputed [`DestRouting`] of every destination the scenario's mask
/// affected, per class, in destination order.
#[derive(Clone, Debug, Default)]
pub struct ScenarioEntry {
    /// `(slot into the delay class's demand-destination list, routing)`.
    delay: Vec<(u32, DestRouting)>,
    /// Same for the throughput class.
    tput: Vec<(u32, DestRouting)>,
}

/// Move-diff scenario cache: the per-scenario recomputed routings of an
/// *incumbent* weight setting, enabling candidate sweeps that re-route
/// only destinations affected by **both** the scenario's mask and the
/// candidate's weight diff.
///
/// A hill-climbing candidate differs from the incumbent by one duplex
/// link (plus whatever earlier accepted moves drifted since the last
/// rebuild), so for most mask-affected destinations
/// [`weight_change_affects`] proves the cached routing is bit-for-bit
/// what re-routing would produce — the sweep replays it instead of
/// running Dijkstra. This turns the per-scenario candidate cost from
/// "re-route every mask-affected destination" into "re-route the
/// mask ∩ move intersection", which is usually empty or tiny.
///
/// Build it with [`Evaluator::cost_capture`] sweeps over the incumbent,
/// point candidates at it with [`Evaluator::cache_begin`] (which
/// computes the per-class weight diff), and evaluate through
/// [`Evaluator::cost_cached`]. Correctness does not depend on any
/// freshness policy: a stale cache only classifies more destinations as
/// move-affected (they are then recomputed exactly as without the
/// cache); callers rebuild when the drift makes it unprofitable.
#[derive(Debug, Default)]
pub struct ScenarioCache {
    /// Per-class weights of the cached incumbent (`[delay, tput]`).
    weights: [Vec<u32>; 2],
    /// Per-position scenario entries (positions are caller-defined and
    /// must match the `pos` arguments of capture/evaluate calls).
    entries: Vec<ScenarioEntry>,
    /// Per-class weight diff of the current candidate vs `weights`,
    /// refreshed by [`Evaluator::cache_begin`].
    diff: [Vec<WeightChange>; 2],
}

impl ScenarioCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-position scenario entries, for sharded capture sweeps
    /// (each worker takes a disjoint chunk; see
    /// [`Evaluator::cost_capture_into`]).
    pub fn entries_mut(&mut self) -> &mut [ScenarioEntry] {
        &mut self.entries
    }

    /// Reset the cache to describe `w` with `positions` scenario slots,
    /// keeping allocations. Every entry must then be re-captured with
    /// [`Evaluator::cost_capture`].
    pub fn begin_rebuild(&mut self, w: &WeightSetting, positions: usize) {
        for (ci, class) in Class::ALL.iter().enumerate() {
            self.weights[ci].clear();
            self.weights[ci].extend_from_slice(w.weights(*class));
        }
        self.entries.resize_with(positions, ScenarioEntry::default);
        for e in &mut self.entries {
            e.delay.clear();
            e.tput.clear();
        }
    }
}

/// Outcome of an incumbent-bounded batch evaluation
/// ([`Evaluator::evaluate_all_bounded`]).
#[derive(Clone, Debug, PartialEq)]
pub enum BoundedCosts {
    /// Every scenario was evaluated; per-scenario costs in input order,
    /// bit-for-bit those of [`Evaluator::evaluate_all`].
    Complete(Vec<LexCost>),
    /// The input-order partial sum proved the total cannot beat the
    /// incumbent; the sweep was abandoned after `evaluated` scenarios.
    Cut {
        /// Scenarios evaluated before the proof fired.
        evaluated: usize,
    },
}

/// The cached no-failure routing of one traffic class under the
/// workspace's current weight setting.
#[derive(Debug, Default)]
struct ClassBaseline {
    /// Weights this baseline was computed with (diffed on every reuse).
    weights: Vec<u32>,
    /// One replayable record per demand destination, aligned with the
    /// evaluator's per-class demand-destination list.
    state: Vec<DestRouting>,
    valid: bool,
}

/// Per-thread scratch for the incremental engine. Acquire one from
/// [`Evaluator::acquire_workspace`] (or implicitly via
/// [`Evaluator::cost`] / [`Evaluator::evaluate_all`]) and reuse it: all
/// buffers reach steady-state capacity after the first evaluation.
#[derive(Debug, Default)]
pub struct EvalWorkspace {
    /// [`Evaluator::engine_id`] of the evaluator whose baseline this
    /// workspace holds; 0 = none yet. Two evaluators can share a link
    /// count while disagreeing on traffic or parameters, so baseline
    /// reuse is gated on identity, not on buffer sizes.
    owner: u64,
    spf: SpfWorkspace,
    mask: LinkMask,
    /// Directed link ids down under the current scenario.
    down: Vec<u32>,
    /// Weight diffs of the current `ensure_baseline` call.
    diff: Vec<WeightChange>,
    base: [ClassBaseline; 2],
    /// Recomputed per-destination routings of the current scenario
    /// (delay class only — their distance fields feed the delay DP).
    scratch: Vec<DestRouting>,
    /// Delay-class destination index → slot in `scratch`, or
    /// [`NOT_RECOMPUTED`].
    scratch_map: Vec<u32>,
    /// Throughput-class recompute scratch (result replayed immediately).
    tput_scratch: DestRouting,
    class_loads: [Vec<f64>; 2],
    total_loads: Vec<f64>,
    link_delays: Vec<f64>,
    node_delay: Vec<f64>,
    pair_delays: Vec<(usize, usize, f64)>,
}

impl EvalWorkspace {
    /// Fresh workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop any cached baseline (forces the next evaluation to rebuild
    /// it from scratch). Only needed by tests and diagnostics.
    pub fn invalidate(&mut self) {
        self.base[0].valid = false;
        self.base[1].valid = false;
    }
}

/// A shared pool of per-thread workspaces owned by an evaluator (the
/// [`Evaluator`] pools [`EvalWorkspace`]s; the MTR evaluator reuses the
/// same type for its own workspace). Lock contention is negligible: one
/// lock per *batch* of evaluations (or per single evaluation on the
/// compatibility path), against milliseconds of routing work.
#[derive(Debug)]
pub struct WorkspacePool<T = EvalWorkspace> {
    pool: Mutex<Vec<T>>,
}

impl<T> Default for WorkspacePool<T> {
    fn default() -> Self {
        WorkspacePool {
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl<T: Default> WorkspacePool<T> {
    /// Pop a pooled workspace, or create a fresh one if the pool is dry.
    pub fn acquire(&self) -> T {
        self.pool
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a workspace so its warmed-up buffers get reused.
    pub fn release(&self, ws: T) {
        self.pool.lock().expect("workspace pool poisoned").push(ws);
    }
}

impl<'a> Evaluator<'a> {
    /// Check a workspace out of the evaluator's pool (creating one if
    /// the pool is dry). Return it with
    /// [`release_workspace`](Self::release_workspace) so its warmed-up
    /// buffers and cached baseline benefit later evaluations.
    pub fn acquire_workspace(&self) -> EvalWorkspace {
        self.pool.acquire()
    }

    /// Return a workspace to the pool.
    pub fn release_workspace(&self, ws: EvalWorkspace) {
        self.pool.release(ws);
    }

    /// Scenario-batched evaluation: the costs of `w` under every
    /// scenario, in input order — bit-for-bit what per-scenario
    /// [`Evaluator::evaluate`] would report, computed incrementally (one
    /// no-failure baseline, per-scenario recomputation only of the
    /// destinations each failure actually touches).
    pub fn evaluate_all(&self, w: &WeightSetting, scenarios: &[Scenario]) -> Vec<LexCost> {
        let mut ws = self.acquire_workspace();
        let out = scenarios
            .iter()
            .map(|&sc| self.cost_with(&mut ws, w, sc))
            .collect();
        self.release_workspace(ws);
        out
    }

    /// Incumbent-bounded batch evaluation: like
    /// [`evaluate_all`](Self::evaluate_all), but abandons the sweep as
    /// soon as the running input-order partial sum proves the batch's
    /// total cannot be lexicographically better than `incumbent`.
    ///
    /// Per-scenario costs are non-negative and IEEE addition of
    /// non-negative terms is monotone, so every prefix sum is a true
    /// lower bound of the completed sum; `better_than` is antitone in
    /// its left argument (see the lemma on [`LexCost::better_than`]), so
    /// `!prefix.better_than(incumbent)` proves that **no completion** of
    /// the sweep can beat the incumbent. Hill climbers that accept a
    /// candidate only when its compound cost beats the incumbent can
    /// therefore cut losing sweeps early without perturbing the search
    /// trajectory: a [`BoundedCosts::Complete`] result is bit-for-bit
    /// what `evaluate_all` returns, and a [`BoundedCosts::Cut`] result
    /// only ever replaces a sweep whose candidate would have been
    /// rejected anyway.
    pub fn evaluate_all_bounded(
        &self,
        w: &WeightSetting,
        scenarios: &[Scenario],
        incumbent: &LexCost,
    ) -> BoundedCosts {
        let mut ws = self.acquire_workspace();
        let mut costs = Vec::with_capacity(scenarios.len());
        let mut prefix = LexCost::ZERO;
        for &sc in scenarios {
            let c = self.cost_with(&mut ws, w, sc);
            prefix = prefix.add(&c);
            costs.push(c);
            if costs.len() < scenarios.len() && !prefix.better_than(incumbent) {
                self.release_workspace(ws);
                return BoundedCosts::Cut {
                    evaluated: costs.len(),
                };
            }
        }
        self.release_workspace(ws);
        BoundedCosts::Complete(costs)
    }

    /// Load- and routing-independent lower bound of the delay-class cost
    /// `Λ` under `scenario`: for every delay pair, any routing's
    /// end-to-end delay is at least the propagation-delay-shortest path
    /// under the scenario mask (Eq. 1 gives `D_l ≥ p_l`, queueing only
    /// adds), the SLA penalty (Eq. 2) is monotone in the pair delay, and
    /// pairs the mask disconnects pay the same disconnection penalty
    /// under every routing. Summing those per-pair floors therefore
    /// bounds `Λ` from below for **every** weight setting.
    ///
    /// Incumbent-bounded sweeps use these floors as stand-ins for
    /// scenarios not yet evaluated, which tightens the rejection proof
    /// from "the remaining scenarios cost at least nothing" to "at least
    /// their physical minimum" — on SLA-stressed workloads that is most
    /// of the incumbent's cost, so losing candidates are cut after a
    /// handful of scenarios instead of nearly all of them.
    ///
    /// The returned value is shaved by a relative `1e-9` guard so that
    /// floating-point evaluation-order effects (the floor and the real
    /// evaluation accumulate in different expression orders) can never
    /// lift the floor above an achievable `Λ`; the guard is orders of
    /// magnitude above the worst-case rounding slop and orders of
    /// magnitude below [`crate::LAMBDA_EPS`]'s resolution of genuine
    /// cost differences.
    pub fn lambda_floor(&self, scenario: Scenario) -> f64 {
        let mask = scenario.mask(self.net);
        let excluded = scenario.excluded_node().map(|v| v.index());
        let mut lambda = 0.0f64;
        for &t in &self.demand_dests[0] {
            let t = t as usize;
            if Some(t) == excluded {
                continue;
            }
            let dmin = dtr_routing::spf::min_cost_to(
                self.net,
                dtr_net::NodeId::new(t),
                &self.prop_delays,
                &mask,
            );
            for (s, &d) in dmin.iter().enumerate() {
                if s == t || Some(s) == excluded || self.traffic.delay.demand(s, t) <= 0.0 {
                    continue;
                }
                lambda += sla::pair_penalty(d, &self.params);
            }
        }
        lambda * (1.0 - 1e-9)
    }

    /// Scalar cost of one (weight setting, scenario) pair through the
    /// incremental engine, using the caller's workspace. Equals
    /// `self.evaluate(w, scenario).cost` bit-for-bit.
    pub fn cost_with(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
    ) -> LexCost {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        self.ensure_baseline(ws, w);
        self.cost_scenario(ws, w, scenario, None, None)
    }

    /// Make `ws`'s per-class baselines describe the no-failure routing of
    /// `w`, re-routing only destinations whose distance field the weight
    /// diff can actually touch.
    fn ensure_baseline(&self, ws: &mut EvalWorkspace, w: &WeightSetting) {
        if ws.owner != self.engine_id {
            // First use, or a workspace recycled from a different
            // evaluator (possibly same-sized but with different traffic
            // or parameters): size the mask, drop stale baselines.
            ws.owner = self.engine_id;
            ws.mask = LinkMask::all_up(self.net.num_links());
            ws.invalidate();
        }
        ws.mask.reset_all_up();
        let EvalWorkspace {
            spf,
            mask,
            diff,
            base,
            ..
        } = ws;
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let b = &mut base[ci];
            if b.valid && b.weights.len() == weights.len() {
                diff.clear();
                diff.extend(
                    b.weights
                        .iter()
                        .zip(weights)
                        .enumerate()
                        .filter(|(_, (o, n))| o != n)
                        .map(|(l, (&o, &n))| WeightChange {
                            link: LinkId::new(l),
                            old: o,
                            new: n,
                        }),
                );
                if diff.is_empty() {
                    continue;
                }
                for (di, &t) in dests.iter().enumerate() {
                    if weight_change_affects(self.net, &b.state[di].dist, diff) {
                        route_destination(
                            self.net,
                            weights,
                            tm,
                            mask,
                            t as usize,
                            spf,
                            &mut b.state[di],
                        );
                    }
                }
                b.weights.copy_from_slice(weights);
            } else {
                b.state.resize_with(dests.len(), DestRouting::default);
                for (di, &t) in dests.iter().enumerate() {
                    route_destination(
                        self.net,
                        weights,
                        tm,
                        mask,
                        t as usize,
                        spf,
                        &mut b.state[di],
                    );
                }
                b.weights.clear();
                b.weights.extend_from_slice(weights);
                b.valid = true;
            }
        }
    }

    /// Compute the per-class weight diff of candidate `w` against the
    /// cache's incumbent, preparing [`cost_cached`](Self::cost_cached)
    /// calls. Returns the total number of changed directed (class, link)
    /// slots — the caller's signal for when drift makes a rebuild
    /// worthwhile.
    pub fn cache_begin(&self, cache: &mut ScenarioCache, w: &WeightSetting) -> usize {
        let mut changed = 0;
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            assert_eq!(
                cache.weights[ci].len(),
                weights.len(),
                "cache incumbent and candidate disagree on link count"
            );
            cache.diff[ci].clear();
            cache.diff[ci].extend(
                cache.weights[ci]
                    .iter()
                    .zip(weights)
                    .enumerate()
                    .filter(|(_, (o, n))| o != n)
                    .map(|(l, (&o, &n))| WeightChange {
                        link: LinkId::new(l),
                        old: o,
                        new: n,
                    }),
            );
            changed += cache.diff[ci].len();
        }
        changed
    }

    /// Re-point the cache at a new incumbent `w` without a full capture
    /// sweep: entries whose routing the `cache.weights → w` diff
    /// provably cannot change (see [`weight_change_affects`]) are kept
    /// as-is, the rest are re-routed under `w`. Cached *coverage* (which
    /// destinations each scenario holds) is unchanged — destinations
    /// that newly became mask-affected simply stay uncached until the
    /// next full capture sweep, costing recomputes, never correctness.
    ///
    /// This is the accept-path maintenance of the hill climbers: after
    /// an accepted move the incumbent shifts by one duplex link, so most
    /// entries survive the predicate and the refresh costs a few
    /// Dijkstras instead of a full sweep.
    pub fn cache_refresh(
        &self,
        ws: &mut EvalWorkspace,
        cache: &mut ScenarioCache,
        w: &WeightSetting,
        scenario_at: impl Fn(usize) -> Scenario,
    ) {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        let ScenarioCache {
            weights,
            entries,
            diff,
        } = cache;
        for (ci, class) in Class::ALL.iter().enumerate() {
            let new = w.weights(*class);
            assert_eq!(weights[ci].len(), new.len(), "link count mismatch");
            diff[ci].clear();
            diff[ci].extend(
                weights[ci]
                    .iter()
                    .zip(new)
                    .enumerate()
                    .filter(|(_, (o, n))| o != n)
                    .map(|(l, (&o, &n))| WeightChange {
                        link: LinkId::new(l),
                        old: o,
                        new: n,
                    }),
            );
        }
        // The workspace only lends its mask buffer and SPF scratch; its
        // baseline is untouched.
        if ws.owner != self.engine_id {
            ws.owner = self.engine_id;
            ws.mask = LinkMask::all_up(self.net.num_links());
            ws.invalidate();
        }
        let EvalWorkspace { spf, mask, .. } = ws;
        for (pos, entry) in entries.iter_mut().enumerate() {
            let scenario = scenario_at(pos);
            scenario.mask_into(self.net, mask);
            for (ci, class) in Class::ALL.iter().enumerate() {
                let list = if ci == 0 {
                    &mut entry.delay
                } else {
                    &mut entry.tput
                };
                let class_weights = w.weights(*class);
                let tm = self.class_matrix(*class);
                let dests = &self.demand_dests[ci];
                for (di, dest) in list.iter_mut() {
                    if weight_change_affects(self.net, &dest.dist, &diff[ci]) {
                        let t = dests[*di as usize] as usize;
                        route_destination(self.net, class_weights, tm, mask, t, spf, dest);
                    }
                }
            }
        }
        for (buf, class) in weights.iter_mut().zip(Class::ALL) {
            buf.copy_from_slice(w.weights(class));
        }
    }

    /// [`cost_with`](Self::cost_with) that also captures the scenario's
    /// recomputed routings into `cache.entries[pos]` — the cache
    /// (re)build path, run over the incumbent setting. The returned cost
    /// is bit-for-bit the plain evaluation's.
    pub fn cost_capture(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        cache: &mut ScenarioCache,
        pos: usize,
    ) -> LexCost {
        debug_assert_eq!(
            cache.weights[0],
            w.weights(Class::Delay),
            "capture must run on the cache incumbent"
        );
        self.cost_capture_into(ws, w, scenario, &mut cache.entries[pos])
    }

    /// Entry-level form of [`cost_capture`](Self::cost_capture):
    /// captures into one caller-held [`ScenarioEntry`] (cleared first).
    /// Entries are position-disjoint, so a cache rebuild can shard its
    /// capture sweep across workers, each holding a disjoint slice of
    /// [`ScenarioCache::entries_mut`].
    pub fn cost_capture_into(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        entry: &mut ScenarioEntry,
    ) -> LexCost {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        entry.delay.clear();
        entry.tput.clear();
        self.ensure_baseline(ws, w);
        self.cost_scenario(ws, w, scenario, None, Some(entry))
    }

    /// [`cost_with`](Self::cost_with) through the move-diff scenario
    /// cache: mask-affected destinations whose cached routing the
    /// candidate's diff provably cannot change (see
    /// [`weight_change_affects`]) replay the cache instead of re-running
    /// Dijkstra. Requires a preceding [`cache_begin`](Self::cache_begin)
    /// for this exact `w`; the result is bit-for-bit
    /// [`cost_with`](Self::cost_with)'s.
    pub fn cost_cached(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        cache: &ScenarioCache,
        pos: usize,
    ) -> LexCost {
        assert_eq!(w.num_links(), self.net.num_links(), "weight size mismatch");
        self.ensure_baseline(ws, w);
        self.cost_scenario(ws, w, scenario, Some((cache, pos)), None)
    }

    /// Evaluate one scenario (any kind) against a valid baseline,
    /// optionally reading a move-diff scenario cache (`cached`) or
    /// capturing into one (`capture`).
    fn cost_scenario(
        &self,
        ws: &mut EvalWorkspace,
        w: &WeightSetting,
        scenario: Scenario,
        cached: Option<(&ScenarioCache, usize)>,
        mut capture: Option<&mut ScenarioEntry>,
    ) -> LexCost {
        // Node failures also remove the dead node's traffic; the mask
        // makes that self-enforcing for loads (see the module docs), and
        // the routing/SLA loops below skip the node explicitly where the
        // base matrices still mention it.
        let excluded = scenario.excluded_node().map(|v| v.index());
        let EvalWorkspace {
            spf,
            mask,
            down,
            base,
            scratch,
            scratch_map,
            tput_scratch,
            class_loads,
            total_loads,
            link_delays,
            node_delay,
            pair_delays,
            ..
        } = ws;
        scenario.mask_into(self.net, mask);
        down.clear();
        down.extend(mask.down_links().map(|i| i as u32));

        // Route (or replay) both classes. The delay class keeps its
        // recomputed destinations around: their distance fields feed the
        // end-to-end delay DP below. A mask-affected destination is
        // re-routed unless the scenario cache holds its routing and the
        // candidate's weight diff provably cannot change it
        // ([`weight_change_affects`] on the *cached scenario* distance
        // field — the predicate's false-contract holds for any mask's
        // distance field), in which case the cached routing replays the
        // exact float adds a re-route would perform.
        let cache_entry = cached.map(|(c, pos)| (&c.entries[pos], &c.diff));
        let mut scratch_used = 0usize;
        let mut dropped = 0.0f64; // diagnostic only; never in the cost
        for (ci, class) in Class::ALL.iter().enumerate() {
            let weights = w.weights(*class);
            let tm = self.class_matrix(*class);
            let dests = &self.demand_dests[ci];
            let loads = &mut class_loads[ci];
            loads.clear();
            loads.resize(self.net.num_links(), 0.0);
            if ci == 0 {
                scratch_map.clear();
                scratch_map.resize(dests.len(), NOT_RECOMPUTED);
            }
            // Cursor into the cache entry's (destination-ordered) list.
            let mut cursor = 0usize;
            for (di, &t) in dests.iter().enumerate() {
                if Some(t as usize) == excluded {
                    // The dead node sinks nothing under its own failure;
                    // the reference path (zeroed column) never routes it.
                    continue;
                }
                let b = &mut base[ci].state[di];
                let affected = !down.is_empty() && dag_uses_any(self.net, &b.dist, weights, down);
                if !affected {
                    b.replay(loads, &mut dropped);
                    continue;
                }
                if let Some((entry, diff)) = cache_entry {
                    let list = if ci == 0 { &entry.delay } else { &entry.tput };
                    while cursor < list.len() && list[cursor].0 < di as u32 {
                        cursor += 1;
                    }
                    if cursor < list.len() && list[cursor].0 == di as u32 {
                        let hit = &list[cursor].1;
                        if !weight_change_affects(self.net, &hit.dist, &diff[ci]) {
                            hit.replay(loads, &mut dropped);
                            if ci == 0 {
                                scratch_map[di] = CACHED_BIT | cursor as u32;
                            }
                            continue;
                        }
                    }
                }
                if ci == 0 {
                    if scratch.len() == scratch_used {
                        scratch.push(DestRouting::default());
                    }
                    let dest = &mut scratch[scratch_used];
                    route_destination(self.net, weights, tm, mask, t as usize, spf, dest);
                    dest.replay(loads, &mut dropped);
                    scratch_map[di] = scratch_used as u32;
                    scratch_used += 1;
                    if let Some(entry) = capture.as_mut() {
                        entry
                            .delay
                            .push((di as u32, scratch[scratch_used - 1].clone()));
                    }
                } else {
                    route_destination(self.net, weights, tm, mask, t as usize, spf, tput_scratch);
                    tput_scratch.replay(loads, &mut dropped);
                    if let Some(entry) = capture.as_mut() {
                        entry.tput.push((di as u32, tput_scratch.clone()));
                    }
                }
            }
        }

        // Total loads, link delays (same element-wise operations as the
        // reference path).
        total_loads.clear();
        total_loads.extend(
            class_loads[0]
                .iter()
                .zip(&class_loads[1])
                .map(|(x, y)| x + y),
        );
        delay_model::link_delays_into(
            total_loads,
            &self.capacities,
            &self.prop_delays,
            &self.params,
            link_delays,
        );

        // Per-pair end-to-end delays of the delay class (shared kernel;
        // the order field is cached, not recomputed).
        let weights_d = w.weights(Class::Delay);
        let take_max = matches!(self.params.aggregation, DelayAggregation::Max);
        pair_delays.clear();
        for (di, &t) in self.demand_dests[0].iter().enumerate() {
            if Some(t as usize) == excluded {
                continue;
            }
            let dest = match scratch_map[di] {
                NOT_RECOMPUTED => &base[0].state[di],
                s if s & CACHED_BIT != 0 => {
                    let (entry, _) = cache_entry.expect("cached slot without a cache");
                    &entry.delay[(s & !CACHED_BIT) as usize].1
                }
                slot => &scratch[slot as usize],
            };
            delay::pair_delays_into(
                self.net,
                &dest.dist,
                &dest.order,
                weights_d,
                mask,
                link_delays,
                take_max,
                &self.traffic.delay,
                t as usize,
                excluded,
                node_delay,
                pair_delays,
            );
        }

        let sla = sla::summarize(&*pair_delays, &self.params);
        let phi = congestion::phi(total_loads, &class_loads[1], &self.capacities);
        LexCost::new(sla.lambda, phi)
    }

    #[inline]
    fn class_matrix(&self, class: Class) -> &TrafficMatrix {
        match class {
            Class::Delay => &self.traffic.delay,
            Class::Throughput => &self.traffic.throughput,
        }
    }
}
