//! Delay-class cost `Λ` — Eq. (2) of the paper.
//!
//! ```text
//! Λ(s,t) = 0                       if ξ(s,t) <= θ     (2a)
//! Λ(s,t) = B1 + B2 (ξ(s,t) − θ)   otherwise           (2b)
//! ```
//!
//! `Λ = Σ_(s,t) Λ(s,t)` captures the financial penalty of SLA violations:
//! a fixed penalty per violated pair plus a term growing with the excess.
//! VoIP-style applications are insensitive below the threshold and degrade
//! sharply past it (paper ref \[7\]).

use crate::params::CostParams;

/// Penalty of a single SD pair with end-to-end delay `xi` seconds.
/// An infinite `xi` (disconnected pair, only possible in degenerate
/// scenarios) is charged as a violation with
/// [`CostParams::disconnect_excess_ms`] of excess.
pub fn pair_penalty(xi: f64, p: &CostParams) -> f64 {
    if xi <= p.theta {
        return 0.0;
    }
    let excess_ms = if xi.is_finite() {
        (xi - p.theta) * 1e3
    } else {
        p.disconnect_excess_ms
    };
    p.b1 + p.b2_per_ms * excess_ms
}

/// `true` if the delay violates the SLA bound.
#[inline]
pub fn violates(xi: f64, p: &CostParams) -> bool {
    xi > p.theta
}

/// Aggregate over per-pair delays: total cost `Λ` and the violation count
/// the paper reports as its robustness headline metric (β).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SlaSummary {
    /// Total delay-class cost `Λ`.
    pub lambda: f64,
    /// Number of SD pairs violating the SLA bound.
    pub violations: usize,
    /// Number of pairs examined.
    pub pairs: usize,
    /// Largest end-to-end delay observed (seconds); 0 when no pairs.
    pub worst_delay: f64,
}

/// Fold per-pair delays `(s, t, ξ)` into an [`SlaSummary`].
pub fn summarize<'a>(
    delays: impl IntoIterator<Item = &'a (usize, usize, f64)>,
    p: &CostParams,
) -> SlaSummary {
    let mut out = SlaSummary::default();
    for &(_, _, xi) in delays {
        out.pairs += 1;
        out.lambda += pair_penalty(xi, p);
        if violates(xi, p) {
            out.violations += 1;
        }
        if xi.is_finite() {
            out.worst_delay = out.worst_delay.max(xi);
        } else {
            out.worst_delay = f64::INFINITY;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default() // θ = 25 ms, B1 = 100, B2 = 1/ms
    }

    #[test]
    fn below_theta_is_free() {
        assert_eq!(pair_penalty(0.0, &p()), 0.0);
        assert_eq!(pair_penalty(24.9e-3, &p()), 0.0);
        assert_eq!(pair_penalty(25e-3, &p()), 0.0); // boundary inclusive
    }

    #[test]
    fn violation_penalty_structure() {
        // 30 ms: 5 ms excess -> 100 + 5 = 105.
        let pen = pair_penalty(30e-3, &p());
        assert!((pen - 105.0).abs() < 1e-9);
        // Just past θ the fixed part dominates (sharp increase, Eq. 2b).
        let pen = pair_penalty(25.000001e-3, &p());
        assert!(pen > 100.0 && pen < 100.001);
    }

    #[test]
    fn disconnected_pair_charged_finite() {
        let pen = pair_penalty(f64::INFINITY, &p());
        assert!((pen - 1100.0).abs() < 1e-9); // B1 + 1000 ms * B2
        assert!(pen.is_finite());
    }

    #[test]
    fn summary_counts_and_sums() {
        let delays = vec![
            (0, 1, 10e-3),
            (1, 2, 30e-3), // violation: 105
            (2, 0, 26e-3), // violation: 101
        ];
        let s = summarize(&delays, &p());
        assert_eq!(s.pairs, 3);
        assert_eq!(s.violations, 2);
        assert!((s.lambda - 206.0).abs() < 1e-9);
        assert!((s.worst_delay - 30e-3).abs() < 1e-15);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = summarize(&[], &p());
        assert_eq!(s, SlaSummary::default());
    }

    #[test]
    fn penalty_is_monotone_in_delay() {
        let mut prev = -1.0;
        for i in 0..100 {
            let xi = i as f64 * 1e-3;
            let pen = pair_penalty(xi, &p());
            assert!(pen >= prev);
            prev = pen;
        }
    }
}
