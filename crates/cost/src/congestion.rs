//! Throughput-class cost `Φ` — the Fortz–Thorup link congestion function.
//!
//! The paper reuses "the load-based cost function f(x_l) of \[8\]" (Fortz &
//! Thorup, INFOCOM 2000): a convex piecewise-linear function of link load
//! whose slope rises from 1 (empty link) to 5000 (overloaded link), with
//! breakpoints at utilizations 1/3, 2/3, 9/10, 1 and 11/10. `Φ` sums
//! `f(x_l)` over the set `L` of links carrying throughput-sensitive
//! traffic — note the *total* load (both classes) enters `f`, since the
//! classes share one FIFO queue, but only links used by throughput traffic
//! contribute to `Φ` (§III).

/// Utilization breakpoints of the Fortz–Thorup function.
pub const BREAKPOINTS: [f64; 5] = [1.0 / 3.0, 2.0 / 3.0, 0.9, 1.0, 11.0 / 10.0];
/// Slopes on the six segments delimited by [`BREAKPOINTS`].
pub const SLOPES: [f64; 6] = [1.0, 3.0, 10.0, 70.0, 500.0, 5000.0];

/// Fortz–Thorup congestion cost of one link with total load `x` (bits/s)
/// and capacity `c` (bits/s).
///
/// Returned in units of "capacity-normalized load cost": the piecewise
/// integral of [`SLOPES`] over utilization, times `c`. Scaling by `c`
/// matches the original formulation where `f` is defined on absolute load
/// `x` with slope changing at fractions of capacity; only relative
/// comparisons of `Φ` matter to the optimization.
pub fn link_cost(x: f64, c: f64) -> f64 {
    debug_assert!(x >= 0.0 && c > 0.0);
    c * utilization_cost(x / c)
}

/// The capacity-normalized form: piecewise-linear convex `g(u)` with
/// `g(0) = 0` and slopes [`SLOPES`] between [`BREAKPOINTS`].
pub fn utilization_cost(u: f64) -> f64 {
    debug_assert!(u >= 0.0);
    let mut cost = 0.0;
    let mut prev = 0.0;
    for (i, &bp) in BREAKPOINTS.iter().enumerate() {
        if u <= bp {
            return cost + SLOPES[i] * (u - prev);
        }
        cost += SLOPES[i] * (bp - prev);
        prev = bp;
    }
    cost + SLOPES[5] * (u - prev)
}

/// Total throughput-class cost `Φ`: sum of [`link_cost`] of the **total**
/// load over links whose throughput-class load is positive.
pub fn phi(total_loads: &[f64], throughput_loads: &[f64], capacities: &[f64]) -> f64 {
    debug_assert_eq!(total_loads.len(), throughput_loads.len());
    debug_assert_eq!(total_loads.len(), capacities.len());
    total_loads
        .iter()
        .zip(throughput_loads)
        .zip(capacities)
        .filter(|((_, &tl), _)| tl > 0.0)
        .map(|((&x, _), &c)| link_cost(x, c))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_zero_cost() {
        assert_eq!(utilization_cost(0.0), 0.0);
        assert_eq!(link_cost(0.0, 500e6), 0.0);
    }

    #[test]
    fn segment_values_match_hand_integration() {
        // g(1/3) = 1/3.
        assert!((utilization_cost(1.0 / 3.0) - 1.0 / 3.0).abs() < 1e-12);
        // g(2/3) = 1/3 + 3·(1/3) = 4/3.
        assert!((utilization_cost(2.0 / 3.0) - 4.0 / 3.0).abs() < 1e-12);
        // g(0.9) = 4/3 + 10·(0.9 − 2/3) = 4/3 + 7/3 = 11/3.
        assert!((utilization_cost(0.9) - 11.0 / 3.0).abs() < 1e-12);
        // g(1.0) = 11/3 + 70·0.1 = 32/3 + ... = 11/3 + 7 = 32/3.
        assert!((utilization_cost(1.0) - (11.0 / 3.0 + 7.0)).abs() < 1e-12);
        // g(1.1) = g(1) + 500·0.1 = 60.666...
        assert!((utilization_cost(1.1) - (11.0 / 3.0 + 7.0 + 50.0)).abs() < 1e-12);
    }

    #[test]
    fn convex_and_monotone() {
        let mut prev_cost = -1.0;
        let mut prev_slope = 0.0;
        for i in 0..1500 {
            let u = i as f64 / 1000.0;
            let c = utilization_cost(u);
            assert!(c >= prev_cost, "non-monotone at u = {u}");
            if i > 0 {
                let slope = (c - prev_cost) * 1000.0;
                assert!(
                    slope >= prev_slope - 1e-6,
                    "non-convex at u = {u}: slope {slope} < {prev_slope}"
                );
                prev_slope = slope;
            }
            prev_cost = c;
        }
    }

    #[test]
    fn congestion_dominates_past_capacity() {
        // 110% utilization is > 50x the cost of 90%.
        assert!(utilization_cost(1.1) > 15.0 * utilization_cost(0.9));
    }

    #[test]
    fn phi_skips_links_without_throughput_traffic() {
        let caps = [100.0, 100.0];
        let total = [95.0, 95.0];
        // Only link 0 carries throughput traffic.
        let tl = [5.0, 0.0];
        let f = phi(&total, &tl, &caps);
        assert!((f - link_cost(95.0, 100.0)).abs() < 1e-9);
    }

    #[test]
    fn phi_uses_total_load_not_class_load() {
        let caps = [100.0];
        // Throughput load tiny but delay traffic congests the link: cost
        // must reflect the shared FIFO queue (total load).
        let low = phi(&[10.0], &[1.0], &caps);
        let high = phi(&[99.0], &[1.0], &caps);
        assert!(high > 10.0 * low);
    }
}
