//! # dtr-cost — cost models and the network-cost evaluator
//!
//! Implements §III of the paper:
//!
//! * [`delay_model`] — per-link delay `D_l` (Eq. 1): propagation only below
//!   the utilization threshold µ, M/M/1 queueing above it, linearized at
//!   99 % utilization to avoid the pole.
//! * [`sla`] — the delay-class cost `Λ` (Eq. 2): zero below the SLA bound
//!   θ, then a fixed penalty `B1` plus `B2` per ms of excess.
//! * [`congestion`] — the throughput-class cost `Φ`: the Fortz–Thorup
//!   piecewise-linear link congestion function `f(x_l)` summed over links
//!   carrying throughput-sensitive traffic.
//! * [`LexCost`] — the lexicographic global cost `K = ⟨Λ, Φ⟩`: a routing
//!   is better only if it improves delay-class performance, or keeps it
//!   equal and improves throughput-class performance.
//! * [`Evaluator`] — the full pipeline: weight setting + failure scenario
//!   → two-class routing → total loads → link delays → `(Λ, Φ)` plus all
//!   the per-link / per-pair diagnostics the experiments report.

#![forbid(unsafe_code)]

pub mod congestion;
pub mod delay_model;
pub mod engine;
mod evaluator;
mod lexico;
mod params;
pub mod sla;

pub use engine::{BoundedCosts, EvalWorkspace, ScenarioCache, ScenarioEntry, ScenarioFloor};
pub use evaluator::{CostBreakdown, Evaluator};
pub use lexico::{LexCost, LAMBDA_EPS};
pub use params::{CostParams, DelayAggregation};
pub use sla::SlaSummary;
