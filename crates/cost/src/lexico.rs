//! Lexicographic global cost `K = ⟨Λ, Φ⟩` (§III).
//!
//! "K1 > K2 iff Λ1 > Λ2, or Λ1 = Λ2 and Φ1 > Φ2": delay-class performance
//! strictly dominates; throughput-class cost breaks ties. Because `Λ` is a
//! floating-point sum, equality is interpreted within a small absolute
//! tolerance (`Λ` values are multiples of `B1 = 100` plus ms-scale excess
//! terms, so `1e-6` cleanly separates genuinely different values from
//! accumulation noise).

/// The two-component network cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LexCost {
    /// Delay-class cost `Λ` (SLA penalties).
    pub lambda: f64,
    /// Throughput-class cost `Φ` (Fortz–Thorup congestion).
    pub phi: f64,
}

/// Tolerance within which two `Λ` values count as equal.
pub const LAMBDA_EPS: f64 = 1e-6;

impl LexCost {
    /// Zero cost.
    pub const ZERO: LexCost = LexCost {
        lambda: 0.0,
        phi: 0.0,
    };

    pub fn new(lambda: f64, phi: f64) -> Self {
        LexCost { lambda, phi }
    }

    /// Strictly better than `other` in the paper's lexicographic order:
    /// lower `Λ`, or equal `Λ` (within [`LAMBDA_EPS`]) and lower `Φ`.
    ///
    /// # Monotone early-cutoff lemma
    ///
    /// `better_than` is *antitone* in its left argument: if `p ≤ f`
    /// component-wise and `f.better_than(inc)`, then `p.better_than(inc)`
    /// (a smaller cost can only move the deciding comparison earlier or
    /// keep it winning). Combined with the fact that IEEE addition of
    /// non-negative terms is monotone non-decreasing, any index-ordered
    /// partial fold `p` of non-negative per-scenario costs is a true
    /// lower bound of the completed sum `f` — so once
    /// `!p.better_than(inc)` holds, **no completion** of the sweep can
    /// beat `inc`. This is the soundness proof behind the engine's
    /// incumbent-bounded sweeps
    /// ([`crate::Evaluator::evaluate_all_bounded`] and
    /// `dtr_core::parallel::sum_set_costs_bounded`): cutting a sweep at
    /// that point can only discard candidates the full sweep would have
    /// rejected anyway.
    pub fn better_than(&self, other: &LexCost) -> bool {
        if self.lambda < other.lambda - LAMBDA_EPS {
            return true;
        }
        if (self.lambda - other.lambda).abs() <= LAMBDA_EPS {
            return self.phi < other.phi;
        }
        false
    }

    /// Component-wise sum — used to accumulate `Kfail = Σ_l K_fail,l`
    /// across failure scenarios (Eq. 4).
    pub fn add(&self, other: &LexCost) -> LexCost {
        LexCost {
            lambda: self.lambda + other.lambda,
            phi: self.phi + other.phi,
        }
    }

    /// Relative improvement of `self` over `other`, measured on the
    /// dominant component: Λ when they differ, Φ otherwise. Used by the
    /// search's `c%`-improvement stopping rule.
    pub fn relative_improvement_over(&self, other: &LexCost) -> f64 {
        if (other.lambda - self.lambda).abs() > LAMBDA_EPS {
            if other.lambda.abs() < f64::MIN_POSITIVE {
                return if self.lambda < other.lambda {
                    f64::INFINITY
                } else {
                    0.0
                };
            }
            (other.lambda - self.lambda) / other.lambda
        } else if other.phi.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            (other.phi - self.phi) / other.phi
        }
    }
}

impl std::fmt::Display for LexCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨Λ={:.4}, Φ={:.6}⟩", self.lambda, self.phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_dominates() {
        let a = LexCost::new(100.0, 999.0);
        let b = LexCost::new(200.0, 1.0);
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
    }

    #[test]
    fn phi_breaks_ties() {
        let a = LexCost::new(100.0, 5.0);
        let b = LexCost::new(100.0, 7.0);
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        assert!(!a.better_than(&a)); // strict
    }

    #[test]
    fn epsilon_band_counts_as_equal_lambda() {
        let a = LexCost::new(100.0 + 1e-9, 5.0);
        let b = LexCost::new(100.0, 7.0);
        assert!(a.better_than(&b)); // Λ "equal", Φ smaller
    }

    #[test]
    fn order_is_asymmetric_and_transitive() {
        let xs = [
            LexCost::new(0.0, 3.0),
            LexCost::new(0.0, 5.0),
            LexCost::new(100.0, 0.0),
            LexCost::new(205.0, 10.0),
        ];
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i].better_than(&xs[j]) {
                    assert!(!xs[j].better_than(&xs[i]), "asymmetry {i},{j}");
                    for k in 0..xs.len() {
                        if xs[j].better_than(&xs[k]) {
                            assert!(xs[i].better_than(&xs[k]), "transitivity {i},{j},{k}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn add_is_componentwise() {
        let s = LexCost::new(1.0, 2.0).add(&LexCost::new(3.0, 4.0));
        assert_eq!(s, LexCost::new(4.0, 6.0));
    }

    #[test]
    fn relative_improvement_on_dominant_component() {
        let old = LexCost::new(200.0, 10.0);
        let new = LexCost::new(100.0, 10.0);
        assert!((new.relative_improvement_over(&old) - 0.5).abs() < 1e-12);
        // Equal lambda: measured on phi.
        let old = LexCost::new(100.0, 10.0);
        let new = LexCost::new(100.0, 9.0);
        assert!((new.relative_improvement_over(&old) - 0.1).abs() < 1e-12);
        // Zero-lambda pair: phi-based.
        let old = LexCost::new(0.0, 10.0);
        let new = LexCost::new(0.0, 8.0);
        assert!((new.relative_improvement_over(&old) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_shows_both_components() {
        let s = LexCost::new(1.0, 2.0).to_string();
        assert!(s.contains('Λ') && s.contains('Φ'));
    }
}
