//! Cost-model parameters (paper §III and §V-A3).

/// How a pair's end-to-end delay is aggregated over its ECMP paths.
///
/// The paper routes each SD pair "on path P" without specifying the ECMP
/// tie case; this reproduction defaults to the conservative choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayAggregation {
    /// Worst path actually used (default): the SLA is violated if any
    /// forwarded substream can violate it.
    Max,
    /// Traffic-weighted mean over used paths (expected per-packet delay
    /// under even splitting).
    Mean,
}

/// All §III cost-model constants. Defaults are the paper's values (§V-A3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Average packet size κ, **bits** (paper: 1500 bytes).
    pub kappa_bits: f64,
    /// Utilization threshold µ below which queueing delay is neglected
    /// (paper: 0.95 — backbone links show negligible queueing below very
    /// high loads, their refs \[17\], \[20\]).
    pub mu: f64,
    /// Utilization at which Eq. (1b) is linearized to avoid the M/M/1 pole
    /// (paper fn 3: 0.99).
    pub linearization_knee: f64,
    /// SLA bound θ, seconds (paper: 25 ms ≈ US coast-to-coast).
    pub theta: f64,
    /// Fixed penalty per SLA violation, `B1` (paper: 100).
    pub b1: f64,
    /// Per-millisecond penalty on delay in excess of θ, `B2` (paper: 1;
    /// the excess is denominated in ms so that `B2·excess` is comparable
    /// to `B1` at backbone delay scales).
    pub b2_per_ms: f64,
    /// Finite surrogate (ms of excess delay) for a disconnected pair. Only
    /// reachable in degenerate scenarios the optimizer never enumerates;
    /// keeps every cost finite. 1000 ms ≫ any real excess.
    pub disconnect_excess_ms: f64,
    /// ECMP delay aggregation (see [`DelayAggregation`]).
    pub aggregation: DelayAggregation,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            kappa_bits: 1500.0 * 8.0,
            mu: 0.95,
            linearization_knee: 0.99,
            theta: 25e-3,
            b1: 100.0,
            b2_per_ms: 1.0,
            disconnect_excess_ms: 1000.0,
            aggregation: DelayAggregation::Max,
        }
    }
}

impl CostParams {
    /// Paper defaults with a different SLA bound θ (Table V sweeps
    /// 25–100 ms).
    pub fn with_theta(theta: f64) -> Self {
        CostParams {
            theta,
            ..Default::default()
        }
    }

    /// Validate invariants; called by the evaluator at construction.
    pub fn validate(&self) {
        assert!(self.kappa_bits > 0.0, "packet size must be positive");
        assert!(
            self.mu > 0.0 && self.mu < 1.0,
            "mu must be in (0,1), got {}",
            self.mu
        );
        assert!(
            self.linearization_knee > self.mu && self.linearization_knee < 1.0,
            "linearization knee must lie in (mu, 1)"
        );
        assert!(self.theta > 0.0, "theta must be positive");
        assert!(self.b1 >= 0.0 && self.b2_per_ms >= 0.0, "penalties >= 0");
        assert!(self.disconnect_excess_ms > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = CostParams::default();
        assert_eq!(p.kappa_bits, 12_000.0);
        assert_eq!(p.mu, 0.95);
        assert_eq!(p.theta, 25e-3);
        assert_eq!(p.b1, 100.0);
        assert_eq!(p.b2_per_ms, 1.0);
        p.validate();
    }

    #[test]
    fn with_theta_overrides_only_theta() {
        let p = CostParams::with_theta(100e-3);
        assert_eq!(p.theta, 100e-3);
        assert_eq!(p.b1, 100.0);
    }

    #[test]
    #[should_panic(expected = "mu")]
    fn bad_mu_rejected() {
        CostParams {
            mu: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "knee")]
    fn knee_below_mu_rejected() {
        CostParams {
            mu: 0.95,
            linearization_knee: 0.9,
            ..Default::default()
        }
        .validate();
    }
}
