//! Offline vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the
//! `Rng` extension trait (`gen_range`, `gen`, `gen_bool`) and
//! `seq::SliceRandom::shuffle`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched. Determinism is the only contract the
//! workspace relies on (all seeds flow from `Params::seed`); the stream
//! does not need to match upstream `rand`, it only needs to be stable.
//! `StdRng` is xoshiro256++ seeded via SplitMix64.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Seedable RNG construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stable stream per seed).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Raw xoshiro256++ state, for snapshotting the stream position.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator at an exact stream position previously
        /// captured with [`StdRng::state`]. An all-zero state is a fixed
        /// point of xoshiro256++ and is rejected by substituting the same
        /// non-zero guard constant `seed_from_u64` uses.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng {
                    s: [0x9e37_79b9_7f4a_7c15, 0, 0, 0],
                };
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types a range can be sampled over.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impls {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        #[allow(unused)]
        const _: core::marker::PhantomData<$u> = core::marker::PhantomData;
    )*};
}

signed_range_impls!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u32 {
    #[inline]
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), the only `SliceRandom` method the
    /// workspace uses.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` look-alike for `use rand::prelude::*` call sites.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(1..=20);
            assert!((1..=20).contains(&x));
            let y: usize = rng.gen_range(0..5);
            assert!(y < 5);
            let f: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_gen_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
