//! Offline vendored stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` macro, range/tuple/`Just`/`any` strategies,
//! `collection::vec`, `prop_map`/`prop_perturb`, `ProptestConfig` and the
//! `prop_assert*` macros.
//!
//! No shrinking: failing cases report the panic of the first failing
//! input. Case generation is fully deterministic (fixed master seed), so
//! failures reproduce across runs.

#![forbid(unsafe_code)]

pub use rand::rngs::StdRng;
pub use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies and `prop_perturb` closures.
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking — a strategy is just a deterministic sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_perturb<U, F: Fn(Self::Value, TestRng) -> U>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
    {
        Perturb { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returning a constant.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value, TestRng) -> U> Strategy for Perturb<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        let v = self.inner.sample(rng);
        let fork = StdRng::seed_from_u64(rng.next_u64());
        (self.f)(v, fork)
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: Copy,
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: Copy,
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy over all values of `T`.
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification for [`vec()`]: exact, `a..b` or `a..=b`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Deterministic per-test master RNG.
///
/// The master seed is derived from the test name alone, so failures
/// reproduce run to run and machine to machine with no extra state. The
/// `PROPTEST_SEED` environment variable (a `u64`) is folded in when set:
/// CI pins it explicitly so its failures are reproducible verbatim
/// (`PROPTEST_SEED=0` is the default stream), and developers can explore
/// other case streams locally by varying it.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name keeps streams distinct across tests while
    // staying reproducible run to run.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    StdRng::seed_from_u64(h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); ) => {};
    (@cfg ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $argpat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg); $($rest)* }
    };
}

/// `prop::...` module alias used by `proptest::prelude`.
pub mod prop {
    pub use crate::collection;
    pub use crate::{any, Just, Strategy};
}

/// `use proptest::prelude::*` surface.
pub mod prelude {
    /// `prop::collection::vec(...)` style paths.
    pub use super::prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
        TestRng,
    };
    pub use rand::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vectors_sample_in_bounds(
            n in 1usize..10,
            x in 0.5..2.5f64,
            v in prop::collection::vec(0u32..7, 3..=5),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!(v.len() >= 3 && v.len() <= 5);
            prop_assert!(v.iter().all(|&e| e < 7));
        }

        #[test]
        fn perturb_passes_an_rng(seed in any::<u64>(), y in Just(3usize).prop_perturb(|v, mut rng| {
            v + (rng.next_u32() as usize % 2)
        })) {
            let _ = seed;
            prop_assert!(y == 3 || y == 4);
        }

        #[test]
        fn map_transforms(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 10);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
