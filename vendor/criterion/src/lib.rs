//! Offline vendored stand-in for the subset of `criterion` this
//! workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock mean over `sample_size` iterations
//! (capped for CI friendliness) printed to stdout — enough to compare hot
//! paths release-to-release without the statistical machinery of the real
//! crate, which cannot be fetched in this offline build environment.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches can guard against dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; ignored by this shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level handle handed to each bench function.
pub struct Criterion {
    /// Hard cap on measured iterations per benchmark (keeps `cargo bench`
    /// bounded regardless of configured sample sizes).
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion's `--test` flag runs each benchmark once as a
        // smoke test without measuring; mirror that with a one-sample
        // cap so `cargo bench ... -- --test` is a genuine quick mode.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion {
            max_samples: if quick { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// `true` when the process was invoked in `--test` smoke mode.
    pub fn test_mode() -> bool {
        std::env::args().any(|a| a == "--test")
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.max_samples,
            max_samples: self.max_samples,
            _lifetime: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.max_samples);
        f(&mut b);
        b.report("bench", id);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    max_samples: usize,
    #[allow(dead_code)]
    _lifetime: std::marker::PhantomData<&'c ()>,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.min(self.max_samples));
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn finish(self) {}
}

/// Times one benchmark body. Measurement happens inside `iter` /
/// `iter_batched` (no `'static` bound on the routine, matching the real
/// criterion); `report` prints what was collected.
pub struct Bencher {
    samples: usize,
    measurements: Vec<(Duration, Duration)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples: samples.max(1),
            measurements: Vec::new(),
        }
    }

    /// Time `routine` end to end: one warm-up, then the measured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.measure(|| {
            let t0 = Instant::now();
            std_black_box(routine());
            t0.elapsed()
        });
    }

    /// Time `routine` on inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            t0.elapsed()
        });
    }

    fn measure<F: FnMut() -> Duration>(&mut self, mut run: F) {
        let _ = run(); // warm-up
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let d = run();
            total += d;
            best = best.min(d);
        }
        self.measurements.push((total / self.samples as u32, best));
    }

    fn report(&self, group: &str, id: &str) {
        for (mean, best) in &self.measurements {
            println!(
                "{group}/{id}: mean {mean:?} best {best:?} ({} samples)",
                self.samples
            );
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut hits = 0usize;
        g.bench_function("count", |b| {
            hits += 1;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert_eq!(hits, 1);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(1);
        g.bench_function("b", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
